// Online-overload service-level study: deadline-hit rate and shed rate vs.
// offered load for three admission arms of the dynamic manager —
//
//   accept-all    the historical unbounded FIFO (overload collapses it),
//   bounded       a bounded FIFO queue (rejects at capacity, no test),
//   rho2+ladder   the rho_2-aware admission test with EDF queueing,
//                 deadline-aware shedding and the degradation ladder.
//
// The curve a production scheduler lives by: under overload, accept-all
// lets queueing delay eat every application's slack (hit rate -> 0 for
// everyone), while admission control sacrifices arrivals it could never
// serve to keep the service level of ADMITTED work high. Deterministic:
// fixed seeds, median over seeds; --json writes a cdsf.online_overload/1
// document (recorded as BENCH_online_overload.json, gated in CI by
// tools/check_bench_regression.py).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cdsf/dynamic_manager.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "sysmodel/cases.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kSchema = "cdsf.online_overload/1";

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

struct Arm {
  const char* name;
  cdsf::core::AdmissionConfig admission;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli(
      "Deadline-hit rate and shed rate vs offered load for the dynamic "
      "manager's admission arms (accept-all | bounded | rho2+ladder).");
  cli.add_int("applications", 60, "applications per run");
  cli.add_double("slack", 7000.0, "per-application deadline slack");
  cli.add_double("base-interarrival", 1000.0, "mean interarrival at offered load 1x");
  cli.add_int("seeds", 5, "seeds per (arm, load) cell; medians reported");
  cli.add_string("json", "", "write the cdsf.online_overload/1 document here");
  if (!cli.parse(argc, argv)) return 0;

  const sysmodel::Platform platform = sysmodel::paper_platform();
  const sysmodel::AvailabilitySpec reference = sysmodel::paper_case(1);

  core::DynamicConfig base;
  base.applications = static_cast<std::size_t>(cli.get_int("applications"));
  base.deadline_slack = cli.get_double("slack");
  base.deadline_slack_spread = 0.25;  // heterogeneous slack makes EDF meaningful
  base.application_spec.processor_types = 2;
  base.application_spec.min_total_iterations = 800;
  base.application_spec.max_total_iterations = 3000;
  base.application_spec.min_mean_time = 2000.0;
  base.application_spec.max_mean_time = 8000.0;

  std::vector<Arm> arms;
  arms.push_back(Arm{"accept-all", {}});
  {
    core::AdmissionConfig bounded;
    bounded.policy = core::AdmissionPolicy::kBoundedQueue;
    bounded.queue_capacity = 6;
    bounded.shed_floor = 0.6;  // deadline-aware shedding, no admission test
    arms.push_back(Arm{"bounded", bounded});
  }
  {
    core::AdmissionConfig rho2;
    rho2.policy = core::AdmissionPolicy::kRho2Aware;
    rho2.queue_capacity = 6;
    rho2.queue_order = core::QueueOrder::kEdf;
    rho2.admit_floor = 0.5;
    rho2.shed_floor = 0.6;
    rho2.ladder = true;
    arms.push_back(Arm{"rho2+ladder", rho2});
  }

  const std::vector<double> loads = {0.5, 1.0, 2.0, 4.0};
  const double base_interarrival = cli.get_double("base-interarrival");
  const std::size_t seeds = static_cast<std::size_t>(cli.get_int("seeds"));

  util::Table table({"arm", "load", "hit rate (all)", "hit rate (admitted)", "shed rate",
                     "reject rate", "utilization"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight});
  table.set_title("Online overload sweep (" + std::to_string(base.applications) +
                  " applications/run, " + std::to_string(seeds) + " seeds, slack " +
                  util::format_fixed(base.deadline_slack, 0) + ")");

  obs::Json doc = obs::Json::object();
  doc.set("schema", kSchema);
  obs::Json config_doc = obs::Json::object();
  config_doc.set("applications", base.applications);
  config_doc.set("deadline_slack", base.deadline_slack);
  config_doc.set("deadline_slack_spread", base.deadline_slack_spread);
  config_doc.set("base_interarrival", base_interarrival);
  config_doc.set("seeds", seeds);
  doc.set("config", std::move(config_doc));
  obs::Json arms_doc = obs::Json::array();

  for (const Arm& arm : arms) {
    obs::Json arm_doc = obs::Json::object();
    arm_doc.set("name", arm.name);
    obs::Json points = obs::Json::array();
    for (double load : loads) {
      core::DynamicConfig config = base;
      config.mean_interarrival = base_interarrival / load;
      config.admission = arm.admission;
      std::vector<double> hit, admitted_hit, shed_rate, reject_rate, utilization, delay;
      for (std::size_t s = 0; s < seeds; ++s) {
        const core::DynamicRunResult result = core::run_dynamic_manager(
            platform, reference, reference, config, 100 + s);
        const double arrivals = static_cast<double>(result.admission.arrivals);
        hit.push_back(result.deadline_hit_rate);
        admitted_hit.push_back(result.admitted_hit_rate);
        shed_rate.push_back(static_cast<double>(result.admission.shed) / arrivals);
        reject_rate.push_back(static_cast<double>(result.admission.rejected) / arrivals);
        utilization.push_back(result.utilization);
        delay.push_back(result.mean_queueing_delay);
      }
      const double hit_median = median(hit);
      const double admitted_median = median(admitted_hit);
      const double shed_median = median(shed_rate);
      const double reject_median = median(reject_rate);
      const double utilization_median = median(utilization);
      table.add_row({arm.name, util::format_fixed(load, 1) + "x",
                     util::format_percent(hit_median, 0),
                     util::format_percent(admitted_median, 0),
                     util::format_percent(shed_median, 0),
                     util::format_percent(reject_median, 0),
                     util::format_percent(utilization_median, 0)});
      obs::Json point = obs::Json::object();
      point.set("load", load);
      point.set("mean_interarrival", config.mean_interarrival);
      point.set("deadline_hit_rate_median", hit_median);
      point.set("admitted_hit_rate_median", admitted_median);
      point.set("shed_rate_median", shed_median);
      point.set("reject_rate_median", reject_median);
      point.set("utilization_median", utilization_median);
      point.set("mean_queueing_delay_median", median(delay));
      points.push_back(std::move(point));
    }
    arm_doc.set("points", std::move(points));
    arms_doc.push_back(std::move(arm_doc));
  }
  doc.set("arms", std::move(arms_doc));

  std::puts(table.render().c_str());
  std::puts("Expected shape: past 1x load accept-all collapses for EVERY application");
  std::puts("(unbounded queueing delay), bounded FIFO saves the head of the queue only,");
  std::puts("and the rho2 admission test with the degradation ladder keeps the admitted");
  std::puts("service level high by refusing (or shedding) work it could never finish.");

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    obs::write_json(doc, json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
