// The paper's promised probabilistic study "on a larger problem ... to
// determine the benefit of the CDSF on a range of application and system
// parameters": for growing problem sizes, compare the four scenarios'
// tolerable availability degradation (the rho_2 analogue measured over a
// scaled-availability sweep) — quantifying how much of the robustness comes
// from each stage as the system grows.
#include <cstdio>

#include "cdsf/framework.hpp"
#include "ra/heuristics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace {

using namespace cdsf;

/// Availability spec scaled by factor f (pulse values clamped into (0, 1]).
sysmodel::AvailabilitySpec scaled(const sysmodel::AvailabilitySpec& spec, double f) {
  std::vector<pmf::Pmf> per_type;
  for (std::size_t j = 0; j < spec.type_count(); ++j) {
    per_type.push_back(
        spec.of_type(j).map([f](double a) { return std::clamp(a * f, 0.02, 1.0); }));
  }
  return sysmodel::AvailabilitySpec(spec.name() + "*" + util::format_fixed(f, 2),
                                    std::move(per_type));
}

/// Largest availability decrease (1 - f) at which the scenario still meets
/// the deadline for every application, over f in {1.0, 0.9, ..., 0.5}.
double tolerable_decrease(const core::Framework& framework, const ra::Heuristic& heuristic,
                          const std::vector<dls::TechniqueId>& techniques,
                          const sysmodel::AvailabilitySpec& reference,
                          const core::StageTwoConfig& config) {
  const core::StageOneResult stage1 = framework.run_stage_one(heuristic);
  double best = -1.0;
  for (double f : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
    const core::StageTwoResult result =
        framework.run_stage_two(stage1.allocation, scaled(reference, f), techniques, config);
    if (result.all_meet_deadline) best = std::max(best, 1.0 - f);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("CDSF benefit vs problem scale: tolerable degradation per scenario.");
  cli.add_int("replications", 21, "stage II replications");
  cli.add_int("seed", 2, "workload seed");
  if (!cli.parse(argc, argv)) return 0;

  const sysmodel::AvailabilitySpec reference(
      "ref", {pmf::Pmf::from_pulses({{0.75, 0.5}, {1.0, 0.5}}),
              pmf::Pmf::from_pulses({{0.25, 0.25}, {0.5, 0.25}, {1.0, 0.5}})});

  core::StageTwoConfig config;
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  struct Scale {
    std::size_t apps;
    std::size_t type1;
    std::size_t type2;
  };
  const Scale scales[3] = {{3, 4, 8}, {5, 8, 16}, {8, 12, 24}};

  util::Table table({"scale (apps/procs)", "s1 naive+STATIC", "s2 robust+STATIC",
                     "s3 naive+DLS", "s4 robust+DLS (CDSF)"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("Tolerable availability decrease before a deadline violation, by scenario");

  const ra::NaiveLoadBalance naive;
  const ra::GreedyRobustness robust;
  const std::vector<dls::TechniqueId> static_only = {dls::TechniqueId::kStatic};
  const auto robust_set = dls::paper_robust_set();

  for (const Scale& scale : scales) {
    const sysmodel::Platform platform(
        {{"type1", scale.type1}, {"type2", scale.type2}});
    workload::BatchSpec spec;
    spec.applications = scale.apps;
    spec.processor_types = 2;
    spec.min_total_iterations = 1000;
    spec.max_total_iterations = 4000;
    spec.min_mean_time = 3000.0;
    spec.max_mean_time = 12000.0;
    const workload::Batch batch = workload::generate_batch(spec, seed);

    // Calibrate the deadline to the instance: 1.25x the robust mapping's
    // worst expected completion at the reference availability — tight
    // enough that the scenarios differentiate, loose enough that scenario 4
    // has degradation headroom (mirrors how the paper chose Delta = 3250).
    double worst_expected = 0.0;
    {
      const core::Framework probe(batch, platform, reference, 1e12);
      const core::StageOneResult stage1 = probe.run_stage_one(robust);
      for (double t : stage1.expected_times) worst_expected = std::max(worst_expected, t);
    }
    const double deadline = 1.25 * worst_expected;
    const core::Framework framework(batch, platform, reference, deadline);

    auto cell = [&](const ra::Heuristic& heuristic,
                    const std::vector<dls::TechniqueId>& techniques) {
      const double d = tolerable_decrease(framework, heuristic, techniques, reference, config);
      return d < 0.0 ? std::string("not robust") : util::format_percent(d, 0);
    };
    table.add_row({std::to_string(scale.apps) + " apps / " +
                       std::to_string(scale.type1 + scale.type2) + " procs",
                   cell(naive, static_only), cell(robust, static_only),
                   cell(naive, robust_set), cell(robust, robust_set)});
  }
  std::puts(table.render().c_str());
  std::puts("Expected shape (the paper's hypothesis at scale): the combined scenario 4");
  std::puts("tolerates at least as much degradation as any single-intelligence scenario,");
  std::puts("at every problem size.");
  return 0;
}
