// Future-work study: impact of cross-type availability correlation on the
// robustness of the initial mapping. phi_1 is estimated by Monte Carlo over
// one-factor Gaussian copula draws; rho = 0 cross-checks the analytic
// product-form values (26% naive, 74.5% robust).
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "ra/correlation.hpp"
#include "ra/robustness.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("phi_1 vs cross-type availability correlation (Gaussian copula).");
  cli.add_int("replications", 40000, "Monte-Carlo draws per (allocation, rho)");
  cli.add_int("seed", 23, "master seed");
  if (!cli.parse(argc, argv)) return 0;

  const core::PaperExample example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const std::vector<double> rhos = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  struct Row {
    const char* label;
    ra::Allocation allocation;
    double analytic;
  };
  const Row rows[2] = {
      {"naive IM", core::paper_naive_allocation(),
       evaluator.joint_probability(core::paper_naive_allocation())},
      {"robust IM", core::paper_robust_allocation(),
       evaluator.joint_probability(core::paper_robust_allocation())},
  };

  util::Table table;
  std::vector<std::string> headers = {"allocation", "analytic (rho=0)"};
  for (double rho : rhos) headers.push_back("rho=" + util::format_fixed(rho, 1));
  table.set_headers(headers);
  table.set_alignment({util::Align::kLeft});
  table.set_title("phi_1 = Pr(all applications meet the deadline) vs availability correlation");

  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.label, util::format_percent(row.analytic, 1)};
    for (double rho : rhos) {
      const ra::CorrelatedPhiEstimate estimate =
          ra::correlated_phi1(example.batch, row.allocation, example.cases.front(), rho,
                              example.deadline, replications, seed);
      cells.push_back(util::format_percent(estimate.probability, 1));
    }
    table.add_row(cells);
  }
  std::puts(table.render().c_str());
  std::puts("Reading guide: rho = 0 reproduces the paper's product-form 26% / 74.5%.");
  std::puts("Positive correlation aligns the applications' bad periods: failure events");
  std::puts("overlap instead of compounding, so the JOINT survival probability rises —");
  std::puts("ignoring correlation makes Stage I's robustness estimate conservative here,");
  std::puts("but the per-application marginal risk is unchanged.");
  return 0;
}
