// Ablation: phi_1 as a function of the deadline — the full CDF of the
// system makespan Psi for both Table IV allocations. Shows WHERE the robust
// mapping's advantage lives: the paper's single Delta = 3250 is one point
// on these curves; the crossover structure explains why the naive mapping
// looks acceptable under loose deadlines and collapses under tight ones.
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "ra/robustness.hpp"
#include "util/table.hpp"

int main() {
  using namespace cdsf;
  const core::PaperExample example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);

  const pmf::Pmf naive = evaluator.system_makespan_pmf(core::paper_naive_allocation());
  const pmf::Pmf robust = evaluator.system_makespan_pmf(core::paper_robust_allocation());

  util::Table table({"deadline", "phi_1 naive IM", "phi_1 robust IM", "advantage"});
  table.set_title(
      "phi_1 = Pr(Psi <= deadline) under Â, from the analytic system-makespan PMFs");
  for (double deadline : {1500.0, 2000.0, 2500.0, 2800.0, 3000.0, 3250.0, 3500.0, 4000.0,
                          4600.0, 5500.0, 8000.0, 12000.0}) {
    const double p_naive = naive.cdf(deadline);
    const double p_robust = robust.cdf(deadline);
    std::string marker = deadline == example.deadline ? "  <- paper's Delta" : "";
    table.add_row({util::format_fixed(deadline, 0), util::format_percent(p_naive, 1),
                   util::format_percent(p_robust, 1),
                   util::format_fixed((p_robust - p_naive) * 100.0, 1) + " pp" + marker});
  }
  std::puts(table.render().c_str());

  std::printf("E[Psi]  naive: %.1f   robust: %.1f\n", naive.expectation(),
              robust.expectation());
  std::printf("90%% quantile of Psi  naive: %.1f   robust: %.1f\n", naive.quantile(0.9),
              robust.quantile(0.9));
  std::puts("\nReading guide: below ~2700 neither allocation can win (app3 needs 2700 in");
  std::puts("expectation even on 8 processors); the robust mapping's advantage peaks in");
  std::puts("the [2800, 4600] band containing the paper's deadline, and vanishes again");
  std::puts("once the deadline is loose enough for the naive mapping's slow tail.");
  return 0;
}
