// Ablation: predictable load drift (diurnal cycles). Worker phases are
// spread around the cycle, so WHICH workers are fast rotates during a run:
// the t = 0 snapshot WF's weights encode goes stale at a rate set by the
// cycle amplitude. Sweeps the amplitude and reports median makespans —
// quantifying the frozen-weights penalty and the adaptive family's gain.
#include <cstdio>

#include "sim/loop_executor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/application.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Diurnal-drift ablation: DLS techniques vs load-cycle amplitude.");
  cli.add_int("replications", 51, "replications per cell");
  cli.add_double("period", 1500.0, "load-cycle period (run length ~2000-3000)");
  if (!cli.parse(argc, argv)) return 0;

  const workload::Application app(
      "drift", 0, 8000, {workload::TimeLaw{workload::TimeLawKind::kNormal, 8000.0, 0.1}});
  const sysmodel::AvailabilitySpec base("mean-0.55", {pmf::Pmf::delta(0.55)});
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));

  const std::vector<double> amplitudes = {0.0, 0.1, 0.2, 0.3, 0.4};
  const std::vector<dls::TechniqueId> techniques = {
      dls::TechniqueId::kStatic, dls::TechniqueId::kGSS,   dls::TechniqueId::kFAC,
      dls::TechniqueId::kWF,     dls::TechniqueId::kAWF_B, dls::TechniqueId::kAWF_C,
      dls::TechniqueId::kAF};

  util::Table table;
  std::vector<std::string> headers = {"technique"};
  for (double a : amplitudes) headers.push_back("amp=" + util::format_fixed(a, 1));
  table.set_headers(headers);
  table.set_alignment({util::Align::kLeft});
  table.set_title("Median makespan, 8000 iterations on 8 workers, diurnal cycle around "
                  "E[a] = 0.55 (ideal dedicated = 1000; flat 0.55 rate ~ 1818)");

  for (dls::TechniqueId id : techniques) {
    std::vector<std::string> row = {dls::technique_name(id)};
    for (double amplitude : amplitudes) {
      sim::SimConfig config;
      config.availability_mode = sim::AvailabilityMode::kDiurnal;
      config.diurnal_amplitude = amplitude;
      config.diurnal_period = cli.get_double("period");
      config.iteration_cov = 0.1;
      const sim::ReplicationSummary summary =
          sim::simulate_replicated(app, 0, 8, base, id, config, 19, replications, 1e18);
      row.push_back(util::format_fixed(summary.median_makespan, 0));
    }
    table.add_row(row);
  }
  std::puts(table.render().c_str());
  std::puts("Reading guide: at amplitude 0 everyone matches the constant-rate bound. As the");
  std::puts("cycle deepens, STATIC (fully frozen) degrades fastest and GSS's giant first");
  std::puts("chunks hurt next; the dynamic-pull techniques largely self-correct — frozen");
  std::puts("WEIGHTS (WF) matter far less than frozen WORK (STATIC), because requesting");
  std::puts("order already adapts — with AF best at the deepest cycles.");
  return 0;
}
