// Full DLS sweep: every technique the library ships (13) on the paper's
// application 3 group, across all four availability cases — median
// makespan, chunk count, and load-imbalance (c.o.v. of worker finish
// times). Extends the paper's 4-technique robust set to the whole family.
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "sim/loop_executor.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("All-technique DLS sweep on the paper's app3 group (8 x type2).");
  cli.add_int("replications", 101, "replications per cell");
  cli.add_int("seed", 11, "master seed");
  if (!cli.parse(argc, argv)) return 0;

  const core::PaperExample example = core::make_paper_example();
  const workload::Application& app = example.batch.at(2);
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  util::Table table({"technique", "case1 med", "case2 med", "case3 med", "case4 med",
                     "chunks", "imbalance cov"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("DLS sweep — app3 on 8 x type2, median makespan per availability case "
                  "(deadline 3250; * = meets)");
  const sim::SimConfig config;
  for (dls::TechniqueId id : dls::all_techniques()) {
    std::vector<std::string> row = {dls::technique_name(id)};
    stats::OnlineSummary chunks;
    stats::OnlineSummary imbalance;
    for (std::size_t k = 0; k < example.cases.size(); ++k) {
      const sim::ReplicationSummary summary =
          sim::simulate_replicated(app, 1, 8, example.cases[k], id, config,
                                   seed + 100 * k, replications, example.deadline);
      std::string cell = util::format_fixed(summary.median_makespan, 0);
      cell += summary.median_makespan <= example.deadline ? " *" : "  ";
      row.push_back(cell);
      // chunk/imbalance stats from a single representative run per case
      const sim::RunResult run =
          sim::simulate_loop(app, 1, 8, example.cases[k], id, config, seed + 100 * k + 7);
      chunks.add(static_cast<double>(run.total_chunks));
      imbalance.add(run.finish_time_cov());
    }
    row.push_back(util::format_fixed(chunks.mean(), 0));
    row.push_back(util::format_fixed(imbalance.mean(), 3));
    table.add_row(row);
  }
  std::puts(table.render().c_str());
  std::puts("Reading guide: STATIC pays the full imbalance; SS pays maximal overhead;");
  std::puts("factoring-family techniques trade the two; the adaptive variants track the");
  std::puts("availability drift. The paper's robust set is {FAC, WF, AWF-B, AF}.");
  return 0;
}
