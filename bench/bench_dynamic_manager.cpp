// Future-work study: dynamic (per-application, arrival-driven) stochastic
// resource allocation — the paper's cited-[19] Stage I extension — swept
// over the offered load. Reports hit rate, queueing delay and utilization,
// and contrasts the probability-maximizing allocator against a grab-all
// baseline that always takes the largest free group.
#include <cstdio>

#include "cdsf/dynamic_manager.hpp"
#include "sysmodel/cases.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Dynamic per-application resource allocation under an arrival stream.");
  cli.add_int("applications", 24, "applications in the stream");
  cli.add_double("slack", 7000.0, "per-application deadline slack");
  cli.add_int("seed", 8, "master seed");
  if (!cli.parse(argc, argv)) return 0;

  const sysmodel::Platform platform = sysmodel::paper_platform();
  const sysmodel::AvailabilitySpec reference = sysmodel::paper_case(1);
  const sysmodel::AvailabilitySpec degraded = sysmodel::paper_case(3);

  core::DynamicConfig config;
  config.applications = static_cast<std::size_t>(cli.get_int("applications"));
  config.deadline_slack = cli.get_double("slack");
  config.application_spec.processor_types = 2;
  config.application_spec.min_total_iterations = 800;
  config.application_spec.max_total_iterations = 3000;
  config.application_spec.min_mean_time = 2000.0;
  config.application_spec.max_mean_time = 8000.0;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  util::Table table({"mean interarrival", "runtime avail", "hit rate", "mean queue delay",
                     "utilization"});
  table.set_alignment({util::Align::kRight, util::Align::kLeft});
  table.set_title("Dynamic stochastic RA (" + std::to_string(config.applications) +
                  " applications, AF execution, slack " +
                  util::format_fixed(config.deadline_slack, 0) + ")");

  for (double interarrival : {2000.0, 1000.0, 500.0, 250.0}) {
    for (const auto* runtime : {&reference, &degraded}) {
      config.mean_interarrival = interarrival;
      const core::DynamicRunResult result =
          core::run_dynamic_manager(platform, reference, *runtime, config, seed);
      table.add_row({util::format_fixed(interarrival, 0),
                     runtime == &reference ? "reference" : "degraded (case 3)",
                     util::format_percent(result.deadline_hit_rate, 0),
                     util::format_fixed(result.mean_queueing_delay, 0),
                     util::format_percent(result.utilization, 0)});
    }
  }
  std::puts(table.render().c_str());
  std::puts("Expected shape: as the offered load grows (interarrival shrinks), queueing");
  std::puts("delay consumes the deadline slack and the hit rate falls — faster under the");
  std::puts("degraded runtime availability. Utilization saturates well below 100% because");
  std::puts("power-of-two single-type groups cannot always tile the free processors.");
  return 0;
}
