// Ablation: processor failure during execution. Sweeps the failure time of
// one worker and reports the median makespan per DLS technique —
// quantifying the "blast radius" of the non-preemptive chunk in flight and
// STATIC's stranded share.
//
// --mode degrade       : worker slows to --residual availability (default)
// --mode crash         : worker dies permanently; its chunk is re-dispatched
// --mode crash-recover : worker dies and rejoins after --recovery-delay
//
// Crash modes additionally report the fault accounting (chunks lost,
// iterations re-executed, wasted work) and a rho_2 section comparing the
// original Stage I mapping against a re-mapping computed on the REALIZED
// availability once the degradation exceeds the certified radius.
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "cdsf/framework.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "ra/heuristics.hpp"
#include "sim/loop_executor.hpp"
#include "sim/master_worker.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/application.hpp"

namespace {

using namespace cdsf;

/// Original plan vs rho_2-triggered re-mapping when one processor type
/// degrades beyond the certificate: count deadline hits over many seeds.
/// When `json_out` is non-null the comparison is also recorded there.
void remap_comparison(std::uint64_t seed, std::size_t replications, obs::Json* json_out) {
  const sysmodel::Platform platform({{"fast", 8}, {"slow", 8}});
  const sysmodel::AvailabilitySpec reference(
      "reference", {pmf::Pmf::delta(1.0), pmf::Pmf::delta(0.9)});
  const sysmodel::AvailabilitySpec realized(
      "realized", {pmf::Pmf::delta(0.3), pmf::Pmf::delta(0.9)});
  workload::Batch batch;
  batch.add(workload::Application(
      "loop", 0, 4096,
      {workload::TimeLaw{workload::TimeLawKind::kNormal, 2400.0, 0.1},
       workload::TimeLaw{workload::TimeLawKind::kNormal, 3600.0, 0.1}}));
  const double deadline = 600.0;

  const core::Framework framework(batch, platform, reference, deadline);
  const ra::ExhaustiveOptimal heuristic;
  const core::StageOneResult stage_one = framework.run_stage_one(heuristic);
  core::Framework::ExecutionPlan plan;
  plan.allocation = stage_one.allocation;
  plan.phi1 = stage_one.phi1;
  plan.techniques.assign(batch.size(), dls::TechniqueId::kFAC);

  core::Framework::RemapPolicy policy;
  policy.rho2 = 0.10;
  const core::Framework::RemapDecision decision =
      framework.remap_on_availability(plan, realized, heuristic, policy);

  sim::SimConfig config;
  config.iteration_cov = 0.1;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  std::size_t hits_original = 0;
  std::size_t hits_remapped = 0;
  for (std::size_t r = 0; r < replications; ++r) {
    if (framework.execute_plan(plan, realized, config, seed + r).system_makespan <= deadline) {
      ++hits_original;
    }
    if (framework.execute_plan(decision.plan, realized, config, seed + r).system_makespan <=
        deadline) {
      ++hits_remapped;
    }
  }

  std::printf("\nrho_2 re-mapping (realized decrease %.2f vs certificate %.2f -> %s)\n",
              decision.realized_decrease, policy.rho2,
              decision.triggered ? "TRIGGERED" : "kept");
  std::printf("  original plan : %s, phi_1(realized) = %.3f, deadline hits %zu/%zu\n",
              plan.allocation.to_string(platform).c_str(), decision.phi1_realized_before,
              hits_original, replications);
  std::printf("  remapped plan : %s, phi_1(realized) = %.3f, deadline hits %zu/%zu\n",
              decision.plan.allocation.to_string(platform).c_str(),
              decision.phi1_realized_after, hits_remapped, replications);

  if (json_out != nullptr) {
    obs::Json remap = obs::Json::object();
    remap.set("realized_decrease", decision.realized_decrease);
    remap.set("rho2", policy.rho2);
    remap.set("triggered", decision.triggered);
    remap.set("phi1_realized_before", decision.phi1_realized_before);
    remap.set("phi1_realized_after", decision.phi1_realized_after);
    remap.set("hits_original", hits_original);
    remap.set("hits_remapped", hits_remapped);
    remap.set("replications", replications);
    json_out->set("remap_comparison", std::move(remap));
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("DLS behaviour under an injected processor failure.");
  cli.add_int("replications", 51, "replications per cell");
  cli.add_int("seed", 3, "master random seed");
  cli.add_string("mode", "degrade", "failure kind: degrade|crash|crash-recover");
  cli.add_double("residual", 0.02, "availability of the failed worker (degrade mode)");
  cli.add_double("recovery-delay", 300.0, "downtime before rejoining (crash-recover mode)");
  cli.add_string("json", "", "also write a machine-readable JSON report to this file");
  cli.add_flag("speculate",
               "add a three-way {none, re-dispatch, re-dispatch+speculation} comparison "
               "for a crash-free degraded worker under identical seeds");
  cli.add_double("quantile", 2.0, "straggler threshold in sigmas (with --speculate)");
  cli.add_double("speculate-time", 500.0,
                 "when the degraded worker slows down (with --speculate)");
  cli.add_flag("channel",
               "add a three-arm {reliable, lossy without retransmission, lossy+retransmit+"
               "checkpoint+master-restart} unreliable-channel comparison on the MPI "
               "executor under identical seeds");
  cli.add_double("channel-drop", 0.05, "per-message drop probability (with --channel)");
  cli.add_double("channel-dup", 0.05, "per-message duplication probability (with --channel)");
  cli.add_double("channel-reorder", 0.1, "per-message reorder probability (with --channel)");
  cli.add_double("master-crash-time", 400.0,
                 "master crash instant in the hardened arm (with --channel)");
  cli.add_flag("fail-slow",
               "add a gray-failure ablation arm set {naive, speculation-only, "
               "quarantine+integrity} with two fail-slow (degraded-but-alive) workers "
               "on the MPI executor under identical seeds");
  cli.add_double("fail-slow-residual", 0.1,
                 "residual availability of the fail-slow workers (0.1 = 10x slowdown)");
  cli.add_flag("corrupt",
               "add per-message payload corruption to the gray-failure arms (the naive "
               "arm cannot retransmit, so checksum-discarded messages are lost for good)");
  cli.add_double("corrupt-rate", 0.01,
                 "per-message corruption probability, both directions (with --corrupt)");
  cli.add_double("gray-deadline", 2500.0,
                 "deadline for the gray-failure hit-rate columns (healthy ideal ~1000)");
  if (!cli.parse(argc, argv)) return 0;
  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) obs::MetricsRegistry::global().set_enabled(true);

  // 8000 uniform iterations on 8 dedicated workers; worker 2 fails.
  const workload::Application app(
      "steady", 0, 8000, {workload::TimeLaw{workload::TimeLawKind::kNormal, 8000.0, 0.1}});
  const sysmodel::AvailabilitySpec full("dedicated", {pmf::Pmf::delta(1.0)});
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const double residual = cli.get_double("residual");
  const double recovery_delay = cli.get_double("recovery-delay");
  const std::string mode = cli.get_string("mode");
  sim::SimConfig::FailureKind kind = sim::SimConfig::FailureKind::kDegrade;
  if (mode == "crash") {
    kind = sim::SimConfig::FailureKind::kCrash;
  } else if (mode == "crash-recover") {
    kind = sim::SimConfig::FailureKind::kCrashRecover;
  } else if (mode != "degrade") {
    std::fprintf(stderr, "unknown --mode '%s' (degrade|crash|crash-recover)\n", mode.c_str());
    return 1;
  }

  const std::vector<double> failure_times = {100.0, 300.0, 600.0, 900.0};
  const std::vector<dls::TechniqueId> techniques = {
      dls::TechniqueId::kStatic, dls::TechniqueId::kSS,  dls::TechniqueId::kGSS,
      dls::TechniqueId::kTSS,    dls::TechniqueId::kFAC, dls::TechniqueId::kAWF_B,
      dls::TechniqueId::kAF};

  util::Table table;
  std::vector<std::string> headers = {"technique", "no failure"};
  for (double t : failure_times) headers.push_back("fail@" + util::format_fixed(t, 0));
  table.set_headers(headers);
  table.set_alignment({util::Align::kLeft});
  if (kind == sim::SimConfig::FailureKind::kDegrade) {
    table.set_title("Median makespan, worker 2 degrading to " +
                    util::format_percent(residual, 0) +
                    " availability at the given time (healthy ideal ~1000)");
  } else if (kind == sim::SimConfig::FailureKind::kCrash) {
    table.set_title(
        "Median makespan, worker 2 crashing permanently at the given time; "
        "its in-flight chunk is re-dispatched to the survivors");
  } else {
    table.set_title("Median makespan, worker 2 down for " +
                    util::format_fixed(recovery_delay, 0) +
                    " time units from the given time, then rejoining");
  }

  util::Table faults;
  faults.set_headers(headers);
  faults.set_alignment({util::Align::kLeft});
  faults.set_title(
      "Fault accounting per cell: chunks lost / iterations re-executed / wasted work "
      "(totals over all replications)");

  obs::Json json_techniques = obs::Json::array();
  for (dls::TechniqueId id : techniques) {
    std::vector<std::string> row = {dls::technique_name(id)};
    std::vector<std::string> fault_row = {dls::technique_name(id)};
    obs::Json json_entry = obs::Json::object();
    json_entry.set("technique", dls::technique_name(id));
    sim::SimConfig healthy;
    healthy.iteration_cov = 0.1;
    healthy.availability_mode = sim::AvailabilityMode::kConstantMean;
    const sim::ReplicationSummary baseline =
        sim::simulate_replicated(app, 0, 8, full, id, healthy, seed, replications, 1e18);
    row.push_back(util::format_fixed(baseline.median_makespan, 0));
    fault_row.push_back("-");
    json_entry.set("no_failure", obs::to_json(baseline, std::numeric_limits<double>::infinity()));
    obs::Json json_cells = obs::Json::array();
    for (double t : failure_times) {
      sim::SimConfig config = healthy;
      sim::SimConfig::Failure failure;
      failure.worker = 2;
      failure.time = t;
      failure.residual_availability = residual;
      failure.kind = kind;
      if (kind == sim::SimConfig::FailureKind::kCrashRecover) {
        failure.recovery_time = t + recovery_delay;
      }
      config.failures.push_back(failure);
      const sim::ReplicationSummary summary =
          sim::simulate_replicated(app, 0, 8, full, id, config, seed, replications, 1e18);
      row.push_back(util::format_fixed(summary.median_makespan, 0));
      fault_row.push_back(std::to_string(summary.faults_total.chunks_lost) + "/" +
                          std::to_string(summary.faults_total.iterations_reexecuted) + "/" +
                          util::format_fixed(summary.faults_total.wasted_work, 0));
      obs::Json cell = obs::to_json(summary, std::numeric_limits<double>::infinity());
      cell.set("failure_time", t);
      json_cells.push_back(std::move(cell));
    }
    json_entry.set("failures", std::move(json_cells));
    json_techniques.push_back(std::move(json_entry));
    table.add_row(row);
    faults.add_row(fault_row);
  }
  std::puts(table.render().c_str());
  obs::Json report = obs::Json::object();

  // Three-way mitigation ablation: the same crash-free degradation under the
  // same seeds, with no mitigation, with the crash/re-dispatch machinery
  // armed, and with speculative backups on top. Nothing crashes, so the
  // first two arms coincide by construction — that IS the point: re-dispatch
  // cannot help against a degraded-but-alive worker, only speculation can.
  obs::Json json_speculation = obs::Json::array();
  if (cli.get_flag("speculate")) {
    const double quantile = cli.get_double("quantile");
    const double spec_time = cli.get_double("speculate-time");
    util::Table spec_table;
    spec_table.set_headers({"technique", "none", "re-dispatch", "re-disp+spec",
                            "flagged", "backups won/canc"});
    spec_table.set_alignment({util::Align::kLeft});
    spec_table.set_title(
        "Mean makespan, worker 2 degrading to " + util::format_percent(residual, 0) +
        " availability at t=" + util::format_fixed(spec_time, 0) +
        " (crash-free), identical seeds per arm; straggler quantile " +
        util::format_fixed(quantile, 1));
    for (dls::TechniqueId id : techniques) {
      sim::SimConfig none;
      none.iteration_cov = 0.1;
      none.availability_mode = sim::AvailabilityMode::kConstantMean;
      sim::SimConfig::Failure degrade;
      degrade.worker = 2;
      degrade.time = spec_time;
      degrade.residual_availability = residual;
      degrade.kind = sim::SimConfig::FailureKind::kDegrade;
      none.failures.push_back(degrade);
      sim::SimConfig redispatch = none;
      redispatch.fault_detection.enabled = true;
      sim::SimConfig speculate = redispatch;
      speculate.speculation.enabled = true;
      speculate.speculation.quantile = quantile;
      const sim::ReplicationSummary arm_none =
          sim::simulate_replicated(app, 0, 8, full, id, none, seed, replications, 1e18);
      const sim::ReplicationSummary arm_redispatch =
          sim::simulate_replicated(app, 0, 8, full, id, redispatch, seed, replications, 1e18);
      const sim::ReplicationSummary arm_speculate =
          sim::simulate_replicated(app, 0, 8, full, id, speculate, seed, replications, 1e18);
      const sim::SpeculationStats& spec = arm_speculate.speculation_total;
      spec_table.add_row(
          {dls::technique_name(id), util::format_fixed(arm_none.mean_makespan, 1),
           util::format_fixed(arm_redispatch.mean_makespan, 1),
           util::format_fixed(arm_speculate.mean_makespan, 1),
           std::to_string(spec.stragglers_flagged),
           std::to_string(spec.backups_won) + "/" + std::to_string(spec.backups_cancelled)});
      obs::Json entry = obs::Json::object();
      entry.set("technique", dls::technique_name(id));
      entry.set("none", obs::to_json(arm_none, std::numeric_limits<double>::infinity()));
      entry.set("redispatch",
                obs::to_json(arm_redispatch, std::numeric_limits<double>::infinity()));
      entry.set("speculation",
                obs::to_json(arm_speculate, std::numeric_limits<double>::infinity()));
      json_speculation.push_back(std::move(entry));
    }
    std::puts(spec_table.render().c_str());
    std::puts("Reading guide: nothing crashes here, so 'none' and 're-dispatch' coincide by");
    std::puts("design — the degraded worker never stops reporting and the crash detector has");
    std::puts("nothing to reclaim. Speculation is the only mitigation with traction: the");
    std::puts("straggling chunk gets a backup copy on an idle worker and the first finisher");
    std::puts("wins, cutting the mean makespan for every dynamic technique.");
  }
  // Channel-fault ablation: the same loop on the message-passing executor
  // under identical seeds, with a reliable channel, a lossy channel whose
  // only recovery is the failure detector (max_retransmits = 0 — workers
  // whose messages vanish are attrited one by one, so runs can strand
  // outright), and the fully hardened protocol (retransmission + dedup +
  // checkpointing) that additionally survives a mid-run master crash.
  obs::Json json_channel = obs::Json::array();
  if (cli.get_flag("channel")) {
    const double drop = cli.get_double("channel-drop");
    const double dup = cli.get_double("channel-dup");
    const double reorder = cli.get_double("channel-reorder");
    const double crash_time = cli.get_double("master-crash-time");
    const sim::MessageModel messages;
    util::Table chan_table;
    chan_table.set_headers({"technique", "reliable", "lossy no-rexmit", "hardened",
                            "drops", "rexmit/dedup", "restarts"});
    chan_table.set_alignment({util::Align::kLeft});
    chan_table.set_title(
        "Median makespan on the MPI executor, identical seeds per arm; drop " +
        util::format_percent(drop, 0) + ", duplicate " + util::format_percent(dup, 0) +
        ", reorder " + util::format_percent(reorder, 0) +
        " per message both directions; hardened arm adds a master crash at t=" +
        util::format_fixed(crash_time, 0));
    for (dls::TechniqueId id : techniques) {
      sim::SimConfig reliable;
      reliable.iteration_cov = 0.1;
      reliable.availability_mode = sim::AvailabilityMode::kConstantMean;
      sim::SimConfig lossy = reliable;
      lossy.channel.drop_to_worker = lossy.channel.drop_to_master = drop;
      lossy.channel.duplicate_to_worker = lossy.channel.duplicate_to_master = dup;
      lossy.channel.reorder_to_worker = lossy.channel.reorder_to_master = reorder;
      lossy.channel.max_retransmits = 0;
      sim::SimConfig hardened = lossy;
      hardened.channel.max_retransmits = 8;
      hardened.checkpoint.enabled = true;
      hardened.checkpoint.interval = 100.0;
      sim::SimConfig::Failure master;
      master.kind = sim::SimConfig::FailureKind::kMasterCrashRestart;
      master.time = crash_time;
      master.recovery_time = crash_time + 80.0;
      hardened.failures.push_back(master);

      const sim::ReplicationSummary arm_reliable = sim::simulate_replicated_mpi(
          app, 0, 8, full, id, reliable, messages, seed, replications, 1e18);
      std::string lossy_cell = "stranded";
      obs::Json lossy_json = obs::Json::object();
      try {
        const sim::ReplicationSummary arm_lossy = sim::simulate_replicated_mpi(
            app, 0, 8, full, id, lossy, messages, seed, replications, 1e18);
        lossy_cell = util::format_fixed(arm_lossy.median_makespan, 0);
        lossy_json = obs::to_json(arm_lossy, std::numeric_limits<double>::infinity());
      } catch (const std::runtime_error& error) {
        // Without retransmission a dropped message silently retires its
        // worker; enough losses strand the loop — that failure IS the
        // ablation's data point.
        lossy_json.set("stranded", true);
        lossy_json.set("error", std::string(error.what()));
      }
      const sim::ReplicationSummary arm_hardened = sim::simulate_replicated_mpi(
          app, 0, 8, full, id, hardened, messages, seed, replications, 1e18);
      const sim::ChannelStats& chan = arm_hardened.channel_total;
      chan_table.add_row(
          {dls::technique_name(id), util::format_fixed(arm_reliable.median_makespan, 0),
           lossy_cell, util::format_fixed(arm_hardened.median_makespan, 0),
           std::to_string(chan.drops),
           std::to_string(chan.retransmits) + "/" + std::to_string(chan.dedup_hits),
           std::to_string(arm_hardened.checkpoint_total.master_restarts)});
      obs::Json entry = obs::Json::object();
      entry.set("technique", dls::technique_name(id));
      entry.set("reliable", obs::to_json(arm_reliable, std::numeric_limits<double>::infinity()));
      entry.set("lossy", std::move(lossy_json));
      entry.set("hardened",
                obs::to_json(arm_hardened, std::numeric_limits<double>::infinity()));
      json_channel.push_back(std::move(entry));
    }
    std::puts(chan_table.render().c_str());
    std::puts("Reading guide: the reliable and hardened arms should agree to within the");
    std::puts("channel-induced latency noise — retransmission + dedup + checkpointing turn");
    std::puts("a lossy substrate (and a mid-run master crash) back into an at-least-once");
    std::puts("channel with exactly-once record()ing. The no-retransmission arm leans on");
    std::puts("the failure detector alone: every lost message permanently retires a worker,");
    std::puts("so its makespan balloons or the run strands outright.");
  }
  // Gray-failure ablation: fail-slow workers never crash and corrupted
  // payloads are well-formed, so neither the crash detector nor the
  // checksum alone saves the run. Three arms under identical seeds on the
  // MPI executor: naive (no mitigation; with --corrupt its channel cannot
  // retransmit, so every checksum-discarded message permanently retires
  // progress), speculation-only (hardened channel + straggler backups),
  // and quarantine+integrity (speculation plus the fail-slow EWMA
  // quarantine and audit-based result validation).
  obs::Json json_gray = obs::Json::array();
  const bool gray_fail_slow = cli.get_flag("fail-slow");
  const bool gray_corrupt = cli.get_flag("corrupt");
  if (gray_fail_slow || gray_corrupt) {
    const double gray_residual = cli.get_double("fail-slow-residual");
    const double corrupt_rate = cli.get_double("corrupt-rate");
    const double gray_deadline = cli.get_double("gray-deadline");
    const sim::MessageModel messages;
    util::Table gray_table;
    gray_table.set_headers({"technique", "naive", "spec-only", "quar+integrity",
                            "hits n/s/q", "quarantines", "audits (bad)", "corrupted"});
    gray_table.set_alignment({util::Align::kLeft});
    std::string title = "Median makespan on the MPI executor, identical seeds per arm";
    if (gray_fail_slow) {
      title += "; workers 2 and 5 fail-slow to " + util::format_percent(gray_residual, 0) +
               " availability at t=200/400";
    }
    if (gray_corrupt) {
      title += "; " + util::format_percent(corrupt_rate, 1) +
               " payload corruption per message both directions";
    }
    title += "; deadline " + util::format_fixed(gray_deadline, 0);
    gray_table.set_title(title);
    for (dls::TechniqueId id : techniques) {
      sim::SimConfig naive;
      naive.iteration_cov = 0.1;
      naive.availability_mode = sim::AvailabilityMode::kConstantMean;
      if (gray_fail_slow) {
        for (const auto& [worker, time] :
             {std::pair<std::size_t, double>{2, 200.0}, {5, 400.0}}) {
          sim::SimConfig::Failure slow;
          slow.worker = worker;
          slow.time = time;
          slow.residual_availability = gray_residual;
          slow.kind = sim::SimConfig::FailureKind::kDegrade;
          naive.failures.push_back(slow);
        }
      }
      if (gray_corrupt) {
        naive.channel.corrupt_to_worker = naive.channel.corrupt_to_master = corrupt_rate;
        naive.channel.max_retransmits = 0;
      }
      sim::SimConfig spec_only = naive;
      spec_only.channel.max_retransmits = 8;
      spec_only.speculation.enabled = true;
      spec_only.speculation.quantile = cli.get_double("quantile");
      sim::SimConfig quar = spec_only;
      quar.quarantine.enabled = true;
      quar.quarantine.audit_rate = 0.1;

      std::string naive_cell = "stranded";
      std::string naive_hits = "-";
      obs::Json naive_json = obs::Json::object();
      try {
        const sim::ReplicationSummary arm_naive = sim::simulate_replicated_mpi(
            app, 0, 8, full, id, naive, messages, seed, replications, gray_deadline);
        naive_cell = util::format_fixed(arm_naive.median_makespan, 0);
        naive_hits = util::format_percent(arm_naive.deadline_hit_rate, 0);
        naive_json = obs::to_json(arm_naive, gray_deadline);
      } catch (const std::runtime_error& error) {
        // With --corrupt the naive arm discards corrupted copies but can
        // never retransmit them, so workers are attrited until the loop
        // strands — that failure IS the data point.
        naive_json.set("stranded", true);
        naive_json.set("error", std::string(error.what()));
      }
      const sim::ReplicationSummary arm_spec = sim::simulate_replicated_mpi(
          app, 0, 8, full, id, spec_only, messages, seed, replications, gray_deadline);
      const sim::ReplicationSummary arm_quar = sim::simulate_replicated_mpi(
          app, 0, 8, full, id, quar, messages, seed, replications, gray_deadline);
      const sim::QuarantineStats& q = arm_quar.quarantine_total;
      gray_table.add_row(
          {dls::technique_name(id), naive_cell,
           util::format_fixed(arm_spec.median_makespan, 0),
           util::format_fixed(arm_quar.median_makespan, 0),
           naive_hits + "/" + util::format_percent(arm_spec.deadline_hit_rate, 0) + "/" +
               util::format_percent(arm_quar.deadline_hit_rate, 0),
           std::to_string(q.quarantines),
           std::to_string(q.audits_launched) + " (" + std::to_string(q.audit_mismatches) +
               ")",
           std::to_string(arm_quar.channel_total.corrupted)});
      obs::Json entry = obs::Json::object();
      entry.set("technique", dls::technique_name(id));
      entry.set("naive", std::move(naive_json));
      entry.set("speculation", obs::to_json(arm_spec, gray_deadline));
      entry.set("quarantine_integrity", obs::to_json(arm_quar, gray_deadline));
      json_gray.push_back(std::move(entry));
    }
    std::puts(gray_table.render().c_str());
    std::puts("Reading guide: gray failures are the cases the binary fault model misses —");
    std::puts("the fail-slow workers keep accepting work at a tenth of their promised rate,");
    std::puts("and corrupted payloads parse fine. The naive arm strands (corruption with no");
    std::puts("retransmission) or blows through the deadline; speculation rescues in-flight");
    std::puts("chunks but keeps re-feeding the slow workers; quarantine stops feeding them");
    std::puts("after a few observations, and the audit layer is what catches silently wrong");
    std::puts("results (checksums only cover the wire, not a lying worker).");
  }
  report.set("schema", "cdsf.ablation_report/1");
  report.set("bench", "failure_ablation");
  report.set("mode", mode);
  report.set("replications", replications);
  report.set("seed", static_cast<std::int64_t>(seed));
  if (kind == sim::SimConfig::FailureKind::kDegrade) {
    report.set("residual", residual);
    std::puts("Reading guide: STATIC strands the dead worker's whole remaining share (worst");
    std::puts("for early failures); dynamic techniques lose only the chunk in flight, so the");
    std::puts("penalty tracks the CURRENT chunk size — small for SS, large for GSS's first");
    std::puts("chunk, shrinking over time for the factoring family.");
  } else {
    if (kind == sim::SimConfig::FailureKind::kCrashRecover) {
      report.set("recovery_delay", recovery_delay);
    }
    std::puts(faults.render().c_str());
    std::puts("Reading guide: a crash loses at most the chunk in flight — the re-executed");
    std::puts("iterations track the technique's chunk size at the failure time, and the");
    std::puts("wasted work is the partial progress on the lost chunk that must be redone.");
    remap_comparison(seed, replications, json_path.empty() ? nullptr : &report);
  }
  if (!json_path.empty()) {
    report.set("techniques", std::move(json_techniques));
    if (cli.get_flag("speculate")) {
      report.set("_format",
                 "Speculation ablation recorded in BENCH_baseline.json's self-documented "
                 "style. Each 'speculation_ablation' entry holds the replication summary "
                 "for the three mitigation arms {none, redispatch, speculation} under "
                 "identical seeds; 'speculation.mean_makespan' must be strictly below "
                 "'redispatch.mean_makespan' for every dynamic technique "
                 "(docs/fault_tolerance.md).");
      report.set("_command",
                 "build/bench/bench_failure_ablation --speculate --residual 0.2 "
                 "--replications 51 --json BENCH_speculation.json");
      report.set("quantile", cli.get_double("quantile"));
      report.set("speculate_time", cli.get_double("speculate-time"));
      report.set("speculation_ablation", std::move(json_speculation));
    }
    if (cli.get_flag("channel")) {
      report.set("_channel_format",
                 "Each 'channel_ablation' entry holds the replication summary for the "
                 "three protocol arms {reliable, lossy, hardened} on the MPI executor "
                 "under identical seeds. 'lossy' (max_retransmits = 0) may record "
                 "stranded = true instead of a summary — the unhardened protocol can "
                 "fail outright; 'hardened.median_makespan' must stay finite and close "
                 "to 'reliable.median_makespan' (docs/fault_tolerance.md).");
      report.set("_channel_command",
                 "build/bench/bench_failure_ablation --channel --replications 21 "
                 "--json BENCH_channel.json");
      report.set("channel_drop", cli.get_double("channel-drop"));
      report.set("channel_dup", cli.get_double("channel-dup"));
      report.set("channel_reorder", cli.get_double("channel-reorder"));
      report.set("master_crash_time", cli.get_double("master-crash-time"));
      report.set("channel_ablation", std::move(json_channel));
    }
    if (gray_fail_slow || gray_corrupt) {
      report.set("_gray_format",
                 "Each 'gray_ablation' entry holds the replication summary for the three "
                 "gray-failure arms {naive, speculation, quarantine_integrity} on the MPI "
                 "executor under identical seeds. 'naive' may record stranded = true — "
                 "with --corrupt it cannot retransmit checksum-discarded messages; "
                 "otherwise compare 'deadline_hit_rate' across the arms: "
                 "'quarantine_integrity' must complete within the deadline where the "
                 "naive arm strands or misses it (docs/fault_tolerance.md).");
      report.set("_gray_command",
                 "build/bench/bench_failure_ablation --fail-slow --corrupt "
                 "--replications 21 --json BENCH_gray_failure.json");
      report.set("fail_slow", cli.get_flag("fail-slow"));
      report.set("fail_slow_residual", cli.get_double("fail-slow-residual"));
      report.set("corrupt", cli.get_flag("corrupt"));
      report.set("corrupt_rate", cli.get_double("corrupt-rate"));
      report.set("gray_deadline", cli.get_double("gray-deadline"));
      report.set("gray_ablation", std::move(json_gray));
    }
    if (obs::MetricsRegistry::global().enabled()) report.set("metrics", obs::metrics_json());
    obs::write_json(report, json_path);
    std::printf("report written to %s\n", json_path.c_str());
  }
  return 0;
}
