// Ablation: processor failure during execution. Sweeps the failure time of
// one worker (degrading to 2% residual availability) and reports the median
// makespan per DLS technique — quantifying the "blast radius" of the
// non-preemptive chunk in flight and STATIC's stranded share.
#include <cstdio>

#include "sim/loop_executor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/application.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("DLS behaviour under an injected processor failure.");
  cli.add_int("replications", 51, "replications per cell");
  cli.add_double("residual", 0.02, "availability of the failed worker");
  if (!cli.parse(argc, argv)) return 0;

  // 8000 uniform iterations on 8 dedicated workers; worker 2 fails.
  const workload::Application app(
      "steady", 0, 8000, {workload::TimeLaw{workload::TimeLawKind::kNormal, 8000.0, 0.1}});
  const sysmodel::AvailabilitySpec full("dedicated", {pmf::Pmf::delta(1.0)});
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));
  const double residual = cli.get_double("residual");

  const std::vector<double> failure_times = {100.0, 300.0, 600.0, 900.0};
  const std::vector<dls::TechniqueId> techniques = {
      dls::TechniqueId::kStatic, dls::TechniqueId::kSS,  dls::TechniqueId::kGSS,
      dls::TechniqueId::kTSS,    dls::TechniqueId::kFAC, dls::TechniqueId::kAWF_B,
      dls::TechniqueId::kAF};

  util::Table table;
  std::vector<std::string> headers = {"technique", "no failure"};
  for (double t : failure_times) headers.push_back("fail@" + util::format_fixed(t, 0));
  table.set_headers(headers);
  table.set_alignment({util::Align::kLeft});
  table.set_title("Median makespan, worker 2 degrading to " +
                  util::format_percent(residual, 0) +
                  " availability at the given time (healthy ideal ~1000)");

  for (dls::TechniqueId id : techniques) {
    std::vector<std::string> row = {dls::technique_name(id)};
    sim::SimConfig healthy;
    healthy.iteration_cov = 0.1;
    healthy.availability_mode = sim::AvailabilityMode::kConstantMean;
    row.push_back(util::format_fixed(
        sim::simulate_replicated(app, 0, 8, full, id, healthy, 3, replications, 1e18)
            .median_makespan,
        0));
    for (double t : failure_times) {
      sim::SimConfig config = healthy;
      config.failures.push_back({2, t, residual});
      row.push_back(util::format_fixed(
          sim::simulate_replicated(app, 0, 8, full, id, config, 3, replications, 1e18)
              .median_makespan,
          0));
    }
    table.add_row(row);
  }
  std::puts(table.render().c_str());
  std::puts("Reading guide: STATIC strands the dead worker's whole remaining share (worst");
  std::puts("for early failures); dynamic techniques lose only the chunk in flight, so the");
  std::puts("penalty tracks the CURRENT chunk size — small for SS, large for GSS's first");
  std::puts("chunk, shrinking over time for the factoring family.");
  return 0;
}
