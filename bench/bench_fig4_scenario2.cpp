// Reproduces Figure 4 — scenario 2: robust IM (exhaustive optimal) +
// naive RAS (STATIC).
#include <cstdio>

#include "scenario_common.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  bool help = false;
  const bench::ScenarioBenchOptions options = bench::parse_scenario_options(
      argc, argv, "Figure 4 — scenario 2: robust IM + STATIC.", &help);
  if (help) return 0;

  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);

  const double paper_t[3] = {1365.46, 1959.59, 2699.86};
  const ra::Allocation robust = core::paper_robust_allocation();
  std::puts("Figure 4 reference markers (expected STATIC times under case 1):");
  for (std::size_t app = 0; app < 3; ++app) {
    std::printf("  T%zu: measured %.2f, paper %.2f\n", app + 1,
                framework.analytic_static_time(app, robust.at(app), example.cases.front()),
                paper_t[app]);
  }
  std::printf("  deadline Delta = %.0f\n\n", example.deadline);

  core::StageTwoConfig config;
  config.replications = options.replications;
  config.seed = options.seed;
  config.threads = util::default_thread_count();
  const std::vector<dls::TechniqueId> techniques = {dls::TechniqueId::kStatic};
  const core::ScenarioResult scenario = framework.run_scenario(
      "robust IM + STATIC", ra::ExhaustiveOptimal(), techniques, example.cases, config);
  bench::print_scenario(example, framework, scenario, techniques);
  if (!options.csv_path.empty()) {
    bench::write_scenario_csv(options.csv_path, example, scenario, techniques);
  }
  if (!options.json_path.empty()) {
    bench::write_scenario_json(options.json_path, "bench_fig4_scenario2", example, framework, scenario,
                               options);
  }
  std::puts("Paper verdict: phi_1 = 74.5% but STATIC degrades with decreasing availability;");
  std::puts("phi_2 > Delta for all four cases — the system is not robust.");
  return 0;
}
