// Reproduces Figure 5 — scenario 3: naive IM (simple load balancing) +
// robust RAS ({FAC, WF, AWF-B, AF}).
#include <cstdio>

#include "scenario_common.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  bool help = false;
  const bench::ScenarioBenchOptions options = bench::parse_scenario_options(
      argc, argv, "Figure 5 — scenario 3: naive IM + robust DLS.", &help);
  if (help) return 0;

  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);
  core::StageTwoConfig config;
  config.replications = options.replications;
  config.seed = options.seed;
  config.threads = util::default_thread_count();

  const auto techniques = dls::paper_robust_set();
  const core::ScenarioResult scenario = framework.run_scenario(
      "naive IM + robust DLS", ra::NaiveLoadBalance(), techniques, example.cases, config);
  bench::print_scenario(example, framework, scenario, techniques);
  if (!options.csv_path.empty()) {
    bench::write_scenario_csv(options.csv_path, example, scenario, techniques);
  }
  if (!options.json_path.empty()) {
    bench::write_scenario_json(options.json_path, "bench_fig5_scenario3", example, framework, scenario,
                               options);
  }
  std::puts("Paper verdict: even the most robust DLS cannot compensate the naive mapping —");
  std::puts("application 3 violates the deadline at case 1 and applications 1 and 3 in");
  std::puts("cases 2-4; the system is not robust.");
  return 0;
}
