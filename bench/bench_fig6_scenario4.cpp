// Reproduces Figure 6 — scenario 4: robust IM (exhaustive optimal) +
// robust RAS ({FAC, WF, AWF-B, AF}) — the scenario that demonstrates the
// usefulness of the combined dual-stage framework.
#include <cstdio>

#include "scenario_common.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  bool help = false;
  const bench::ScenarioBenchOptions options = bench::parse_scenario_options(
      argc, argv, "Figure 6 — scenario 4: robust IM + robust DLS.", &help);
  if (help) return 0;

  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);
  core::StageTwoConfig config;
  config.replications = options.replications;
  config.seed = options.seed;
  config.threads = util::default_thread_count();

  const auto techniques = dls::paper_robust_set();
  const core::ScenarioResult scenario = framework.run_scenario(
      "robust IM + robust DLS", ra::ExhaustiveOptimal(), techniques, example.cases, config);
  bench::print_scenario(example, framework, scenario, techniques);
  if (!options.csv_path.empty()) {
    bench::write_scenario_csv(options.csv_path, example, scenario, techniques);
  }
  if (!options.json_path.empty()) {
    bench::write_scenario_json(options.json_path, "bench_fig6_scenario4", example, framework, scenario,
                               options);
  }
  std::puts("Paper verdict: deadline met for all applications through a 30.77% weighted");
  std::puts("availability decrease (case 3); violated in case 4 (app 2 under every DLS).");
  std::puts("System robustness (rho_1, rho_2) = (74.5%, 30.77%); ours uses the rounded");
  std::puts("Table I inputs, giving rho_2 = 30.89%.");
  return 0;
}
