// Ablation: intrinsic (algorithmic) imbalance in isolation. All processors
// are fully dedicated (no availability perturbation), so any load imbalance
// comes purely from the iteration-index cost profile — the paper's "input
// data / algorithmic" source of uncertainty, separated from the systemic
// one the other benches exercise.
#include <cstdio>

#include "sim/loop_executor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/application.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Intrinsic-imbalance ablation: DLS techniques vs iteration cost profiles.");
  cli.add_int("replications", 31, "replications per cell");
  if (!cli.parse(argc, argv)) return 0;

  const sysmodel::AvailabilitySpec full("dedicated", {pmf::Pmf::delta(1.0)});
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));
  sim::SimConfig config;
  config.iteration_cov = 0.2;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;

  const workload::IterationProfile profiles[] = {
      workload::IterationProfile::kFlat, workload::IterationProfile::kIncreasing,
      workload::IterationProfile::kDecreasing, workload::IterationProfile::kParabolic};
  const std::vector<dls::TechniqueId> techniques = {
      dls::TechniqueId::kStatic, dls::TechniqueId::kSS,    dls::TechniqueId::kGSS,
      dls::TechniqueId::kTSS,    dls::TechniqueId::kFAC,   dls::TechniqueId::kTFSS,
      dls::TechniqueId::kAWF_B,  dls::TechniqueId::kAWF_C, dls::TechniqueId::kAF};

  util::Table table;
  std::vector<std::string> headers = {"technique"};
  for (auto profile : profiles) headers.push_back(to_string(profile));
  table.set_headers(headers);
  table.set_alignment({util::Align::kLeft});
  table.set_title(
      "Median makespan, 8000 iterations on 8 dedicated workers (ideal = 1000) by cost "
      "profile");

  for (dls::TechniqueId id : techniques) {
    std::vector<std::string> row = {dls::technique_name(id)};
    for (auto profile : profiles) {
      const workload::Application app(
          "p", 0, 8000, {workload::TimeLaw{workload::TimeLawKind::kNormal, 8000.0, 0.1}},
          profile);
      const sim::ReplicationSummary summary =
          sim::simulate_replicated(app, 0, 8, full, id, config, 17, replications, 1e18);
      row.push_back(util::format_fixed(summary.median_makespan, 0));
    }
    table.add_row(row);
  }
  std::puts(table.render().c_str());
  std::puts("Reading guide: STATIC pays the full profile skew (increasing: the last share");
  std::puts("holds ~21% of the work on 8 workers); GSS is hostage to its giant first chunk");
  std::puts("exactly when the loop is front-loaded (decreasing); the factoring family and");
  std::puts("the adaptive techniques absorb every profile at a few percent over ideal.");
  return 0;
}
