// The paper's future-work study: a larger problem (more applications, more
// processor types, more processors) demonstrating why scalable RA
// heuristics are needed — the exhaustive search space explodes — and how
// the CDSF behaves at scale.
#include <cstdio>

#include "cdsf/framework.hpp"
#include "ra/heuristics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Large-scale CDSF study (future-work section of the paper).");
  cli.add_int("apps", 10, "applications in the batch");
  cli.add_int("seed", 7, "workload seed");
  cli.add_int("replications", 31, "stage II replications");
  if (!cli.parse(argc, argv)) return 0;

  // A 3-type, 56-processor system with distinct availability profiles.
  const sysmodel::Platform platform({{"fast", 8}, {"mid", 16}, {"slow", 32}});
  const sysmodel::AvailabilitySpec reference(
      "reference", {pmf::Pmf::from_pulses({{0.70, 0.30}, {1.00, 0.70}}),
                    pmf::Pmf::from_pulses({{0.40, 0.25}, {0.70, 0.25}, {1.00, 0.50}}),
                    pmf::Pmf::from_pulses({{0.25, 0.30}, {0.50, 0.40}, {0.90, 0.30}})});
  const sysmodel::AvailabilitySpec degraded(
      "degraded", {pmf::Pmf::from_pulses({{0.50, 0.60}, {0.80, 0.40}}),
                   pmf::Pmf::from_pulses({{0.30, 0.50}, {0.60, 0.40}, {0.90, 0.10}}),
                   pmf::Pmf::from_pulses({{0.15, 0.40}, {0.40, 0.40}, {0.70, 0.20}})});

  workload::BatchSpec spec;
  spec.applications = static_cast<std::size_t>(cli.get_int("apps"));
  spec.processor_types = 3;
  spec.min_total_iterations = 1000;
  spec.max_total_iterations = 6000;
  spec.min_mean_time = 4000.0;
  spec.max_mean_time = 40000.0;
  const workload::Batch batch =
      workload::generate_batch(spec, static_cast<std::uint64_t>(cli.get_int("seed")));

  const double deadline = 14000.0;
  const core::Framework framework(batch, platform, reference, deadline);

  std::printf("search-space size (power-of-2 groups, %zu apps, 3 types): %zu feasible allocations\n",
              batch.size(),
              ra::count_feasible(std::min<std::size_t>(batch.size(), 6), platform,
                                 ra::CountRule::kPowerOfTwo));
  std::puts("(already truncated to 6 applications for counting — the full batch is beyond");
  std::puts("exhaustive reach, which is exactly the paper's motivation for RA heuristics)\n");

  util::Table table({"heuristic", "phi_1", "max E[T]", "procs used", "robust vs degraded?"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("Stage I heuristics on the large instance (deadline " +
                  util::format_fixed(deadline, 0) + ")");
  core::StageTwoConfig config;
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));

  for (const auto& heuristic : ra::all_heuristics(false)) {
    const core::StageOneResult stage1 = framework.run_stage_one(*heuristic);
    double worst = 0.0;
    for (double t : stage1.expected_times) worst = std::max(worst, t);
    const core::StageTwoResult stage2 = framework.run_stage_two(
        stage1.allocation, degraded, dls::paper_robust_set(), config);
    table.add_row({heuristic->name(), util::format_percent(stage1.phi1, 1),
                   util::format_fixed(worst, 0),
                   std::to_string(stage1.allocation.total_processors()) + "/" +
                       std::to_string(platform.total_processors()),
                   stage2.all_meet_deadline ? "yes" : "no"});
  }
  std::puts(table.render().c_str());
  return 0;
}
