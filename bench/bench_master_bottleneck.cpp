// Ablation: master saturation in the message-passing master-worker model.
// Sweeps the worker count for several DLS techniques and reports makespan
// plus master utilization — regenerating the classic scaling argument for
// chunked self-scheduling: SS's one-request-per-iteration floods the
// master, factoring-family techniques stay off the critical path.
// --json writes a cdsf.master_bottleneck/1 document (deterministic:
// master_utilization is gated by tools/check_bench_regression.py,
// makespan values are structural).
#include <cstdio>
#include <string>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "sim/master_worker.hpp"
#include "sysmodel/cases.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/application.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Master-bottleneck scaling study (message-passing model).");
  cli.add_double("latency", 0.05, "one-way message latency");
  cli.add_double("service", 0.05, "master service time per request");
  cli.add_int("seed", 6, "simulation seed");
  cli.add_string("json", "", "write the cdsf.master_bottleneck/1 document here");
  if (!cli.parse(argc, argv)) return 0;

  // A fine-grained loop: 32768 iterations of mean cost 0.25.
  const workload::Application app(
      "finegrain", 0, 32768,
      {workload::TimeLaw{workload::TimeLawKind::kNormal, 8192.0, 0.1}});
  const sysmodel::AvailabilitySpec full("dedicated", {pmf::Pmf::delta(1.0)});
  const sim::MessageModel messages{cli.get_double("latency"), cli.get_double("service")};
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  sim::SimConfig config;
  config.iteration_cov = 0.2;
  config.availability_mode = sim::AvailabilityMode::kConstantMean;
  config.scheduling_overhead = 0.0;

  const std::vector<dls::TechniqueId> techniques = {
      dls::TechniqueId::kSS, dls::TechniqueId::kFSC, dls::TechniqueId::kGSS,
      dls::TechniqueId::kTSS, dls::TechniqueId::kFAC, dls::TechniqueId::kAF};
  const std::vector<std::size_t> worker_counts = {4, 8, 16, 32, 64};

  util::Table table;
  std::vector<std::string> headers = {"technique"};
  for (std::size_t p : worker_counts) headers.push_back("P=" + std::to_string(p));
  headers.push_back("master util (P=64)");
  table.set_headers(headers);
  table.set_alignment({util::Align::kLeft});
  table.set_title("Makespan vs worker count (latency " +
                  util::format_fixed(messages.latency, 2) + ", master service " +
                  util::format_fixed(messages.master_service_time, 2) + ")");

  obs::Json techniques_doc = obs::Json::array();
  for (dls::TechniqueId id : techniques) {
    std::vector<std::string> row = {dls::technique_name(id)};
    double last_utilization = 0.0;
    obs::Json points = obs::Json::array();
    for (std::size_t p : worker_counts) {
      const sim::MpiRunResult result =
          sim::simulate_loop_mpi(app, 0, p, full, id, config, messages, seed);
      row.push_back(util::format_fixed(result.run.makespan, 0));
      last_utilization = result.master.busy_time / result.run.makespan;
      obs::Json point = obs::Json::object();
      point.set("workers", p);
      point.set("makespan", result.run.makespan);
      point.set("master_utilization", result.master.busy_time / result.run.makespan);
      points.push_back(std::move(point));
    }
    row.push_back(util::format_percent(last_utilization, 0));
    table.add_row(row);
    obs::Json technique_doc = obs::Json::object();
    technique_doc.set("technique", dls::technique_name(id));
    technique_doc.set("points", std::move(points));
    techniques_doc.push_back(std::move(technique_doc));
  }
  std::puts(table.render().c_str());
  std::puts("Expected shape: ideal scaling halves the makespan per doubling; SS stops");
  std::puts("scaling once the master saturates (utilization -> 100%), while the batch");
  std::puts("techniques keep near-ideal speedup with single-digit master utilization.");

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    obs::Json doc = obs::Json::object();
    doc.set("schema", "cdsf.master_bottleneck/1");
    doc.set("_command", "build/bench/bench_master_bottleneck --json " + json_path);
    obs::Json config_doc = obs::Json::object();
    config_doc.set("latency", messages.latency);
    config_doc.set("master_service_time", messages.master_service_time);
    config_doc.set("seed", seed);
    doc.set("config", std::move(config_doc));
    doc.set("techniques", std::move(techniques_doc));
    obs::write_json(doc, json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
