// Micro-benchmarks (google-benchmark) for the PMF engine — the inner loop
// of Stage I's exhaustive and heuristic searches.
#include <benchmark/benchmark.h>

#include "pmf/discretize.hpp"
#include "pmf/ops.hpp"
#include "pmf/pmf.hpp"
#include "stats/distribution.hpp"
#include "util/rng.hpp"

namespace {

using namespace cdsf;

pmf::Pmf make_pmf(std::size_t pulses, std::uint64_t seed) {
  util::RngStream rng(seed);
  std::vector<pmf::Pulse> out;
  out.reserve(pulses);
  for (std::size_t i = 0; i < pulses; ++i) {
    out.push_back({rng.uniform(1.0, 1000.0), rng.uniform(0.01, 1.0)});
  }
  return pmf::Pmf::from_pulses(std::move(out));
}

void BM_PmfConstruction(benchmark::State& state) {
  const auto pulses = static_cast<std::size_t>(state.range(0));
  util::RngStream rng(1);
  std::vector<pmf::Pulse> raw;
  raw.reserve(pulses);
  for (std::size_t i = 0; i < pulses; ++i) {
    raw.push_back({rng.uniform(1.0, 1000.0), rng.uniform(0.01, 1.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf::Pmf::from_pulses(raw));
  }
}
BENCHMARK(BM_PmfConstruction)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ConvolveSum(benchmark::State& state) {
  const pmf::Pmf a = make_pmf(static_cast<std::size_t>(state.range(0)), 2);
  const pmf::Pmf b = make_pmf(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf::convolve_sum(a, b));
  }
}
BENCHMARK(BM_ConvolveSum)->Arg(16)->Arg(64)->Arg(128);

void BM_ApplyAvailability(benchmark::State& state) {
  const pmf::Pmf time = make_pmf(static_cast<std::size_t>(state.range(0)), 4);
  const pmf::Pmf avail = pmf::Pmf::from_pulses({{0.25, 0.25}, {0.5, 0.25}, {1.0, 0.5}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf::apply_availability(time, avail));
  }
}
BENCHMARK(BM_ApplyAvailability)->Arg(16)->Arg(64)->Arg(256);

void BM_IndependentMax(benchmark::State& state) {
  const pmf::Pmf a = make_pmf(static_cast<std::size_t>(state.range(0)), 5);
  const pmf::Pmf b = make_pmf(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmf::independent_max(a, b));
  }
}
BENCHMARK(BM_IndependentMax)->Arg(64)->Arg(512);

void BM_Compaction(benchmark::State& state) {
  const pmf::Pmf big = make_pmf(2048, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(big.compacted(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_Compaction)->Arg(512)->Arg(64);

void BM_DiscretizeQuantile(benchmark::State& state) {
  const stats::Normal dist(1800.0, 180.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pmf::discretize_quantile(dist, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_DiscretizeQuantile)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
