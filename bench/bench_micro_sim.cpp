// Micro-benchmarks (google-benchmark) for the discrete-event loop
// simulator and the Stage I robustness evaluation — the two hot paths of
// every experiment in this repository.
#include <benchmark/benchmark.h>

#include <functional>

#include "cdsf/paper_example.hpp"
#include "ra/heuristics.hpp"
#include "sim/engine.hpp"
#include "sim/loop_executor.hpp"

namespace {

using namespace cdsf;

void BM_SimulateLoopApp3(benchmark::State& state) {
  const core::PaperExample example = core::make_paper_example();
  const auto id = static_cast<dls::TechniqueId>(state.range(0));
  const sim::SimConfig config;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_loop(example.batch.at(2), 1, 8, example.cases.front(), id, config,
                           seed++));
  }
  state.SetLabel(dls::technique_name(id));
}
BENCHMARK(BM_SimulateLoopApp3)
    ->Arg(static_cast<int>(dls::TechniqueId::kStatic))
    ->Arg(static_cast<int>(dls::TechniqueId::kSS))
    ->Arg(static_cast<int>(dls::TechniqueId::kFAC))
    ->Arg(static_cast<int>(dls::TechniqueId::kAWF_B))
    ->Arg(static_cast<int>(dls::TechniqueId::kAF));

void BM_StageOneExhaustive(benchmark::State& state) {
  const core::PaperExample example = core::make_paper_example();
  for (auto _ : state) {
    // Fresh evaluator per iteration: measures the uncached search cost.
    ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(), example.deadline);
    benchmark::DoNotOptimize(ra::ExhaustiveOptimal().allocate(
        evaluator, example.platform, ra::CountRule::kPowerOfTwo));
  }
}
BENCHMARK(BM_StageOneExhaustive);

void BM_JointProbabilityCached(benchmark::State& state) {
  const core::PaperExample example = core::make_paper_example();
  ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(), example.deadline);
  const ra::Allocation allocation = core::paper_robust_allocation();
  (void)evaluator.joint_probability(allocation);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.joint_probability(allocation));
  }
}
BENCHMARK(BM_JointProbabilityCached);

void BM_EventEngineThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10000) engine.schedule_after(1.0, chain);
    };
    engine.schedule_at(0.0, chain);
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_EventEngineThroughput);

}  // namespace

BENCHMARK_MAIN();
