// Future-work study: multiple batches arriving over time. Probes how the
// Stage I heuristic choice propagates into sustained operation: a batch's
// makespan becomes the queueing delay of the NEXT batch, which consumes its
// deadline slack — so per-batch robustness and throughput interact.
#include <cstdio>

#include "cdsf/multi_batch.hpp"
#include "sysmodel/cases.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Multi-batch CDSF operation under an arrival stream.");
  cli.add_int("batches", 10, "number of arriving batches");
  cli.add_double("interarrival", 2500.0, "mean inter-arrival time");
  cli.add_double("slack", 9000.0, "per-batch deadline slack from arrival");
  cli.add_int("seed", 4, "master seed");
  if (!cli.parse(argc, argv)) return 0;

  const sysmodel::Platform platform = sysmodel::paper_platform();
  const sysmodel::AvailabilitySpec reference = sysmodel::paper_case(1);
  const sysmodel::AvailabilitySpec degraded = sysmodel::paper_case(3);

  core::MultiBatchConfig config;
  config.batches = static_cast<std::size_t>(cli.get_int("batches"));
  config.mean_interarrival = cli.get_double("interarrival");
  config.deadline_slack = cli.get_double("slack");
  config.batch_spec.applications = 3;
  config.batch_spec.processor_types = 2;
  config.batch_spec.min_total_iterations = 1000;
  config.batch_spec.max_total_iterations = 5000;
  config.batch_spec.min_mean_time = 2000.0;
  config.batch_spec.max_mean_time = 10000.0;
  config.stage_two.replications = 15;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  util::Table table({"stage I heuristic", "runtime avail", "deadline hit rate",
                     "mean queueing delay", "total time"});
  table.set_alignment({util::Align::kLeft, util::Align::kLeft});
  table.set_title("Sustained multi-batch operation (" + std::to_string(config.batches) +
                  " batches, mean inter-arrival " +
                  util::format_fixed(config.mean_interarrival, 0) + ", slack " +
                  util::format_fixed(config.deadline_slack, 0) + ")");

  const ra::NaiveLoadBalance naive;
  const ra::GreedyRobustness greedy;
  struct Case {
    const ra::Heuristic* heuristic;
    const sysmodel::AvailabilitySpec* runtime;
    const char* label;
  };
  const Case cases[4] = {{&naive, &reference, "reference"},
                         {&greedy, &reference, "reference"},
                         {&naive, &degraded, "degraded (case 3)"},
                         {&greedy, &degraded, "degraded (case 3)"}};
  for (const Case& c : cases) {
    const core::MultiBatchResult result =
        core::run_multi_batch(platform, reference, *c.runtime, *c.heuristic, config, seed);
    table.add_row({c.heuristic->name(), c.label,
                   util::format_percent(result.deadline_hit_rate, 0),
                   util::format_fixed(result.mean_queueing_delay, 0),
                   util::format_fixed(result.total_time, 0)});
  }
  std::puts(table.render().c_str());
  std::puts("Finding: under a sustained arrival stream, maximizing THIS batch's deadline");
  std::puts("probability is not automatically better than naive equal-share — the batch");
  std::puts("makespan feeds back into later batches' remaining slack. GreedyRobustness's");
  std::puts("expected-time polish (phase 2) closes most of the throughput gap, but a");
  std::puts("truly stream-aware Stage I would optimize Pr(deadline) AND makespan jointly;");
  std::puts("single-batch studies (the paper's setting) cannot expose this coupling.");
  return 0;
}
