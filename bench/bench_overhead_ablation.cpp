// Ablation: scheduling-overhead sweep. Chunk-based techniques trade
// dispatch overhead h against load imbalance; this bench regenerates the
// classic crossover (SS optimal at h = 0, coarse chunking wins as h grows)
// that motivates factoring-style batch rules.
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "sim/loop_executor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Scheduling-overhead ablation for the DLS techniques.");
  cli.add_int("replications", 51, "replications per cell");
  if (!cli.parse(argc, argv)) return 0;

  const core::PaperExample example = core::make_paper_example();
  const workload::Application& app = example.batch.at(2);
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));

  const std::vector<dls::TechniqueId> techniques = {
      dls::TechniqueId::kSS,  dls::TechniqueId::kFSC,   dls::TechniqueId::kGSS,
      dls::TechniqueId::kTSS, dls::TechniqueId::kFAC,   dls::TechniqueId::kAWF_B,
      dls::TechniqueId::kAF,  dls::TechniqueId::kStatic};
  const std::vector<double> overheads = {0.0, 0.25, 1.0, 4.0, 16.0};

  util::Table table;
  std::vector<std::string> headers = {"technique"};
  for (double h : overheads) headers.push_back("h=" + util::format_fixed(h, 2));
  table.set_headers(headers);
  table.set_alignment({util::Align::kLeft});
  table.set_title(
      "Median makespan of app3 (8 x type2, case 1) vs per-chunk scheduling overhead h");

  for (dls::TechniqueId id : techniques) {
    std::vector<std::string> row = {dls::technique_name(id)};
    for (double h : overheads) {
      sim::SimConfig config;
      config.scheduling_overhead = h;
      const sim::ReplicationSummary summary = sim::simulate_replicated(
          app, 1, 8, example.cases.front(), id, config, 31, replications, example.deadline);
      row.push_back(util::format_fixed(summary.median_makespan, 0));
    }
    table.add_row(row);
  }
  std::puts(table.render().c_str());
  std::puts("Expected shape: SS degrades linearly in h (one dispatch per iteration);");
  std::puts("batch techniques are nearly flat; STATIC ignores h but pays imbalance.");
  return 0;
}
