// The robustness/performance Pareto frontier of the paper's instance: all
// 153 feasible allocations collapse to a handful of non-dominated
// (phi_1, E[Psi]) points. Shows where the paper's robust mapping sits on
// the trade-off and what a stream-aware manager with a makespan budget
// would pick instead.
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "ra/pareto.hpp"
#include "util/table.hpp"

int main() {
  using namespace cdsf;
  const core::PaperExample example = core::make_paper_example();
  const ra::Allocation robust = core::paper_robust_allocation();
  const ra::Allocation naive = core::paper_naive_allocation();

  for (double deadline : {example.deadline, 2200.0}) {
    const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(), deadline);
    const std::vector<ra::ParetoPoint> frontier =
        ra::pareto_frontier(evaluator, example.platform, ra::CountRule::kPowerOfTwo);

    util::Table table({"allocation", "phi_1", "E[Psi]", "note"});
    table.set_alignment({util::Align::kLeft, util::Align::kRight, util::Align::kRight,
                         util::Align::kLeft});
    table.set_title("(phi_1, E[Psi]) Pareto frontier over all " +
                    std::to_string(ra::count_feasible(3, example.platform,
                                                      ra::CountRule::kPowerOfTwo)) +
                    " feasible allocations (deadline " + util::format_fixed(deadline, 0) +
                    ", availability Â)");
    for (const ra::ParetoPoint& point : frontier) {
      std::string note;
      if (point.allocation == robust) note = "<- paper's robust IM";
      if (point.allocation == naive) note = "<- paper's naive IM";
      table.add_row({point.allocation.to_string(example.platform),
                     util::format_percent(point.phi1, 1),
                     util::format_fixed(point.expected_makespan, 0), note});
    }
    std::puts(table.render().c_str());
  }
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);

  const pmf::Pmf naive_psi = evaluator.system_makespan_pmf(naive);
  std::printf("for reference, the naive IM scores (%s, %.0f) — dominated by the frontier.\n",
              util::format_percent(naive_psi.cdf(example.deadline), 1).c_str(),
              naive_psi.expectation());
  std::puts("\nFinding: on the paper's instance the frontier is a SINGLE point — the robust");
  std::puts("mapping dominates all 152 alternatives in both objectives simultaneously, at");
  std::puts("the paper's deadline and at tighter ones. Richer instances (more applications");
  std::puts("per processor) produce genuine multi-point frontiers.");
  std::puts("\nReading guide: the frontier quantifies the robustness/performance trade-off");
  std::puts("that a single phi_1 number hides; under an arrival stream (bench_multi_batch)");
  std::puts("a manager would pick the highest-phi_1 point within its makespan budget");
  std::puts("(ra::best_within_makespan_budget).");
  return 0;
}
