// Cross-validation of Stage I's analytic robustness metric against the
// discrete-event simulator: Monte-Carlo Pr(Psi <= Delta) under the
// Stage-I-mirror configuration must reproduce the PMF-computed phi_1 for
// every feasible allocation — a validation the paper itself never ran.
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "ra/robustness.hpp"
#include "sim/batch_executor.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Analytic phi_1 vs Monte-Carlo Pr(Psi <= Delta) cross-validation.");
  cli.add_int("replications", 4000, "Monte-Carlo batch executions per allocation");
  cli.add_int("allocations", 12, "number of feasible allocations to validate (stride-sampled)");
  cli.add_int("seed", 17, "master seed");
  if (!cli.parse(argc, argv)) return 0;

  const core::PaperExample example = core::make_paper_example();
  const ra::RobustnessEvaluator evaluator(example.batch, example.cases.front(),
                                          example.deadline);
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const sim::SimConfig config = sim::stage_one_mirror_config();

  const std::vector<ra::Allocation> all =
      ra::enumerate_feasible(example.batch.size(), example.platform, ra::CountRule::kPowerOfTwo);
  const auto wanted = static_cast<std::size_t>(cli.get_int("allocations"));
  const std::size_t stride = std::max<std::size_t>(1, all.size() / wanted);

  util::Table table({"allocation", "analytic phi_1", "Monte-Carlo", "MC std err", "|diff|"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("phi_1 validation over " + std::to_string(replications) +
                  " simulated batch executions per allocation");
  double worst = 0.0;
  for (std::size_t i = 0; i < all.size(); i += stride) {
    const ra::Allocation& allocation = all[i];
    const double analytic = evaluator.joint_probability(allocation);
    const sim::MonteCarloPhi mc =
        sim::estimate_phi1(example.batch, allocation, example.cases.front(),
                           dls::TechniqueId::kStatic, config, seed + i, replications,
                           example.deadline);
    const double diff = std::fabs(analytic - mc.probability);
    worst = std::max(worst, diff);
    table.add_row({allocation.to_string(example.platform),
                   util::format_percent(analytic, 2), util::format_percent(mc.probability, 2),
                   util::format_percent(mc.standard_error, 2), util::format_percent(diff, 2)});
  }
  std::puts(table.render().c_str());
  std::printf("worst |analytic - MC| over the sampled allocations: %s\n",
              util::format_percent(worst, 2).c_str());
  std::puts("Paper anchors: the naive IM's 26% and the robust IM's 74.5% joint probability");
  std::puts("(rows containing those allocations reproduce them within Monte-Carlo error).");
  return 0;
}
