// RA heuristic comparison on random instances small enough to solve
// exhaustively: solution quality (phi_1 relative to the optimum) and
// wall-clock cost of each heuristic.
#include <chrono>
#include <cstdio>

#include "ra/heuristics.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("RA heuristic quality/runtime comparison against the exhaustive optimum.");
  cli.add_int("instances", 12, "number of random instances");
  cli.add_int("apps", 4, "applications per instance");
  if (!cli.parse(argc, argv)) return 0;

  const sysmodel::Platform platform({{"a", 4}, {"b", 8}});
  const sysmodel::AvailabilitySpec availability(
      "mixed", {pmf::Pmf::from_pulses({{0.6, 0.5}, {1.0, 0.5}}),
                pmf::Pmf::from_pulses({{0.3, 0.25}, {0.6, 0.25}, {1.0, 0.5}})});

  const auto instances = static_cast<std::size_t>(cli.get_int("instances"));
  workload::BatchSpec spec;
  spec.applications = static_cast<std::size_t>(cli.get_int("apps"));
  spec.processor_types = 2;
  spec.min_mean_time = 2000.0;
  spec.max_mean_time = 12000.0;

  struct Accumulated {
    stats::OnlineSummary relative_quality;  // phi_1 / phi_1(optimal)
    stats::OnlineSummary micros;
    std::size_t optimal_hits = 0;
  };
  auto heuristics = ra::all_heuristics(false);
  heuristics.push_back(std::make_unique<ra::BranchAndBoundOptimal>());
  std::vector<Accumulated> accumulated(heuristics.size());

  for (std::size_t i = 0; i < instances; ++i) {
    const workload::Batch batch = workload::generate_batch(spec, 1000 + i);
    const ra::RobustnessEvaluator evaluator(batch, availability, 9000.0);
    const double optimal = evaluator.joint_probability(
        ra::ExhaustiveOptimal().allocate(evaluator, platform, ra::CountRule::kPowerOfTwo));
    for (std::size_t h = 0; h < heuristics.size(); ++h) {
      const auto start = std::chrono::steady_clock::now();
      const ra::Allocation allocation =
          heuristics[h]->allocate(evaluator, platform, ra::CountRule::kPowerOfTwo);
      const auto stop = std::chrono::steady_clock::now();
      const double joint = evaluator.joint_probability(allocation);
      const double relative = optimal > 0.0 ? joint / optimal : 1.0;
      accumulated[h].relative_quality.add(relative);
      accumulated[h].micros.add(std::chrono::duration<double, std::micro>(stop - start).count());
      if (relative > 1.0 - 1e-9) ++accumulated[h].optimal_hits;
    }
  }

  util::Table table({"heuristic", "mean phi_1 / optimal", "worst", "found optimum", "mean us"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("RA heuristics vs exhaustive optimum (" + std::to_string(instances) +
                  " random instances, " + std::to_string(spec.applications) + " apps each)");
  for (std::size_t h = 0; h < heuristics.size(); ++h) {
    table.add_row({heuristics[h]->name(),
                   util::format_percent(accumulated[h].relative_quality.mean(), 1),
                   util::format_percent(accumulated[h].relative_quality.min(), 1),
                   std::to_string(accumulated[h].optimal_hits) + "/" + std::to_string(instances),
                   util::format_fixed(accumulated[h].micros.mean(), 0)});
  }
  std::puts(table.render().c_str());
  return 0;
}
