// Service storm bench: the two MAGPIE parallelism modes of the
// scheduling service under a request storm —
//
//   parallel-requests   many 1-thread solves at once (Phase B fan-out:
//                       ServiceConfig::solve_threads = N, each solve
//                       single-threaded),
//   parallel-solver     one N-thread solve at a time (serial request
//                       loop, core::SolveOptions::threads = N inside
//                       each Stage II Monte-Carlo).
//
// Both modes execute the SAME delivered-request set (the service event
// loop is virtual-time deterministic), so the wall-clock comparison is
// apples-to-apples: request-level parallelism amortizes the serial
// Stage I enumeration per request, solver-level parallelism only speeds
// the Monte-Carlo and leaves Stage I on the critical path. Service-level
// statistics (hit rate, attempts, delivery latency, rho medians) come
// from virtual time + fixed seeds and are DETERMINISTIC — recorded as
// BENCH_service.json and gated in CI by tools/check_bench_regression.py;
// wall times are informational only (no gated key tokens).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cdsf/scenario_io.hpp"
#include "cdsf/solve.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "svc/request.hpp"
#include "svc/service.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

constexpr const char* kSchema = "cdsf.service_storm/1";

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2] : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli(
      "Service storm: many 1-thread solves (solve_threads=N) vs one "
      "N-thread solve at a time (StageTwoConfig threads=N) over the same "
      "deterministic delivered-request set.");
  cli.add_int("requests", 16, "requests in the storm");
  cli.add_int("shards", 4, "solver-pool shards");
  cli.add_int("threads", 4, "parallelism N for both modes");
  cli.add_int("replications", 5, "Stage II replications per solve");
  cli.add_int("seed", 7, "stream + service seed");
  cli.add_double("mean-interarrival", 2.0, "mean virtual interarrival");
  cli.add_string("json", "", "write the cdsf.service_storm/1 document here");
  if (!cli.parse(argc, argv)) return 0;

  const auto requests = static_cast<std::size_t>(cli.get_int("requests"));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  svc::StreamConfig stream_config;
  stream_config.requests = requests;
  stream_config.mean_interarrival = cli.get_double("mean-interarrival");
  stream_config.seed = seed;
  const std::vector<svc::ScenarioRequest> stream =
      svc::make_scripted_stream(stream_config);

  svc::ServiceConfig base;
  base.shards = static_cast<std::size_t>(cli.get_int("shards"));
  base.replications = replications;
  base.seed = seed;
  base.mean_solve_time = 8.0;
  base.solve_time_cov = 0.6;
  base.watchdog_timeout = 240.0;  // storm measures throughput, not faults

  // Mode 1: many 1-thread solves — the service's Phase B fan-out.
  svc::ServiceConfig config_par = base;
  config_par.solve_threads = threads;
  const auto start_par = std::chrono::steady_clock::now();
  const svc::ServiceRunResult run_par = svc::SchedulingService(config_par).run(stream);
  const double wall_parallel_requests = wall_seconds_since(start_par);

  // Reference: the same service fully serial (solve_threads = 1). Bytes
  // must match mode 1 — the determinism contract the chaos axis gates.
  svc::ServiceConfig config_serial = base;
  config_serial.solve_threads = 1;
  const auto start_serial = std::chrono::steady_clock::now();
  const svc::ServiceRunResult run_serial =
      svc::SchedulingService(config_serial).run(stream);
  const double wall_serial = wall_seconds_since(start_serial);
  const bool byte_identical = run_par.report.dump(2) == run_serial.report.dump(2);

  // Mode 2: one N-thread solve at a time over the SAME delivered set.
  std::size_t solver_mode_solves = 0;
  const auto start_solver = std::chrono::steady_clock::now();
  for (const svc::RequestRecord& record : run_par.requests) {
    if (record.outcome != svc::RequestOutcome::kCompleted) continue;
    const svc::ScenarioRequest& request = stream.at(record.id - 1);
    const core::Scenario scenario = core::parse_scenario_text(request.scenario_text);
    core::SolveOptions options;
    options.replications = replications;
    options.seed = request.seed;
    options.threads = threads;
    (void)core::solve_scenario(scenario, options);
    ++solver_mode_solves;
  }
  const double wall_parallel_solver = wall_seconds_since(start_solver);

  // Deterministic service-level statistics (virtual time + fixed seeds).
  std::vector<double> latencies, attempts, rho1s, rho2s;
  std::size_t completed = 0, deadline_hits = 0;
  for (const svc::RequestRecord& record : run_par.requests) {
    if (!svc::outcome_delivered(record.outcome)) continue;
    latencies.push_back(record.delivered_at - record.arrival);
    attempts.push_back(static_cast<double>(record.attempts));
    if (record.outcome == svc::RequestOutcome::kCompleted) {
      ++completed;
      if (record.all_meet_deadline) ++deadline_hits;
      rho1s.push_back(record.rho1);
      rho2s.push_back(record.rho2);
    }
  }
  const double hit_rate =
      completed == 0 ? 0.0
                     : static_cast<double>(deadline_hits) / static_cast<double>(completed);
  double latency_sum = 0.0, attempts_sum = 0.0;
  for (const double value : latencies) latency_sum += value;
  for (const double value : attempts) attempts_sum += value;
  const double n_delivered = latencies.empty() ? 1.0 : static_cast<double>(latencies.size());

  util::Table table({"mode", "parallelism", "solves", "wall (s)"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight});
  table.set_title("Service storm (" + std::to_string(requests) + " requests, N=" +
                  std::to_string(threads) + ", " + std::to_string(replications) +
                  " replications)");
  table.add_row({"parallel-requests", std::to_string(threads) + "x1-thread",
                 std::to_string(run_par.delivered), util::format_fixed(wall_parallel_requests, 2)});
  table.add_row({"parallel-solver", "1x" + std::to_string(threads) + "-thread",
                 std::to_string(solver_mode_solves), util::format_fixed(wall_parallel_solver, 2)});
  table.add_row({"serial", "1x1-thread", std::to_string(run_serial.delivered),
                 util::format_fixed(wall_serial, 2)});
  std::puts(table.render().c_str());
  std::printf("deterministic report bytes across solve_threads: %s\n",
              byte_identical ? "identical" : "DIVERGED");
  std::printf("service level: hit rate %s, %llu hedges, %llu timeouts\n",
              util::format_percent(hit_rate, 0).c_str(),
              static_cast<unsigned long long>(run_par.hedges),
              static_cast<unsigned long long>(run_par.timeouts));

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    obs::Json doc = obs::Json::object();
    doc.set("schema", kSchema);
    doc.set("_command",
            "build/bench/bench_service_storm --json " + json_path);
    obs::Json config_doc = obs::Json::object();
    config_doc.set("requests", requests);
    config_doc.set("shards", base.shards);
    config_doc.set("threads", threads);
    config_doc.set("replications", replications);
    config_doc.set("seed", seed);
    config_doc.set("mean_interarrival", stream_config.mean_interarrival);
    config_doc.set("mean_solve_time", base.mean_solve_time);
    config_doc.set("solve_time_cov", base.solve_time_cov);
    doc.set("config", std::move(config_doc));

    // Gated leaves (deterministic): *_rate / *_median / mean_* keys.
    obs::Json service_doc = obs::Json::object();
    service_doc.set("delivered", run_par.delivered);
    service_doc.set("hedges", run_par.hedges);
    service_doc.set("hedge_wins", run_par.hedge_wins);
    service_doc.set("timeouts", run_par.timeouts);
    service_doc.set("poisoned", run_par.poisoned);
    service_doc.set("deadline_hit_rate", hit_rate);
    service_doc.set("mean_delivery_latency", latency_sum / n_delivered);
    service_doc.set("mean_attempts", attempts_sum / n_delivered);
    service_doc.set("rho1_median", median(rho1s));
    service_doc.set("rho2_median", median(rho2s));
    service_doc.set("byte_identical_across_threads", byte_identical);
    doc.set("service", std::move(service_doc));

    // Ungated wall times (vary run to run; key names avoid gate tokens).
    obs::Json modes_doc = obs::Json::object();
    obs::Json mode_par = obs::Json::object();
    mode_par.set("solves", run_par.delivered);
    mode_par.set("wall_seconds", wall_parallel_requests);
    modes_doc.set("parallel_requests", std::move(mode_par));
    obs::Json mode_solver = obs::Json::object();
    mode_solver.set("solves", solver_mode_solves);
    mode_solver.set("wall_seconds", wall_parallel_solver);
    modes_doc.set("parallel_solver", std::move(mode_solver));
    obs::Json mode_serial = obs::Json::object();
    mode_serial.set("solves", run_serial.delivered);
    mode_serial.set("wall_seconds", wall_serial);
    modes_doc.set("serial", std::move(mode_serial));
    doc.set("modes", std::move(modes_doc));

    obs::write_json(doc, json_path);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return byte_identical ? 0 : 1;
}
