// Reproduces Table I: processor availabilities by type and weighted system
// availabilities for the four cases, with the paper's published values
// alongside.
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "util/table.hpp"

int main() {
  using namespace cdsf;
  const core::PaperExample example = core::make_paper_example();

  // Paper's published per-case values (expected availability per type in %,
  // weighted system availability in %, bracketed decrease in %).
  struct PaperRow {
    double type1;
    double type2;
    double weighted;
    double decrease;  // NaN-ish sentinel -1 for the reference case
  };
  const PaperRow paper[4] = {{87.50, 68.75, 75.00, -1.0},
                             {52.50, 54.55, 53.87, 28.17},
                             {60.58, 47.60, 51.92, 30.77},
                             {41.25, 55.00, 50.42, 32.77}};

  util::Table table({"case", "quantity", "measured", "paper"});
  table.set_alignment({util::Align::kLeft, util::Align::kLeft});
  table.set_title("Table I — processor availabilities by type and weighted system availability");
  const auto& reference = example.cases.front();
  for (int k = 0; k < 4; ++k) {
    const auto& spec = example.cases[static_cast<std::size_t>(k)];
    const std::string case_name = "case " + std::to_string(k + 1);
    table.add_row({case_name, "E[avail] type 1",
                   util::format_percent(spec.expected(0), 2),
                   util::format_fixed(paper[k].type1, 2) + "%"});
    table.add_row({case_name, "E[avail] type 2",
                   util::format_percent(spec.expected(1), 2),
                   util::format_fixed(paper[k].type2, 2) + "%"});
    table.add_row({case_name, "weighted system availability",
                   util::format_percent(spec.weighted_system_availability(example.platform), 2),
                   util::format_fixed(paper[k].weighted, 2) + "%"});
    if (paper[k].decrease >= 0.0) {
      table.add_row(
          {case_name, "decrease vs reference",
           util::format_percent(
               sysmodel::availability_decrease(reference, spec, example.platform), 2),
           util::format_fixed(paper[k].decrease, 2) + "%"});
    }
    if (k < 3) table.add_separator();
  }
  std::puts(table.render().c_str());
  std::puts("Note: the paper's case-3 row was computed from unrounded availability inputs;");
  std::puts("with the printed (rounded) Table I inputs the weighted availability is 51.83%.");
  return 0;
}
