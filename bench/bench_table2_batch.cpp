// Reproduces Table II: characteristics of the batch of applications.
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "util/table.hpp"

int main() {
  using namespace cdsf;
  const core::PaperExample example = core::make_paper_example();

  util::Table table({"app", "# serial iters", "# parallel iters", "% serial", "% parallel"});
  table.set_title("Table II — characteristics of the batch of applications");
  for (std::size_t i = 0; i < example.batch.size(); ++i) {
    const workload::Application& app = example.batch.at(i);
    table.add_row({std::to_string(i + 1), std::to_string(app.serial_iterations()),
                   std::to_string(app.parallel_iterations()),
                   util::format_fixed(app.split().serial_fraction * 100.0, 0),
                   util::format_fixed(app.split().parallel_fraction * 100.0, 0)});
  }
  std::puts(table.render().c_str());
  std::puts("Paper: app1 = 439/1024 (30/70), app2 = 512/2048 (20/80), app3 = 216 serial at");
  std::puts("5%/95% (the parallel count is not legible in available copies; 4104 parallel");
  std::puts("iterations are implied by the 5% serial fraction that Table V pins down).");
  return 0;
}
