// Reproduces Table III: normal-distribution mean values for the single
// processor execution times, and validates the discretized PMFs against
// them (mean and sigma = mu / 10).
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "util/table.hpp"

int main() {
  using namespace cdsf;
  const core::PaperExample example = core::make_paper_example();

  util::Table table({"proc type", "app", "paper mean", "PMF mean", "PMF stddev", "target stddev"});
  table.set_title(
      "Table III — single-processor execution times (means; PMFs discretized at 64 pulses)");
  const double paper[3][2] = {{1800, 4000}, {2800, 6000}, {12000, 8000}};
  for (std::size_t type = 0; type < 2; ++type) {
    for (std::size_t app = 0; app < 3; ++app) {
      const pmf::Pmf pmf = example.batch.at(app).single_processor_pmf(type, 64);
      table.add_row({"type " + std::to_string(type + 1), std::to_string(app + 1),
                     util::format_fixed(paper[app][type], 0),
                     util::format_fixed(pmf.expectation(), 1),
                     util::format_fixed(pmf.stddev(), 1),
                     util::format_fixed(paper[app][type] / 10.0, 0)});
    }
    if (type == 0) table.add_separator();
  }
  std::puts(table.render().c_str());
  std::puts("(The PMF stddev sits slightly below sigma because a finite quantile grid");
  std::puts("truncates the tails; it converges to mu/10 as the pulse count grows.)");
  return 0;
}
