// Reproduces Table IV: the resource allocations chosen by the naive IM
// (equal-share load balancing) and the robust IM (exhaustive optimal),
// together with their phi_1 values (26% / 74.5%).
#include <cstdio>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "util/table.hpp"

int main() {
  using namespace cdsf;
  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);

  const core::StageOneResult naive = framework.run_stage_one(ra::NaiveLoadBalance());
  const core::StageOneResult robust = framework.run_stage_one(ra::ExhaustiveOptimal());

  // Paper's Table IV.
  const char* paper_naive[3] = {"4 x type2", "4 x type1", "4 x type2"};
  const char* paper_robust[3] = {"2 x type1", "2 x type1", "8 x type2"};

  util::Table table({"RA", "app", "measured group", "paper group"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight, util::Align::kLeft,
                       util::Align::kLeft});
  table.set_title("Table IV — resource allocation for naive and robust IM");
  auto group_string = [&](const ra::GroupAssignment& g) {
    return std::to_string(g.processors) + " x " + example.platform.type(g.processor_type).name;
  };
  for (std::size_t i = 0; i < 3; ++i) {
    table.add_row({i == 0 ? "naive IM" : "", std::to_string(i + 1),
                   group_string(naive.allocation.at(i)), paper_naive[i]});
  }
  table.add_separator();
  for (std::size_t i = 0; i < 3; ++i) {
    table.add_row({i == 0 ? "robust IM" : "", std::to_string(i + 1),
                   group_string(robust.allocation.at(i)), paper_robust[i]});
  }
  std::puts(table.render().c_str());

  std::printf("phi_1 naive IM : measured %s   paper 26%%\n",
              util::format_percent(naive.phi1, 1).c_str());
  std::printf("phi_1 robust IM: measured %s   paper 74.5%%\n",
              util::format_percent(robust.phi1, 1).c_str());
  std::printf("feasible allocations searched by the robust IM: %zu\n",
              ra::count_feasible(example.batch.size(), example.platform,
                                 ra::CountRule::kPowerOfTwo));
  return 0;
}
