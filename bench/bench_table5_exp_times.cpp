// Reproduces Table V: expected values of the parallel completion-time PMFs
// for the naive and robust initial mappings.
#include <cstdio>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "util/table.hpp"

int main() {
  using namespace cdsf;
  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);

  const core::StageOneResult naive =
      framework.describe_allocation(core::paper_naive_allocation(), "naive IM");
  const core::StageOneResult robust =
      framework.describe_allocation(core::paper_robust_allocation(), "robust IM");

  const double paper_naive[3] = {3800.02, 1306.39, 4599.76};
  const double paper_robust[3] = {1365.46, 1959.59, 2699.86};

  util::Table table({"RA", "app", "measured E[T] (time units)", "paper E[T]", "Pr(T <= deadline)"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight});
  table.set_title("Table V — parallel PMF expected completion times under Â (case 1)");
  for (std::size_t i = 0; i < 3; ++i) {
    table.add_row({i == 0 ? "naive IM" : "", std::to_string(i + 1),
                   util::format_fixed(naive.expected_times[i], 2),
                   util::format_fixed(paper_naive[i], 2),
                   util::format_percent(naive.app_probabilities[i], 1)});
  }
  table.add_separator();
  for (std::size_t i = 0; i < 3; ++i) {
    table.add_row({i == 0 ? "robust IM" : "", std::to_string(i + 1),
                   util::format_fixed(robust.expected_times[i], 2),
                   util::format_fixed(paper_robust[i], 2),
                   util::format_percent(robust.app_probabilities[i], 1)});
  }
  std::puts(table.render().c_str());
  std::printf("joint Pr(all <= deadline): naive %s (paper 26%%), robust %s (paper 74.5%%)\n",
              util::format_percent(naive.phi1, 1).c_str(),
              util::format_percent(robust.phi1, 1).c_str());
  return 0;
}
