// Reproduces Table VI: the DLS technique providing the best application
// performance while meeting the system deadline, per application and
// availability case, in scenario 4 (robust IM + robust RAS).
#include <cstdio>

#include "scenario_common.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  bool help = false;
  const bench::ScenarioBenchOptions options = bench::parse_scenario_options(
      argc, argv, "Table VI — best DLS technique per application and availability case.",
      &help);
  if (help) return 0;

  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);
  core::StageTwoConfig config;
  config.replications = options.replications;
  config.seed = options.seed;
  config.threads = util::default_thread_count();

  const auto techniques = dls::paper_robust_set();
  const core::ScenarioResult scenario = framework.run_scenario(
      "robust IM + robust RAS", ra::ExhaustiveOptimal(), techniques, example.cases, config);

  const char* paper[3][4] = {{"WF", "AF", "AF", "AF"},
                             {"WF", "WF", "AF", "-"},
                             {"AF", "AF", "AF", "AF"}};

  util::Table table({"application", "case 1", "case 2", "case 3", "case 4"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("Table VI — best deadline-meeting DLS technique (measured / paper)");
  for (std::size_t app = 0; app < 3; ++app) {
    std::vector<std::string> row = {std::to_string(app + 1)};
    for (std::size_t k = 0; k < 4; ++k) {
      const int best = scenario.per_case[k].best_technique[app];
      std::string measured =
          best >= 0 ? dls::technique_name(techniques[static_cast<std::size_t>(best)]) : "-";
      row.push_back(measured + " / " + paper[app][k]);
    }
    table.add_row(row);
  }
  std::puts(table.render().c_str());

  // Significance check on the headline cell: is AF's case-3 app-3 win over
  // FAC statistically real? Paired comparison on common random numbers.
  {
    const ra::GroupAssignment group = scenario.stage_one.allocation.at(2);
    const sim::TechniqueComparison cmp = sim::compare_techniques(
        example.batch.at(2), group.processor_type, group.processors, example.cases[2],
        dls::TechniqueId::kFAC, dls::TechniqueId::kAF, config.sim, options.seed,
        options.replications);
    std::printf(
        "case 3 / app 3, FAC - AF paired median difference: %+.0f time units "
        "(95%% CI [%+.0f, %+.0f], %s)\n",
        cmp.makespan_difference.median_difference, cmp.makespan_difference.ci.lower,
        cmp.makespan_difference.ci.upper,
        cmp.makespan_difference.significant ? "significant" : "not significant");
  }

  const core::RobustnessReport report = framework.robustness_report(scenario, example.cases);
  std::printf("rho_2 (largest tolerable availability decrease with deadline met): ");
  std::printf("measured %s, paper 30.77%%\n",
              report.rho2 >= 0.0 ? util::format_percent(report.rho2, 2).c_str() : "n/a");
  std::puts("\nKnown divergences vs the paper (documented in EXPERIMENTS.md):");
  std::puts(" * case 2 / app 2 is borderline (median path cost ~3253 vs deadline 3250);");
  std::puts(" * case 4 / app 3 sits within noise of the deadline for FAC/AWF-B/AF, so the");
  std::puts("   winner there is seed-dependent; the system-level verdicts (cases 1 and 3");
  std::puts("   robust, case 4 not — through app 2) are unchanged and stable.");
  return 0;
}
