// Shared plumbing for the per-figure scenario benches: run one scenario of
// the paper's Section IV study and print its per-case, per-application,
// per-technique execution times the way the corresponding figure reports
// them.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace cdsf::bench {

struct ScenarioBenchOptions {
  std::size_t replications = 201;
  std::uint64_t seed = 42;
  /// When non-empty, the per-case series are also written to this CSV file
  /// (one row per application x technique x case) for external plotting.
  std::string csv_path;
  /// When non-empty, the whole scenario is also written as a structured
  /// JSON report (obs::make_scenario_report) — the machine-readable twin
  /// of the printed tables. Requesting it enables the global metrics
  /// registry so the report embeds a metrics snapshot.
  std::string json_path;
};

inline ScenarioBenchOptions parse_scenario_options(int argc, char** argv,
                                                   const std::string& description,
                                                   bool* show_help) {
  util::Cli cli(description);
  cli.add_int("replications", 201, "simulation replications per (application, technique)");
  cli.add_int("seed", 42, "master random seed");
  cli.add_string("csv", "", "also write the series to this CSV file");
  cli.add_string("json", "", "also write a machine-readable JSON report to this file");
  *show_help = !cli.parse(argc, argv);
  ScenarioBenchOptions options;
  if (!*show_help) {
    options.replications = static_cast<std::size_t>(cli.get_int("replications"));
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    options.csv_path = cli.get_string("csv");
    options.json_path = cli.get_string("json");
    if (!options.json_path.empty()) obs::MetricsRegistry::global().set_enabled(true);
  }
  return options;
}

/// Writes the scenario as a structured JSON report, stamped with the bench
/// name and run parameters.
inline void write_scenario_json(const std::string& path, const std::string& bench_name,
                                const core::PaperExample& example,
                                const core::Framework& framework,
                                const core::ScenarioResult& scenario,
                                const ScenarioBenchOptions& options) {
  obs::Json doc = obs::make_scenario_report(framework, scenario, example.cases);
  doc.set("bench", bench_name);
  doc.set("replications", options.replications);
  doc.set("seed", static_cast<std::int64_t>(options.seed));
  obs::write_json(doc, path);
  std::printf("report written to %s\n", path.c_str());
}

/// Writes the scenario's full measurement series as CSV (the data behind
/// the rendered figure).
inline void write_scenario_csv(const std::string& path, const core::PaperExample& example,
                               const core::ScenarioResult& scenario,
                               const std::vector<dls::TechniqueId>& techniques) {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "warning: cannot write CSV to %s\n", path.c_str());
    return;
  }
  util::CsvWriter csv(file);
  csv.write_row({"case", "weighted_availability", "application", "technique",
                 "median_makespan", "mean_makespan", "mean_ci_lo", "mean_ci_hi",
                 "hit_rate", "meets_deadline"});
  for (std::size_t k = 0; k < scenario.per_case.size(); ++k) {
    const core::StageTwoResult& per_case = scenario.per_case[k];
    const std::string weighted = util::format_fixed(
        example.cases[k].weighted_system_availability(example.platform), 4);
    for (std::size_t app = 0; app < per_case.outcomes.size(); ++app) {
      for (std::size_t t = 0; t < per_case.outcomes[app].size(); ++t) {
        const core::AppTechniqueOutcome& outcome = per_case.outcomes[app][t];
        csv.write_row({per_case.case_name, weighted, example.batch.at(app).name(),
                       dls::technique_name(techniques[t]),
                       util::format_fixed(outcome.summary.median_makespan, 2),
                       util::format_fixed(outcome.summary.mean_makespan, 2),
                       util::format_fixed(outcome.summary.mean_ci.lower, 2),
                       util::format_fixed(outcome.summary.mean_ci.upper, 2),
                       util::format_fixed(outcome.summary.deadline_hit_rate, 4),
                       outcome.meets_deadline ? "1" : "0"});
      }
    }
  }
  std::printf("series written to %s\n", path.c_str());
}

/// Prints one scenario: Stage I summary plus a per-case table of median
/// simulated execution times with deadline verdicts.
inline void print_scenario(const core::PaperExample& example, const core::Framework& framework,
                           const core::ScenarioResult& scenario,
                           const std::vector<dls::TechniqueId>& techniques) {
  std::printf("Stage I (%s): allocation %s\n", scenario.stage_one.heuristic_name.c_str(),
              scenario.stage_one.allocation.to_string(example.platform).c_str());
  std::printf("phi_1 = %s\n\n", util::format_percent(scenario.stage_one.phi1, 1).c_str());

  for (std::size_t k = 0; k < scenario.per_case.size(); ++k) {
    const core::StageTwoResult& per_case = scenario.per_case[k];
    util::Table table;
    std::vector<std::string> headers = {"application"};
    for (dls::TechniqueId id : techniques) headers.push_back(dls::technique_name(id));
    headers.push_back("meets deadline via");
    table.set_headers(headers);
    table.set_alignment({util::Align::kLeft});
    table.set_title(per_case.case_name + "  (weighted availability " +
                    util::format_percent(
                        example.cases[k].weighted_system_availability(example.platform), 2) +
                    ", deadline " + util::format_fixed(framework.deadline(), 0) + ")");
    for (std::size_t app = 0; app < example.batch.size(); ++app) {
      std::vector<std::string> row = {example.batch.at(app).name()};
      for (const auto& outcome : per_case.outcomes[app]) {
        std::string cell = util::format_fixed(outcome.summary.median_makespan, 0);
        cell += outcome.meets_deadline ? " *" : "  ";
        row.push_back(cell);
      }
      const int best = per_case.best_technique[app];
      row.push_back(best >= 0
                        ? dls::technique_name(techniques[static_cast<std::size_t>(best)])
                        : "- (violated)");
      table.add_row(row);
    }
    std::puts(table.render().c_str());
  }

  const core::RobustnessReport report =
      framework.robustness_report(scenario, example.cases);
  std::printf("robustness: rho_1 = %s, rho_2 = %s\n\n",
              util::format_percent(report.rho1, 1).c_str(),
              report.rho2 >= 0.0 ? util::format_percent(report.rho2, 2).c_str() : "n/a (not robust)");
}

}  // namespace cdsf::bench
