// Visualize how each DLS technique carves the same loop into chunks: one
// ASCII Gantt chart per technique for the paper's application 3 on its
// eight type-2 processors under a degraded availability case.
//
//   ./chunk_gantt [--case K] [--technique NAME|all] [--seed S]
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "sim/gantt.hpp"
#include "sim/loop_executor.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("ASCII Gantt charts of DLS chunk schedules (paper app3, 8 x type2).");
  cli.add_int("case", 4, "availability case of Table I (1-4)");
  cli.add_string("technique", "all", "technique name (e.g. AF) or 'all'");
  cli.add_int("seed", 12, "simulation seed");
  cli.add_int("width", 100, "chart width in characters");
  if (!cli.parse(argc, argv)) return 0;

  const core::PaperExample example = core::make_paper_example();
  const auto k = static_cast<int>(cli.get_int("case"));
  const sysmodel::AvailabilitySpec runtime = sysmodel::paper_case(k);

  std::vector<dls::TechniqueId> techniques;
  const std::string wanted = cli.get_string("technique");
  if (wanted == "all") {
    techniques = {dls::TechniqueId::kStatic, dls::TechniqueId::kGSS, dls::TechniqueId::kFAC,
                  dls::TechniqueId::kWF, dls::TechniqueId::kAWF_B, dls::TechniqueId::kAF};
  } else {
    techniques = {dls::technique_from_name(wanted)};
  }

  sim::SimConfig config;
  config.collect_trace = true;
  sim::GanttOptions options;
  options.width = static_cast<std::size_t>(cli.get_int("width"));
  options.deadline = example.deadline;

  std::printf("app3 (%lld serial + %lld parallel iterations) on 8 x type2, %s\n",
              static_cast<long long>(example.batch.at(2).serial_iterations()),
              static_cast<long long>(example.batch.at(2).parallel_iterations()),
              runtime.name().c_str());
  std::puts("legend: s = serial phase on master, [== = one chunk, . = dispatch overhead\n");

  for (dls::TechniqueId id : techniques) {
    const sim::RunResult run =
        sim::simulate_loop(example.batch.at(2), 1, 8, runtime, id, config,
                           static_cast<std::uint64_t>(cli.get_int("seed")));
    std::printf("--- %s (makespan %.0f, %llu chunks, imbalance c.o.v. %.3f) %s\n",
                dls::technique_name(id).c_str(), run.makespan,
                static_cast<unsigned long long>(run.total_chunks), run.finish_time_cov(),
                run.makespan <= example.deadline ? "[meets deadline]" : "[VIOLATES deadline]");
    std::fputs(sim::render_gantt(run, options).c_str(), stdout);
    std::puts("");
  }
  return 0;
}
