// Run the CDSF on a scenario loaded from a file — no recompilation needed
// to study a new platform, availability profile, or batch.
//
//   ./custom_scenario --file my_system.ini
//   ./custom_scenario --write-template paper.ini   # emit the paper example
//
// Without flags, runs the built-in paper scenario end to end.
#include <cstdio>
#include <fstream>

#include "cdsf/framework.hpp"
#include "cdsf/scenario_io.hpp"
#include "ra/heuristics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Run the CDSF on a scenario file.");
  cli.add_string("file", "", "scenario file to load (empty = built-in paper example)");
  cli.add_string("write-template", "", "write the paper example as a template file and exit");
  cli.add_int("replications", 51, "stage II replications");
  cli.add_int("seed", 1, "simulation seed");
  if (!cli.parse(argc, argv)) return 0;

  if (const std::string path = cli.get_string("write-template"); !path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
      return 1;
    }
    out << core::paper_scenario_text();
    std::printf("wrote scenario template to %s\n", path.c_str());
    return 0;
  }

  const std::string file = cli.get_string("file");
  const core::Scenario scenario = file.empty()
                                      ? core::parse_scenario_text(core::paper_scenario_text())
                                      : core::load_scenario(file);
  std::printf("scenario: %zu applications, %zu processor types, %zu availability cases, "
              "deadline %.0f\n\n",
              scenario.batch.size(), scenario.platform.type_count(), scenario.cases.size(),
              scenario.deadline);

  const core::Framework framework(scenario.batch, scenario.platform, scenario.cases.front(),
                                  scenario.deadline);

  // Exhaustive Stage I when the search space is small, greedy otherwise.
  const std::size_t space = ra::count_feasible(scenario.batch.size(), scenario.platform,
                                               ra::CountRule::kPowerOfTwo);
  std::unique_ptr<ra::Heuristic> heuristic;
  if (space <= 200000) {
    heuristic = std::make_unique<ra::ExhaustiveOptimal>();
  } else {
    heuristic = std::make_unique<ra::GreedyRobustness>();
  }
  std::printf("stage I: %zu feasible allocations -> %s\n", space, heuristic->name().c_str());
  const core::StageOneResult stage1 = framework.run_stage_one(*heuristic);
  std::printf("  allocation: %s\n  phi_1 = %s\n\n",
              stage1.allocation.to_string(scenario.platform).c_str(),
              util::format_percent(stage1.phi1, 1).c_str());

  core::StageTwoConfig config;
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto techniques = dls::paper_robust_set();

  util::Table table({"case", "weighted avail", "all meet deadline?", "best DLS per app"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight, util::Align::kLeft,
                       util::Align::kLeft});
  for (const auto& runtime : scenario.cases) {
    const core::StageTwoResult result =
        framework.run_stage_two(stage1.allocation, runtime, techniques, config);
    std::string best;
    for (std::size_t app = 0; app < scenario.batch.size(); ++app) {
      if (app > 0) best += ", ";
      const int b = result.best_technique[app];
      best += b >= 0 ? dls::technique_name(techniques[static_cast<std::size_t>(b)]) : "-";
    }
    table.add_row({runtime.name(),
                   util::format_percent(
                       runtime.weighted_system_availability(scenario.platform), 1),
                   result.all_meet_deadline ? "yes" : "no", best});
  }
  std::puts(table.render().c_str());
  return 0;
}
