// Stand-alone Stage II study in the style of the papers the CDSF builds on
// (Banicescu, Ciorba & Cariño, ISPDC 2009; Srivastava et al., PDSEC 2010):
// the robustness of each DLS technique alone, measured as the largest
// system-availability decrease it tolerates before a deadline violation,
// on one application and one processor group.
//
//   ./dls_robustness_study [--iterations N] [--workers P] [--slack S] ...
#include <cstdio>

#include "dls/registry.hpp"
#include "sim/loop_executor.hpp"
#include "sysmodel/availability.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/application.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Per-technique DLS robustness: tolerable availability decrease before a "
                "deadline violation.");
  cli.add_int("iterations", 8000, "parallel loop iterations");
  cli.add_int("workers", 8, "processors in the group");
  cli.add_double("slack", 1.6, "deadline = slack x ideal dedicated parallel time");
  cli.add_int("replications", 51, "replications per availability level");
  cli.add_int("seed", 3, "master seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto iterations = cli.get_int("iterations");
  const auto workers = static_cast<std::size_t>(cli.get_int("workers"));
  const auto replications = static_cast<std::size_t>(cli.get_int("replications"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // One application, one processor type, mean iteration time 1.
  const workload::Application app(
      "study", 0, iterations,
      {workload::TimeLaw{workload::TimeLawKind::kNormal, static_cast<double>(iterations), 0.1}});
  const double ideal = static_cast<double>(iterations) / static_cast<double>(workers);
  const double deadline = cli.get_double("slack") * ideal;

  // Availability levels: mean availability E[a] from 1.0 down to 0.3, with
  // a bimodal profile (half the mass well below the mean) so that load
  // imbalance — not just slowdown — stresses the techniques.
  auto spec_for = [&](double mean_availability) {
    const double lo = std::max(0.05, mean_availability - 0.3);
    const double hi = std::min(1.0, mean_availability + 0.3);
    // Two-point law with the requested mean.
    const double p_hi = (mean_availability - lo) / (hi - lo);
    return sysmodel::AvailabilitySpec(
        "E=" + util::format_fixed(mean_availability, 2),
        {pmf::Pmf::from_pulses({{lo, 1.0 - p_hi}, {hi, p_hi}})});
  };

  std::printf("loop: %lld iterations on %zu workers; ideal dedicated time %.0f; deadline %.0f\n\n",
              static_cast<long long>(iterations), workers, ideal, deadline);

  util::Table table({"technique", "E[a]=1.0", "0.9", "0.8", "0.7", "0.6", "0.5", "0.4", "0.3",
                     "tolerable decrease"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("Median makespan by mean availability (* = meets deadline)");

  const std::vector<double> levels = {1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3};
  for (dls::TechniqueId id : dls::all_techniques()) {
    std::vector<std::string> row = {dls::technique_name(id)};
    double tolerated = -1.0;
    bool unbroken = true;
    for (double level : levels) {
      const sysmodel::AvailabilitySpec spec = spec_for(level);
      const sim::ReplicationSummary summary = sim::simulate_replicated(
          app, 0, workers, spec, id, sim::SimConfig{}, seed, replications, deadline);
      const bool meets = summary.median_makespan <= deadline;
      row.push_back(util::format_fixed(summary.median_makespan, 0) + (meets ? " *" : ""));
      // Robustness in the sense of the cited DLS papers: the largest
      // CONTIGUOUS decrease from full availability that keeps the deadline.
      if (unbroken && meets) {
        tolerated = 1.0 - level;
      } else {
        unbroken = false;
      }
    }
    row.push_back(tolerated >= 0.0 ? util::format_percent(tolerated, 0) : "none");
    table.add_row(row);
  }
  std::puts(table.render().c_str());
  std::puts("Expected shape: STATIC breaks first (no redistribution), the factoring family");
  std::puts("tolerates mid-range degradation, and the adaptive techniques (AWF-*, AF)");
  std::puts("tolerate the largest decrease — the premise of Stage II of the CDSF.");
  return 0;
}
