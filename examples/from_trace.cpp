// Closing the loop from measured history to a scheduling decision:
//
//   1. ingest per-type availability logs (CSV traces),
//   2. build Â (the Stage I PMFs) from their time-weighted statistics and
//      fit the simulator's Markov-epoch parameters,
//   3. run Stage I on the fitted Â,
//   4. validate Stage II against BOTH the fitted Markov model and the raw
//      replayed traces.
//
//   ./from_trace [--deadline D]
#include <cstdio>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "sysmodel/trace_io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("From historical availability traces to a CDSF schedule.");
  cli.add_double("deadline", 3250.0, "common deadline");
  cli.add_int("replications", 51, "stage II replications");
  if (!cli.parse(argc, argv)) return 0;

  // 1. Synthetic "historical logs" (a real deployment would load files via
  // sysmodel::load_trace). Type 1 alternates 75%/100%; type 2 cycles
  // 25/50/100 with long dwell times.
  const sysmodel::ParsedTrace type1_log = sysmodel::parse_trace_text(
      "0,75\n1200,100\n2500,75\n3600,100\n5000,75\n6100,100\n7400,75\n8500,100\n");
  const sysmodel::ParsedTrace type2_log = sysmodel::parse_trace_text(
      "0,25\n1300,50\n2400,100\n4800,25\n6000,50\n7100,100\n9400,25\n");
  const double horizon = 10000.0;

  // 2. Fit the Stage I PMFs and the simulator parameters.
  const sysmodel::FittedMarkov fit1 = sysmodel::fit_markov_model(type1_log, 300.0, horizon);
  const sysmodel::FittedMarkov fit2 = sysmodel::fit_markov_model(type2_log, 300.0, horizon);
  const sysmodel::AvailabilitySpec fitted("fitted-from-traces", {fit1.law, fit2.law});
  std::printf("fitted Â: E[a1] = %s (persistence %.2f), E[a2] = %s (persistence %.2f)\n\n",
              util::format_percent(fit1.law.expectation(), 1).c_str(), fit1.persistence,
              util::format_percent(fit2.law.expectation(), 1).c_str(), fit2.persistence);

  // 3. Stage I on the fitted model, paper batch and platform.
  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, fitted,
                                  cli.get_double("deadline"));
  const core::StageOneResult stage1 = framework.run_stage_one(ra::ExhaustiveOptimal());
  std::printf("Stage I: %s  (phi_1 = %s)\n\n",
              stage1.allocation.to_string(example.platform).c_str(),
              util::format_percent(stage1.phi1, 1).c_str());

  // 4. Stage II against the fitted Markov model...
  core::StageTwoConfig config;
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));
  config.sim.epoch_length = fit1.epoch_length;
  config.sim.markov_persistence = (fit1.persistence + fit2.persistence) / 2.0;
  const core::StageTwoResult fitted_run =
      framework.run_stage_two(stage1.allocation, fitted, dls::paper_robust_set(), config);

  util::Table table({"application", "best DLS (fitted model)", "median makespan",
                     "meets deadline"});
  table.set_alignment({util::Align::kLeft, util::Align::kLeft});
  for (std::size_t app = 0; app < example.batch.size(); ++app) {
    const int best = fitted_run.best_technique[app];
    const auto& set = dls::paper_robust_set();
    std::string name = best >= 0 ? dls::technique_name(set[static_cast<std::size_t>(best)])
                                 : std::string("-");
    std::string makespan = "-";
    if (best >= 0) {
      makespan = util::format_fixed(
          fitted_run.outcomes[app][static_cast<std::size_t>(best)].summary.median_makespan, 0);
    }
    table.add_row({example.batch.at(app).name(), name, makespan, best >= 0 ? "yes" : "NO"});
  }
  std::puts(table.render().c_str());

  // ... and against the RAW replayed traces (one shared trace per type —
  // the strictest check: the actual history, not a model of it).
  sim::SimConfig replay = config.sim;
  std::puts("Replay check (every worker driven by the raw trace of its type):");
  for (std::size_t app = 0; app < example.batch.size(); ++app) {
    const ra::GroupAssignment group = stage1.allocation.at(app);
    const sysmodel::ParsedTrace& log = group.processor_type == 0 ? type1_log : type2_log;
    // Build a single-type spec whose "PMF" is the trace's time-weighted law
    // but run the executor in trace mode via TraceAvailability processes.
    double worst = 0.0;
    for (int offset = 0; offset < 3; ++offset) {
      // Shift the replay start to probe different regions of the history.
      std::vector<double> times = log.time_points;
      std::vector<double> values = log.values;
      std::rotate(values.begin(), values.begin() + offset, values.end());
      sysmodel::TraceAvailability process(times, values);
      // Deterministic completion estimate: dedicated work / trace integral.
      const double work =
          example.batch.at(app).expected_parallel_time(group.processor_type, group.processors);
      worst = std::max(worst, process.finish_time(0.0, work));
    }
    std::printf("  %s: worst replayed completion %.0f (%s deadline %.0f)\n",
                example.batch.at(app).name().c_str(), worst,
                worst <= framework.deadline() ? "meets" : "VIOLATES", framework.deadline());
  }
  return 0;
}
