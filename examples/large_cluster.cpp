// Scheduling a random batch of scientific applications on a larger
// heterogeneous cluster — the workflow a resource-manager integrator would
// follow with this library:
//
//   1. describe the platform and its historical availability (Â),
//   2. describe (or generate) the batch,
//   3. pick a Stage I heuristic fitting the instance size,
//   4. run Stage II to select a DLS technique per application,
//   5. read off the robustness report.
//
//   ./large_cluster [--apps N] [--procs-per-type N] [--deadline D] ...
#include <cstdio>

#include "cdsf/framework.hpp"
#include "ra/heuristics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("CDSF on a larger heterogeneous cluster with a generated batch.");
  cli.add_int("apps", 8, "number of applications in the batch");
  cli.add_int("procs-per-type", 16, "processors for each of the three types");
  cli.add_double("deadline", 12000.0, "common deadline (time units)");
  cli.add_int("seed", 2026, "workload + simulation seed");
  cli.add_int("replications", 51, "stage II replications");
  cli.add_string("heuristic", "GreedyRobustness",
                 "stage I heuristic (NaiveLoadBalance | GreedyRobustness | MinMinExpected | "
                 "MaxMinExpected | SufferageRobust | SimulatedAnnealing)");
  if (!cli.parse(argc, argv)) return 0;

  // 1. Platform: three processor generations with distinct availability.
  const auto per_type = static_cast<std::size_t>(cli.get_int("procs-per-type"));
  const sysmodel::Platform platform(
      {{"gen3", per_type}, {"gen2", per_type}, {"gen1", per_type}});
  const sysmodel::AvailabilitySpec reference(
      "historical", {pmf::Pmf::from_pulses({{0.80, 0.2}, {1.00, 0.8}}),
                     pmf::Pmf::from_pulses({{0.50, 0.3}, {0.80, 0.4}, {1.00, 0.3}}),
                     pmf::Pmf::from_pulses({{0.20, 0.3}, {0.50, 0.4}, {0.80, 0.3}})});

  // 2. Batch: generated; a real integration would load measured PMFs here.
  workload::BatchSpec spec;
  spec.applications = static_cast<std::size_t>(cli.get_int("apps"));
  spec.processor_types = 3;
  spec.min_total_iterations = 2000;
  spec.max_total_iterations = 20000;
  spec.min_mean_time = 3000.0;
  spec.max_mean_time = 30000.0;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const workload::Batch batch = workload::generate_batch(spec, seed);

  const core::Framework framework(batch, platform, reference, cli.get_double("deadline"));

  // 3. Stage I.
  const std::string wanted = cli.get_string("heuristic");
  std::unique_ptr<ra::Heuristic> heuristic;
  for (auto& candidate : ra::all_heuristics(false)) {
    if (candidate->name() == wanted) heuristic = std::move(candidate);
  }
  if (heuristic == nullptr) {
    std::fprintf(stderr, "unknown heuristic '%s'\n", wanted.c_str());
    return 1;
  }
  const core::StageOneResult stage1 = framework.run_stage_one(*heuristic);
  std::printf("Stage I via %s: phi_1 = %s\n", stage1.heuristic_name.c_str(),
              util::format_percent(stage1.phi1, 1).c_str());

  // 4. Stage II against the reference availability.
  core::StageTwoConfig config;
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));
  config.seed = seed + 1;
  const auto techniques = dls::paper_robust_set();
  const core::StageTwoResult stage2 =
      framework.run_stage_two(stage1.allocation, reference, techniques, config);

  util::Table table({"application", "group", "E[T] stage I", "best DLS", "median makespan",
                     "meets deadline"});
  table.set_alignment({util::Align::kLeft, util::Align::kLeft});
  table.set_title("Per-application plan (deadline " +
                  util::format_fixed(framework.deadline(), 0) + ")");
  for (std::size_t app = 0; app < batch.size(); ++app) {
    const ra::GroupAssignment group = stage1.allocation.at(app);
    const int best = stage2.best_technique[app];
    std::string best_name = "-";
    std::string makespan = "-";
    if (best >= 0) {
      const auto& outcome = stage2.outcomes[app][static_cast<std::size_t>(best)];
      best_name = dls::technique_name(outcome.technique);
      makespan = util::format_fixed(outcome.summary.median_makespan, 0);
    }
    table.add_row({batch.at(app).name(),
                   std::to_string(group.processors) + " x " +
                       platform.type(group.processor_type).name,
                   util::format_fixed(stage1.expected_times[app], 0), best_name, makespan,
                   best >= 0 ? "yes" : "NO"});
  }
  std::puts(table.render().c_str());

  // 5. Robustness against degradation: sweep scaled-down availability.
  std::puts("Robustness sweep: availability scaled by f, all applications' verdicts:");
  for (double f : {1.0, 0.9, 0.8, 0.7, 0.6}) {
    std::vector<pmf::Pmf> scaled;
    for (std::size_t j = 0; j < 3; ++j) {
      scaled.push_back(reference.of_type(j).map([f](double a) { return std::max(a * f, 0.01); }));
    }
    const sysmodel::AvailabilitySpec degraded("scaled", std::move(scaled));
    const core::StageTwoResult result =
        framework.run_stage_two(stage1.allocation, degraded, techniques, config);
    std::printf("  f = %.1f (weighted avail %s): %s\n", f,
                util::format_percent(degraded.weighted_system_availability(platform), 1).c_str(),
                result.all_meet_deadline ? "all meet the deadline" : "deadline violated");
  }
  return 0;
}
