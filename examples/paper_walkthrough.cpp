// Full walkthrough of the paper's Section IV: all four scenarios of the
// combined dual-stage framework on the twelve-processor example, ending
// with the robustness comparison that motivates the CDSF hypothesis —
// intelligence in both stages beats intelligence in either or neither.
//
//   ./paper_walkthrough [--replications N] [--seed S]
#include <cstdio>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace cdsf;

/// Renders one scenario's per-case verdict row.
std::string verdict_row(const core::ScenarioResult& scenario, std::size_t k) {
  const core::StageTwoResult& per_case = scenario.per_case[k];
  if (per_case.all_meet_deadline) {
    return "met (system makespan " + util::format_fixed(per_case.system_makespan, 0) + ")";
  }
  std::string violators;
  for (std::size_t app = 0; app < per_case.best_technique.size(); ++app) {
    if (per_case.best_technique[app] < 0) {
      if (!violators.empty()) violators += ",";
      violators += "app" + std::to_string(app + 1);
    }
  }
  return "VIOLATED by " + violators;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("CDSF paper walkthrough: the four scenarios of Section IV.");
  cli.add_int("replications", 101, "stage II replications per (app, technique)");
  cli.add_int("seed", 42, "master random seed");
  if (!cli.parse(argc, argv)) return 0;

  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);
  core::StageTwoConfig config;
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const ra::NaiveLoadBalance naive_im;
  const ra::ExhaustiveOptimal robust_im;
  const std::vector<dls::TechniqueId> naive_ras = {dls::TechniqueId::kStatic};
  const std::vector<dls::TechniqueId> robust_ras = dls::paper_robust_set();

  struct ScenarioSpec {
    const char* name;
    const ra::Heuristic* im;
    const std::vector<dls::TechniqueId>* ras;
  };
  const ScenarioSpec specs[4] = {
      {"1) naive IM  - naive RAS ", &naive_im, &naive_ras},
      {"2) robust IM - naive RAS ", &robust_im, &naive_ras},
      {"3) naive IM  - robust RAS", &naive_im, &robust_ras},
      {"4) robust IM - robust RAS", &robust_im, &robust_ras},
  };

  std::printf("System: %zu processors (%zu x %s + %zu x %s), deadline Delta = %.0f\n",
              example.platform.total_processors(), example.platform.type(0).count,
              example.platform.type(0).name.c_str(), example.platform.type(1).count,
              example.platform.type(1).name.c_str(), example.deadline);
  std::printf("Batch: %zu applications; reference availability = case 1 of Table I\n\n",
              example.batch.size());

  util::Table table({"scenario", "phi_1", "case 1", "case 2", "case 3", "case 4", "rho_2"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight, util::Align::kLeft,
                       util::Align::kLeft, util::Align::kLeft, util::Align::kLeft});
  table.set_title("Deadline verdict per scenario and runtime availability case");

  for (const ScenarioSpec& spec : specs) {
    const core::ScenarioResult scenario =
        framework.run_scenario(spec.name, *spec.im, *spec.ras, example.cases, config);
    const core::RobustnessReport report =
        framework.robustness_report(scenario, example.cases);
    std::vector<std::string> row = {spec.name, util::format_percent(scenario.stage_one.phi1, 1)};
    for (std::size_t k = 0; k < 4; ++k) row.push_back(verdict_row(scenario, k));
    row.push_back(report.rho2 >= 0.0 ? util::format_percent(report.rho2, 2)
                                     : std::string("not robust"));
    table.add_row(row);
  }
  std::puts(table.render().c_str());

  std::puts("The CDSF hypothesis (Section IV): scenarios 1-3 tolerate less perturbation");
  std::puts("than scenario 4 — using an intelligent approach in BOTH stages gives the");
  std::puts("largest tolerable decrease in weighted system availability.");
  std::puts("Paper result: (rho_1, rho_2) = (74.5%, 30.77%); this build: (74.6%, 30.89%)");
  std::puts("(the 0.1 percentage-point differences come from the rounded Table I inputs).");
  return 0;
}
