// Quickstart: run the complete CDSF pipeline on the paper's Section IV
// example — Stage I robust resource allocation, Stage II dynamic loop
// scheduling — and print the robustness tuple (rho_1, rho_2).
//
//   ./quickstart [--replications N] [--seed S]
#include <cstdio>

#include "cdsf/framework.hpp"
#include "cdsf/paper_example.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;

  util::Cli cli("CDSF quickstart: the paper's small-scale example end to end.");
  cli.add_int("replications", 25, "Stage II simulation replications per (app, technique)");
  cli.add_int("seed", 42, "master random seed");
  if (!cli.parse(argc, argv)) return 0;

  // The system of Section IV: 3 applications, 12 processors of 2 types,
  // deadline Delta = 3250, reference availability Â = case 1 of Table I.
  const core::PaperExample example = core::make_paper_example();
  const core::Framework framework(example.batch, example.platform, example.cases.front(),
                                  example.deadline);

  // Stage I: robust initial mapping (exhaustive optimal at this scale).
  const ra::ExhaustiveOptimal robust_im;
  const core::StageOneResult stage1 = framework.run_stage_one(robust_im);

  std::printf("Stage I  (robust IM via %s)\n", stage1.heuristic_name.c_str());
  std::printf("  allocation : %s\n",
              stage1.allocation.to_string(example.platform).c_str());
  std::printf("  phi_1      : %.1f%%  (paper: 74.5%%)\n\n", stage1.phi1 * 100.0);

  util::Table expected({"application", "E[completion] (time units)", "Pr(meets deadline)"});
  expected.set_alignment({util::Align::kLeft, util::Align::kRight, util::Align::kRight});
  for (std::size_t i = 0; i < example.batch.size(); ++i) {
    expected.add_row({example.batch.at(i).name(),
                      util::format_fixed(stage1.expected_times[i], 2),
                      util::format_percent(stage1.app_probabilities[i], 1)});
  }
  std::puts(expected.render().c_str());

  // Stage II: the paper's robust DLS set {FAC, WF, AWF-B, AF} under every
  // availability case of Table I.
  core::StageTwoConfig config;
  config.replications = static_cast<std::size_t>(cli.get_int("replications"));
  config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const std::vector<dls::TechniqueId> techniques = dls::paper_robust_set();
  core::ScenarioResult scenario;
  scenario.name = "robust IM + robust RAS";
  scenario.stage_one = stage1;
  for (const auto& runtime : example.cases) {
    scenario.per_case.push_back(
        framework.run_stage_two(stage1.allocation, runtime, techniques, config));
  }

  util::Table stage2({"case", "weighted avail", "all apps meet deadline?", "best DLS per app"});
  stage2.set_alignment({util::Align::kLeft, util::Align::kRight, util::Align::kLeft,
                        util::Align::kLeft});
  for (std::size_t k = 0; k < example.cases.size(); ++k) {
    const core::StageTwoResult& result = scenario.per_case[k];
    std::string best;
    for (std::size_t app = 0; app < example.batch.size(); ++app) {
      if (app > 0) best += ", ";
      const int b = result.best_technique[app];
      best += b >= 0 ? dls::technique_name(techniques[static_cast<std::size_t>(b)]) : "-";
    }
    stage2.add_row({result.case_name,
                    util::format_percent(
                        example.cases[k].weighted_system_availability(example.platform), 2),
                    result.all_meet_deadline ? "yes" : "no", best});
  }
  std::puts(stage2.render().c_str());

  const core::RobustnessReport report = framework.robustness_report(scenario, example.cases);
  std::printf("System robustness (rho_1, rho_2) = (%.1f%%, %.2f%%)   (paper: 74.5%%, 30.77%%)\n",
              report.rho1 * 100.0, report.rho2 * 100.0);
  return 0;
}
