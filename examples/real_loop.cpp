// The DLS techniques scheduling a REAL computation on REAL threads: a
// Mandelbrot-style row sweep whose per-row cost is wildly irregular — the
// classic intrinsically imbalanced loop of the DLS literature. Compares
// wall-clock time and compute imbalance across techniques.
//
//   ./real_loop [--rows N] [--threads P] [--max-iter M]
#include <complex>
#include <cstdio>
#include <vector>

#include "dls/runtime.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

/// Escape-time iterations summed over one image row (cost varies strongly
/// with the row's position relative to the Mandelbrot set).
std::int64_t mandelbrot_row(std::int64_t row, std::int64_t rows, std::int64_t max_iter) {
  const std::int64_t width = 256;
  const double ci = -1.2 + 2.4 * static_cast<double>(row) / static_cast<double>(rows);
  std::int64_t total = 0;
  for (std::int64_t px = 0; px < width; ++px) {
    const double cr = -2.2 + 3.0 * static_cast<double>(px) / static_cast<double>(width);
    double zr = 0.0;
    double zi = 0.0;
    std::int64_t it = 0;
    while (zr * zr + zi * zi <= 4.0 && it < max_iter) {
      const double next_zr = zr * zr - zi * zi + cr;
      zi = 2.0 * zr * zi + ci;
      zr = next_zr;
      ++it;
    }
    total += it;
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("Real-thread DLS runtime on an irregular Mandelbrot row sweep.");
  cli.add_int("rows", 2000, "image rows (loop iterations)");
  cli.add_int("threads", 0, "worker threads (0 = hardware)");
  cli.add_int("max-iter", 2000, "escape-time iteration cap");
  if (!cli.parse(argc, argv)) return 0;

  const auto rows = cli.get_int("rows");
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const auto max_iter = cli.get_int("max-iter");

  std::vector<std::int64_t> row_sums(static_cast<std::size_t>(rows), 0);
  auto body = [&](std::int64_t row) {
    row_sums[static_cast<std::size_t>(row)] = mandelbrot_row(row, rows, max_iter);
  };

  util::Table table({"technique", "wall s", "chunks", "imbalance", "checksum"});
  table.set_alignment({util::Align::kLeft});
  table.set_title("Mandelbrot sweep: " + std::to_string(rows) + " rows, " +
                  std::to_string(threads == 0 ? util::default_thread_count() : threads) +
                  " threads");
  for (dls::TechniqueId id :
       {dls::TechniqueId::kStatic, dls::TechniqueId::kSS, dls::TechniqueId::kGSS,
        dls::TechniqueId::kFAC, dls::TechniqueId::kAWF_C, dls::TechniqueId::kAF}) {
    std::fill(row_sums.begin(), row_sums.end(), 0);
    const dls::RuntimeResult result = dls::run_parallel_loop(rows, id, body, threads);
    std::int64_t checksum = 0;
    for (std::int64_t s : row_sums) checksum += s;
    table.add_row({dls::technique_name(id), util::format_fixed(result.elapsed_seconds, 3),
                   std::to_string(result.total_chunks),
                   util::format_fixed(result.imbalance(), 2), std::to_string(checksum)});
  }
  std::puts(table.render().c_str());
  std::puts("Identical checksums confirm every technique computed the same image; the");
  std::puts("imbalance column (busiest worker / mean) shows who absorbed the irregular");
  std::puts("row costs — STATIC's contiguous shares straddle the expensive band.");
  return 0;
}
