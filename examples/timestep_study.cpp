// Time-stepping application study: the plain AWF technique refreshes its
// worker weights BETWEEN sweeps of a repeated parallel loop. In a
// persistent environment (the co-scheduled load outlives many timesteps),
// cross-timestep learning pays: the first sweep is blind, later sweeps are
// tuned. This example prints the per-sweep makespans of AWF against
// per-sweep STATIC and FAC baselines.
//
//   ./timestep_study [--timesteps N] [--workers P] [--case K]
#include <cstdio>

#include "cdsf/paper_example.hpp"
#include "sim/timestep_runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdsf;
  util::Cli cli("AWF cross-timestep adaptation study.");
  cli.add_int("timesteps", 8, "sweeps of the parallel loop");
  cli.add_int("workers", 8, "processors in the group");
  cli.add_int("case", 4, "availability case of Table I (1-4)");
  cli.add_int("seeds", 10, "environments to average over");
  if (!cli.parse(argc, argv)) return 0;

  const auto timesteps = static_cast<std::size_t>(cli.get_int("timesteps"));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers"));
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds"));
  const sysmodel::AvailabilitySpec runtime =
      sysmodel::paper_case(static_cast<int>(cli.get_int("case")));

  const workload::Application app(
      "sweeper", 0, 4000,
      {workload::TimeLaw{workload::TimeLawKind::kNormal, 8000.0, 0.1},
       workload::TimeLaw{workload::TimeLawKind::kNormal, 8000.0, 0.1}});

  sim::TimestepConfig config;
  config.timesteps = timesteps;
  config.redraw_availability_each_step = false;  // persistent environment
  config.sim.iteration_cov = 0.2;

  std::vector<double> awf_mean(timesteps, 0.0);
  std::vector<double> static_mean(timesteps, 0.0);
  std::vector<double> fac_mean(timesteps, 0.0);
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const auto awf = sim::run_timesteps_awf(app, 1, workers, runtime, config, 100 + s);
    const auto stat = sim::run_timesteps_baseline(app, 1, workers, runtime,
                                                  dls::TechniqueId::kStatic, config, 100 + s);
    const auto fac = sim::run_timesteps_baseline(app, 1, workers, runtime,
                                                 dls::TechniqueId::kFAC, config, 100 + s);
    for (std::size_t t = 0; t < timesteps; ++t) {
      awf_mean[t] += awf.sweep_makespans[t];
      static_mean[t] += stat.sweep_makespans[t];
      fac_mean[t] += fac.sweep_makespans[t];
    }
  }

  util::Table table({"sweep", "STATIC", "FAC", "AWF", "AWF vs sweep 1"});
  table.set_title("Mean sweep makespan over " + std::to_string(seeds) +
                  " persistent environments (" + runtime.name() + ", " +
                  std::to_string(workers) + " workers)");
  for (std::size_t t = 0; t < timesteps; ++t) {
    const double scale = 1.0 / static_cast<double>(seeds);
    table.add_row({std::to_string(t + 1), util::format_fixed(static_mean[t] * scale, 0),
                   util::format_fixed(fac_mean[t] * scale, 0),
                   util::format_fixed(awf_mean[t] * scale, 0),
                   util::format_percent(awf_mean[t] / awf_mean[0], 0)});
  }
  std::puts(table.render().c_str());
  std::puts("Expected shape: AWF's first sweep matches FAC (uniform weights); later sweeps");
  std::puts("ride the learned weights. STATIC never improves — it cannot learn.");
  return 0;
}
