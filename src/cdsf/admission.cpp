#include "cdsf/admission.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "cdsf/dynamic_manager.hpp"
#include "sysmodel/cases.hpp"
#include "util/rng.hpp"

namespace cdsf::core {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kAcceptAll: return "accept-all";
    case AdmissionPolicy::kBoundedQueue: return "bounded";
    case AdmissionPolicy::kRho2Aware: return "rho2";
  }
  return "unknown";
}

AdmissionPolicy admission_policy_from_name(const std::string& name) {
  if (name == "accept-all") return AdmissionPolicy::kAcceptAll;
  if (name == "bounded") return AdmissionPolicy::kBoundedQueue;
  if (name == "rho2") return AdmissionPolicy::kRho2Aware;
  throw std::invalid_argument(
      "admission policy must be one of accept-all | bounded | rho2, got '" + name + "'");
}

const char* degradation_tier_name(DegradationTier tier) {
  switch (tier) {
    case DegradationTier::kNormal: return "normal";
    case DegradationTier::kTightSpeculation: return "tight_speculation";
    case DegradationTier::kLeanOverheads: return "lean_overheads";
    case DegradationTier::kCoarseAllocation: return "coarse_allocation";
    case DegradationTier::kReject: return "reject";
  }
  return "unknown";
}

void validate_admission(const AdmissionConfig& config) {
  const bool active = config.active();
  if (!active) {
    // Accept-all must really be accept-all: knobs that silently could not
    // take effect are contradictions, not defaults.
    if (config.queue_capacity != 0) {
      throw std::invalid_argument(
          "admission: queue_capacity requires a bounded policy (accept-all queues are "
          "unbounded)");
    }
    if (config.admit_floor > 0.0) {
      throw std::invalid_argument(
          "admission: admit_floor requires policy rho2 (accept-all never rejects)");
    }
    if (config.shed_floor > 0.0) {
      throw std::invalid_argument(
          "admission: shed_floor requires a bounded policy (accept-all never sheds)");
    }
    if (config.ladder) {
      throw std::invalid_argument(
          "admission: the degradation ladder requires a bounded policy (accept-all has "
          "no overload signal)");
    }
    if (config.queue_order != QueueOrder::kFifo) {
      throw std::invalid_argument(
          "admission: queue order EDF requires a bounded policy (the accept-all queue "
          "is FIFO)");
    }
    return;
  }
  if (config.queue_capacity == 0) {
    throw std::invalid_argument(
        "admission: a bounded policy requires queue_capacity >= 1");
  }
  if (config.admit_floor > 0.0 && config.policy != AdmissionPolicy::kRho2Aware) {
    throw std::invalid_argument(
        "admission: admit_floor requires policy rho2 (bounded has no admission test)");
  }
  if (config.admit_floor < 0.0 || config.admit_floor > 1.0) {
    throw std::invalid_argument("admission: admit_floor must be in [0, 1]");
  }
  if (config.shed_floor < 0.0 || config.shed_floor > 1.0) {
    throw std::invalid_argument("admission: shed_floor must be in [0, 1]");
  }
  if (!(config.ladder_alpha > 0.0 && config.ladder_alpha <= 1.0)) {
    throw std::invalid_argument("admission: ladder_alpha must be in (0, 1]");
  }
  if (!(config.overload_threshold > 0.0 && config.overload_threshold <= 1.0)) {
    throw std::invalid_argument("admission: overload_threshold must be in (0, 1]");
  }
  if (!(config.recover_threshold >= 0.0 &&
        config.recover_threshold < config.overload_threshold)) {
    throw std::invalid_argument(
        "admission: recover_threshold must be in [0, overload_threshold) — the "
        "hysteresis band must not be inverted");
  }
}

// -- arrival-storm chaos axis -------------------------------------------

namespace {

bool outcomes_equal(const DynamicOutcome& a, const DynamicOutcome& b) {
  return a.arrival_time == b.arrival_time && a.deadline_slack == b.deadline_slack &&
         a.start_time == b.start_time && a.completion_time == b.completion_time &&
         a.group.processor_type == b.group.processor_type &&
         a.group.processors == b.group.processors && a.probability == b.probability &&
         a.met_deadline == b.met_deadline && a.disposition == b.disposition;
}

bool stats_equal(const AdmissionStats& a, const AdmissionStats& b) {
  return a.arrivals == b.arrivals && a.admitted == b.admitted && a.queued == b.queued &&
         a.rejected == b.rejected && a.shed == b.shed && a.ladder_steps == b.ladder_steps &&
         a.max_tier == b.max_tier && a.peak_queue_depth == b.peak_queue_depth;
}

/// Bitwise equality of every deterministic result field — the repeat-run
/// determinism invariant.
bool results_equal(const DynamicRunResult& a, const DynamicRunResult& b) {
  if (a.outcomes.size() != b.outcomes.size()) return false;
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    if (!outcomes_equal(a.outcomes[i], b.outcomes[i])) return false;
  }
  return a.deadline_hit_rate == b.deadline_hit_rate &&
         a.mean_queueing_delay == b.mean_queueing_delay &&
         a.utilization == b.utilization && a.horizon == b.horizon &&
         a.remap_triggered == b.remap_triggered &&
         a.realized_decrease == b.realized_decrease &&
         a.speculation_escalations == b.speculation_escalations &&
         stats_equal(a.admission, b.admission) &&
         a.admitted_hit_rate == b.admitted_hit_rate;
}

void accumulate(AdmissionStats& totals, const AdmissionStats& stats) {
  totals.arrivals += stats.arrivals;
  totals.admitted += stats.admitted;
  totals.queued += stats.queued;
  totals.rejected += stats.rejected;
  totals.shed += stats.shed;
  totals.ladder_steps += stats.ladder_steps;
  totals.max_tier = std::max(totals.max_tier, stats.max_tier);
  totals.peak_queue_depth = std::max(totals.peak_queue_depth, stats.peak_queue_depth);
}

}  // namespace

ArrivalStormReport run_arrival_storm_campaign(const ArrivalStormConfig& config) {
  if (config.schedules == 0) {
    throw std::invalid_argument("run_arrival_storm_campaign: schedules must be >= 1");
  }
  const sysmodel::Platform platform = sysmodel::paper_platform();
  const sysmodel::AvailabilitySpec reference = sysmodel::paper_case(1);
  const util::SeedSequence seeds(config.seed);

  ArrivalStormReport report;
  for (std::size_t schedule = 0; schedule < config.schedules; ++schedule) {
    util::RngStream draw = seeds.stream(schedule);
    const std::uint64_t run_seed = seeds.child(100000 + schedule);

    DynamicConfig dynamic;
    dynamic.applications = config.applications;
    // Offered load well past capacity: interarrivals a small fraction of a
    // typical execution makespan so the queue (or the admission layer) is
    // guaranteed to see pressure.
    dynamic.mean_interarrival = draw.uniform(20.0, 120.0);
    dynamic.deadline_slack = draw.uniform(600.0, 2500.0);
    dynamic.deadline_slack_spread = draw.uniform01() < 0.5 ? 0.3 : 0.0;
    dynamic.application_spec.processor_types = platform.type_count();
    dynamic.application_spec.min_total_iterations = 400;
    dynamic.application_spec.max_total_iterations = 1200;
    dynamic.application_spec.min_mean_time = 1000.0;
    dynamic.application_spec.max_mean_time = 3000.0;
    const int runtime_case = 1 + static_cast<int>(draw.uniform_int(0, 3));
    const sysmodel::AvailabilitySpec runtime = sysmodel::paper_case(runtime_case);
    dynamic.remap_on_rho2 = draw.uniform01() < 0.5;
    dynamic.rho2 = 0.05;

    // Round-robin over the three admission arms.
    switch (schedule % 3) {
      case 0:
        ++report.schedules_accept_all;
        break;
      case 1:
        dynamic.admission.policy = AdmissionPolicy::kBoundedQueue;
        dynamic.admission.queue_capacity =
            static_cast<std::size_t>(draw.uniform_int(2, 6));
        dynamic.admission.shed_floor = draw.uniform01() < 0.5 ? 0.10 : 0.0;
        ++report.schedules_bounded;
        break;
      default:
        dynamic.admission.policy = AdmissionPolicy::kRho2Aware;
        dynamic.admission.queue_capacity =
            static_cast<std::size_t>(draw.uniform_int(2, 6));
        dynamic.admission.queue_order = QueueOrder::kEdf;
        dynamic.admission.admit_floor = 0.2;
        dynamic.admission.shed_floor = 0.1;
        dynamic.admission.ladder = true;
        dynamic.admission.ladder_alpha = 0.4;
        dynamic.admission.overload_threshold = 0.7;
        dynamic.admission.recover_threshold = 0.3;
        ++report.schedules_rho2;
        break;
    }

    const DynamicRunResult result =
        run_dynamic_manager(platform, reference, runtime, dynamic, run_seed);
    const DynamicRunResult repeat =
        run_dynamic_manager(platform, reference, runtime, dynamic, run_seed);
    ++report.schedules_run;
    accumulate(report.totals, result.admission);

    auto violate = [&](const std::string& invariant, const std::string& detail) {
      report.violations.push_back(ArrivalStormViolation{
          schedule, run_seed, admission_policy_name(dynamic.admission.policy), invariant,
          detail});
    };

    const AdmissionStats& stats = result.admission;
    if (!stats.identity_holds() || stats.arrivals != config.applications) {
      std::ostringstream detail;
      detail << "arrivals=" << stats.arrivals << " admitted=" << stats.admitted
             << " rejected=" << stats.rejected << " shed=" << stats.shed;
      violate("admission_identity", detail.str());
    }
    if (!dynamic.admission.active() && (stats.rejected != 0 || stats.shed != 0)) {
      violate("accept_all_rejects", "accept-all run rejected or shed work");
    }
    if (dynamic.admission.active() &&
        stats.peak_queue_depth > dynamic.admission.queue_capacity) {
      std::ostringstream detail;
      detail << "peak depth " << stats.peak_queue_depth << " > capacity "
             << dynamic.admission.queue_capacity;
      violate("queue_bound", detail.str());
    }

    std::uint64_t admitted_seen = 0, rejected_seen = 0, shed_seen = 0;
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      const DynamicOutcome& outcome = result.outcomes[i];
      std::ostringstream where;
      where << "application " << i;
      switch (outcome.disposition) {
        case DynamicOutcome::Disposition::kAdmitted:
          ++admitted_seen;
          // No admitted job stranded: every admitted application ran to a
          // completion at or after its (post-arrival) start.
          if (!(outcome.completion_time > 0.0 &&
                outcome.completion_time >= outcome.start_time &&
                outcome.start_time >= outcome.arrival_time)) {
            violate("admitted_stranded", where.str() + " admitted but never completed");
          }
          break;
        case DynamicOutcome::Disposition::kRejected:
          ++rejected_seen;
          if (outcome.completion_time != 0.0 || outcome.start_time != 0.0 ||
              outcome.met_deadline) {
            violate("rejected_ran", where.str() + " rejected but carries execution state");
          }
          break;
        case DynamicOutcome::Disposition::kShed:
          ++shed_seen;
          if (outcome.completion_time != 0.0 || outcome.start_time != 0.0 ||
              outcome.met_deadline) {
            violate("shed_ran", where.str() + " shed but carries execution state");
          }
          break;
      }
    }
    if (admitted_seen != stats.admitted || rejected_seen != stats.rejected ||
        shed_seen != stats.shed) {
      violate("disposition_counts",
              "per-outcome dispositions disagree with AdmissionStats");
    }

    if (!results_equal(result, repeat)) {
      violate("repeat_determinism", "re-run with the same seed produced a different result");
    }
  }
  return report;
}

}  // namespace cdsf::core
