// Overload robustness for the dynamic manager: admission policies, bounded
// queues with deadline-aware shedding, and the graceful-degradation ladder.
//
// The dynamic manager (cdsf/dynamic_manager.hpp) historically admitted
// every arrival into an unbounded FIFO, so once offered load exceeds
// capacity the deadline-hit rate collapses silently — queueing delay eats
// every application's slack. This header makes overload a first-class,
// *configured* failure mode:
//
//   * AdmissionPolicy::kAcceptAll   — today's behavior, the default; runs
//     are byte-identical to the pre-admission manager.
//   * AdmissionPolicy::kBoundedQueue — a bounded waiting queue (FIFO or
//     EDF) with optional deadline-aware shedding; arrivals that find the
//     queue full are rejected outright.
//   * AdmissionPolicy::kRho2Aware   — the bounded queue plus a
//     probability admission test: on arrival the manager estimates the
//     application's best achievable success probability against its
//     remaining slack (the same allocation-time `probability` machinery,
//     evaluated against the rho_2-aware planning spec and discounted by
//     the current backlog) and rejects applications that could not meet
//     their deadline anyway, protecting the slack of already-admitted
//     work.
//
// The graceful-degradation ladder (AdmissionConfig::ladder) adds staged
// responses to *sustained* overload, driven by an EWMA of queue occupancy
// and rejection pressure — see DegradationTier.
//
// Everything here is deterministic: no RNG, no wall clock; decisions are
// pure functions of the arrival stream and the EWMA state, so runs stay
// byte-identical across repeated seeds and any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cdsf::core {

/// What the manager does with an arriving application (see file comment).
enum class AdmissionPolicy : std::uint8_t {
  kAcceptAll,
  kBoundedQueue,
  kRho2Aware,
};

/// Stable identifier ("accept-all" | "bounded" | "rho2") — used by the
/// [admission] scenario section and the --admission CLI flag.
[[nodiscard]] const char* admission_policy_name(AdmissionPolicy policy);

/// Inverse of admission_policy_name. Throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] AdmissionPolicy admission_policy_from_name(const std::string& name);

/// Order of the bounded waiting queue.
enum class QueueOrder : std::uint8_t {
  kFifo,  // arrival order (the accept-all queue's order)
  kEdf,   // earliest absolute deadline first; ties resolve to arrival order
};

/// The graceful-degradation ladder: staged responses to sustained
/// overload, stepped one tier per arrival by the overload EWMA. Each tier
/// includes every effect of the tiers below it.
enum class DegradationTier : std::uint8_t {
  kNormal = 0,
  /// Tighten speculation: executions run with speculative re-execution
  /// forced on (or the straggler quantile tightened by
  /// Speculation::escalation_factor when it already is) — protect the
  /// deadlines of admitted work first.
  kTightSpeculation = 1,
  /// Shed replication/audit overheads: audit re-execution
  /// (Quarantine::audit_rate) is suppressed so no processor-time is spent
  /// re-running already-accepted chunks while the queue is backed up.
  kLeanOverheads = 2,
  /// Coarser allocation: the candidate set collapses to the largest
  /// admissible group per processor type, so allocation decisions are
  /// O(types) and each admitted application gets the strongest group the
  /// platform can offer (maximum success probability) instead of being
  /// right-sized to leave room for a queue the ladder is draining anyway.
  kCoarseAllocation = 3,
  /// Reject every new arrival until the overload EWMA recovers.
  kReject = 4,
};

/// Stable lowercase identifier for a tier ("normal", "tight_speculation",
/// "lean_overheads", "coarse_allocation", "reject").
[[nodiscard]] const char* degradation_tier_name(DegradationTier tier);

/// Overload-robustness knobs. The default (accept-all, everything else
/// inert) reproduces the historical manager byte-for-byte; any other
/// policy requires a bounded queue. Contradictory combinations are
/// rejected by validate_admission (not silently ignored).
struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kAcceptAll;
  /// Waiting-queue capacity (>= 1 for any bounded policy; must stay 0 for
  /// accept-all, whose queue is unbounded).
  std::size_t queue_capacity = 0;
  QueueOrder queue_order = QueueOrder::kFifo;
  /// kRho2Aware only: arrivals whose backlog-discounted best achievable
  /// success probability falls below this floor are rejected at arrival.
  double admit_floor = 0.0;
  /// Deadline-aware shedding: a queued application whose best achievable
  /// success probability (full platform, remaining slack) has decayed
  /// below this floor is evicted instead of burning processor time.
  /// 0 disables shedding. Requires a bounded policy.
  double shed_floor = 0.0;
  /// Arms the graceful-degradation ladder (bounded policies only).
  bool ladder = false;
  /// EWMA smoothing factor in (0, 1] for the overload signal (weight of
  /// the newest arrival's observation).
  double ladder_alpha = 0.3;
  /// Step UP one tier when the overload EWMA exceeds this threshold...
  double overload_threshold = 0.75;
  /// ...and step DOWN one tier when it falls below this (must be strictly
  /// smaller than overload_threshold — the hysteresis band).
  double recover_threshold = 0.25;

  /// True when any admission machinery runs (policy != accept-all).
  [[nodiscard]] bool active() const noexcept {
    return policy != AdmissionPolicy::kAcceptAll;
  }
};

/// Throws std::invalid_argument when the config is contradictory
/// (shedding or ladder with accept-all, bounded policy without capacity,
/// out-of-range floors or thresholds, inverted hysteresis band, ...).
void validate_admission(const AdmissionConfig& config);

/// Admission-control accounting for one dynamic-manager run. Closed
/// identity (checked by the chaos arrival-storm axis and the unit tests):
///
///     arrivals == admitted + rejected + shed
///
/// `queued` is a flow counter (applications that waited in the queue at
/// least once) and deliberately outside the identity: a queued
/// application is later either admitted or shed.
struct AdmissionStats {
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;   // started execution (immediately or dequeued)
  std::uint64_t queued = 0;     // entered the waiting queue at least once
  std::uint64_t rejected = 0;   // refused at arrival
  std::uint64_t shed = 0;       // evicted from the queue by the shed floor
  /// Ladder transitions (up and down) and the highest tier reached.
  std::uint64_t ladder_steps = 0;
  std::uint64_t max_tier = 0;
  std::uint64_t peak_queue_depth = 0;

  [[nodiscard]] bool identity_holds() const noexcept {
    return arrivals == admitted + rejected + shed;
  }
};

/// ----------------------------------------------------------------------
/// Arrival-storm chaos axis: randomized overload campaigns against the
/// dynamic manager, with the admission identity and no-admitted-job-
/// stranded invariants checked on every run. Lives here (not in
/// sim/chaos.*) because the dynamic manager sits above the sim layer; the
/// `cdsf chaos` subcommand runs it alongside the executor campaign.

struct ArrivalStormConfig {
  std::size_t schedules = 12;
  std::uint64_t seed = 2026;
  /// Applications per storm run (kept small; every schedule runs the
  /// manager twice to check determinism).
  std::size_t applications = 10;
};

struct ArrivalStormViolation {
  std::size_t schedule = 0;
  std::uint64_t seed = 0;
  std::string policy;
  std::string invariant;
  std::string detail;
};

struct ArrivalStormReport {
  std::size_t schedules_run = 0;
  std::size_t schedules_accept_all = 0;
  std::size_t schedules_bounded = 0;
  std::size_t schedules_rho2 = 0;
  AdmissionStats totals;  // element-wise sum over every storm run
  std::vector<ArrivalStormViolation> violations;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

/// Runs the arrival-storm campaign: every schedule draws an admission
/// policy (round-robin over accept-all / bounded-FIFO / rho2+ladder), an
/// over-capacity arrival rate, and a runtime availability case, runs the
/// dynamic manager twice with the same seed, and checks the admission
/// identity, the no-stranded-admission invariant, and bit-identical
/// repeat determinism. Throws std::invalid_argument when schedules == 0.
[[nodiscard]] ArrivalStormReport run_arrival_storm_campaign(const ArrivalStormConfig& config);

}  // namespace cdsf::core
