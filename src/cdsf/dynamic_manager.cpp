#include "cdsf/dynamic_manager.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "pmf/ops.hpp"
#include "sim/sim_common.hpp"
#include "util/rng.hpp"

namespace cdsf::core {

namespace {

/// Pr(application completes within `budget`) on `count` processors of
/// `type` — the single-application stochastic robustness metric.
double success_probability(const workload::Application& app, std::size_t type,
                           std::size_t count, const sysmodel::AvailabilitySpec& reference,
                           double budget) {
  if (budget <= 0.0) return 0.0;
  const pmf::Pmf completion =
      pmf::apply_availability(app.parallel_pmf(type, count, 64), reference.of_type(type));
  return completion.cdf(budget);
}

/// Best (type, count) among the free processors: maximize the probability,
/// tie-break toward fewer processors (leave room for the queue), then
/// toward the smaller expected completion.
struct Choice {
  ra::GroupAssignment group;
  double probability = -1.0;
  bool found = false;
};

Choice choose_group(const workload::Application& app,
                    const std::vector<std::size_t>& free_processors,
                    const sysmodel::AvailabilitySpec& reference, double budget,
                    ra::CountRule rule) {
  Choice best;
  for (std::size_t type = 0; type < free_processors.size(); ++type) {
    for (std::size_t count : ra::candidate_counts(free_processors[type], rule)) {
      const double p = success_probability(app, type, count, reference, budget);
      const bool better =
          p > best.probability + 1e-12 ||
          (p > best.probability - 1e-12 && best.found && count < best.group.processors);
      if (!best.found || better) {
        best.group = ra::GroupAssignment{type, count};
        best.probability = p;
        best.found = true;
      }
    }
  }
  return best;
}

}  // namespace

DynamicRunResult run_dynamic_manager(const sysmodel::Platform& platform,
                                     const sysmodel::AvailabilitySpec& reference,
                                     const sysmodel::AvailabilitySpec& runtime,
                                     const DynamicConfig& config, std::uint64_t seed) {
  if (config.applications == 0) {
    throw std::invalid_argument("run_dynamic_manager: applications must be >= 1");
  }
  if (!(config.mean_interarrival > 0.0)) {
    throw std::invalid_argument("run_dynamic_manager: mean_interarrival must be > 0");
  }
  if (!(config.deadline_slack > 0.0)) {
    throw std::invalid_argument("run_dynamic_manager: deadline_slack must be > 0");
  }
  if (config.escalate_speculation_on_risk &&
      !(config.speculation_risk_floor > 0.0 && config.speculation_risk_floor <= 1.0)) {
    throw std::invalid_argument(
        "run_dynamic_manager: speculation_risk_floor must be in (0, 1]");
  }
  // The dynamic manager executes applications on the idealized
  // simulate_loop, which has no message channel and no master process —
  // silently ignoring these knobs would misreport a hardened run.
  // (Quarantine/audit knobs ARE honored: simulate_loop implements them.)
  if (config.sim.channel.corrupting()) {
    throw std::invalid_argument(
        "run_dynamic_manager: payload corruption ([integrity] / "
        "ChannelModel::corrupt_to_*) requires the MPI executor's checksum "
        "framing (SimConfig::channel is ignored by simulate_loop)");
  }
  if (config.sim.channel.faulty()) {
    throw std::invalid_argument(
        "run_dynamic_manager: channel faults require the MPI executor "
        "(SimConfig::channel is ignored by simulate_loop)");
  }
  if (config.sim.checkpoint.enabled ||
      sim::detail::master_restart_failure(config.sim) != nullptr) {
    throw std::invalid_argument(
        "run_dynamic_manager: master checkpointing/restart requires the MPI "
        "executor (SimConfig::checkpoint is ignored by simulate_loop)");
  }

  // rho_2 trigger: if the realized availability has degraded past the
  // certified radius, plan against it instead of the reference.
  const double realized_decrease =
      sysmodel::availability_decrease(reference, runtime, platform);
  const bool remap_triggered = config.remap_on_rho2 && realized_decrease > config.rho2;
  const sysmodel::AvailabilitySpec& planning_spec = remap_triggered ? runtime : reference;
  {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
      metrics.add("cdsf.dynamic.runs");
      metrics.add("cdsf.remap.checks");
      if (remap_triggered) metrics.add("cdsf.remap.triggered");
      metrics.observe("cdsf.remap.realized_decrease", realized_decrease);
    }
  }

  const util::SeedSequence seeds(seed);
  util::RngStream arrival_rng = seeds.stream(0);

  // Generate the arrival stream up front (deterministic).
  workload::BatchSpec spec = config.application_spec;
  spec.applications = config.applications;
  const workload::Batch apps = workload::generate_batch(spec, seeds.child(1));
  std::vector<double> arrivals(config.applications);
  double clock = 0.0;
  for (std::size_t i = 0; i < config.applications; ++i) {
    clock += -config.mean_interarrival *
             std::log(std::max(1e-12, 1.0 - arrival_rng.uniform01()));
    arrivals[i] = clock;
  }

  // Event-driven manager: arrivals and completions interleave; completions
  // free processors and trigger queued allocations (FIFO).
  std::vector<std::size_t> free_processors(platform.type_count());
  for (std::size_t j = 0; j < platform.type_count(); ++j) {
    free_processors[j] = platform.processors_of_type(j);
  }

  struct Completion {
    double time;
    std::size_t app;
    ra::GroupAssignment group;
    bool operator>(const Completion& other) const { return time > other.time; }
  };
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;
  std::deque<std::size_t> waiting;

  DynamicRunResult result;
  result.remap_triggered = remap_triggered;
  result.realized_decrease = realized_decrease;
  result.outcomes.assign(config.applications, DynamicOutcome{});
  std::size_t next_arrival = 0;
  double busy_processor_time = 0.0;

  auto try_allocate = [&](std::size_t app_index, double now) -> bool {
    const workload::Application& app = apps.at(app_index);
    DynamicOutcome& outcome = result.outcomes[app_index];
    const double budget = outcome.arrival_time + config.deadline_slack - now;
    const Choice choice =
        choose_group(app, free_processors, planning_spec, std::max(budget, 1.0), config.rule);
    if (!choice.found) return false;  // nothing free at all

    free_processors[choice.group.processor_type] -= choice.group.processors;
    outcome.start_time = now;
    outcome.group = choice.group;
    outcome.probability = choice.probability;

    sim::SimConfig sim_config = config.sim;
    if (config.escalate_speculation_on_risk &&
        choice.probability < config.speculation_risk_floor) {
      // The allocation itself is already at risk: hedge the execution with
      // speculative replication before the rho_2 cliff is even reached.
      ++result.speculation_escalations;
      if (!sim_config.speculation.enabled) {
        sim_config.speculation.enabled = true;
      } else {
        sim_config.speculation.quantile =
            std::max(sim_config.speculation.min_quantile,
                     sim_config.speculation.quantile * sim_config.speculation.escalation_factor);
      }
      obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
      if (metrics.enabled()) metrics.add("cdsf.dynamic.speculation_escalated");
    }
    if (sim_config.deadline_risk.enabled && sim_config.deadline_risk.deadline == 0.0) {
      sim_config.deadline_risk.deadline = std::max(budget, 1.0);
    }

    const sim::RunResult run = sim::simulate_loop(
        app, choice.group.processor_type, choice.group.processors, runtime, config.technique,
        sim_config, seeds.child(1000 + app_index));
    result.speculation_total.accumulate(run.speculation);
    outcome.completion_time = now + run.makespan;
    outcome.met_deadline =
        outcome.completion_time <= outcome.arrival_time + config.deadline_slack;
    busy_processor_time += static_cast<double>(choice.group.processors) * run.makespan;
    completions.push(Completion{outcome.completion_time, app_index, choice.group});
    return true;
  };

  while (next_arrival < config.applications || !completions.empty() || !waiting.empty()) {
    const double next_arrival_time =
        next_arrival < config.applications ? arrivals[next_arrival] : 1e300;
    const double next_completion_time = completions.empty() ? 1e300 : completions.top().time;

    if (next_arrival_time <= next_completion_time) {
      const std::size_t app_index = next_arrival++;
      result.outcomes[app_index].arrival_time = arrivals[app_index];
      if (!waiting.empty() || !try_allocate(app_index, arrivals[app_index])) {
        waiting.push_back(app_index);  // preserve FIFO order
      }
    } else {
      const Completion done = completions.top();
      completions.pop();
      free_processors[done.group.processor_type] += done.group.processors;
      result.horizon = std::max(result.horizon, done.time);
      // Drain the FIFO queue as far as the freed resources allow.
      while (!waiting.empty() && try_allocate(waiting.front(), done.time)) {
        waiting.pop_front();
      }
    }
  }

  std::size_t hits = 0;
  double delay = 0.0;
  for (const DynamicOutcome& outcome : result.outcomes) {
    if (outcome.met_deadline) ++hits;
    delay += outcome.start_time - outcome.arrival_time;
  }
  result.deadline_hit_rate =
      static_cast<double>(hits) / static_cast<double>(config.applications);
  result.mean_queueing_delay = delay / static_cast<double>(config.applications);
  result.utilization =
      result.horizon > 0.0
          ? busy_processor_time /
                (static_cast<double>(platform.total_processors()) * result.horizon)
          : 0.0;
  return result;
}

}  // namespace cdsf::core
