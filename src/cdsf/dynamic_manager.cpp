#include "cdsf/dynamic_manager.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "pmf/ops.hpp"
#include "sim/sim_common.hpp"
#include "util/rng.hpp"

namespace cdsf::core {

namespace {

/// Pr(application completes within `budget`) on `count` processors of
/// `type` — the single-application stochastic robustness metric.
double success_probability(const workload::Application& app, std::size_t type,
                           std::size_t count, const sysmodel::AvailabilitySpec& reference,
                           double budget) {
  if (budget <= 0.0) return 0.0;
  const pmf::Pmf completion =
      pmf::apply_availability(app.parallel_pmf(type, count, 64), reference.of_type(type));
  return completion.cdf(budget);
}

/// Best (type, count) among the free processors: maximize the probability,
/// tie-break toward fewer processors (leave room for the queue), then
/// toward the smaller expected completion.
struct Choice {
  ra::GroupAssignment group;
  double probability = -1.0;
  bool found = false;
};

/// With `coarse` set (degradation tier kCoarseAllocation and above) the
/// candidate set collapses to the largest admissible count per type.
Choice choose_group(const workload::Application& app,
                    const std::vector<std::size_t>& free_processors,
                    const sysmodel::AvailabilitySpec& reference, double budget,
                    ra::CountRule rule, bool coarse) {
  Choice best;
  for (std::size_t type = 0; type < free_processors.size(); ++type) {
    const std::vector<std::size_t> counts =
        ra::candidate_counts(free_processors[type], rule);
    for (std::size_t count : counts) {
      if (coarse && count != counts.back()) continue;
      const double p = success_probability(app, type, count, reference, budget);
      const bool better =
          p > best.probability + 1e-12 ||
          (p > best.probability - 1e-12 && best.found && count < best.group.processors);
      if (!best.found || better) {
        best.group = ra::GroupAssignment{type, count};
        best.probability = p;
        best.found = true;
      }
    }
  }
  return best;
}

/// Arrival-time admission estimate: the best achievable completion law on
/// an IDLE platform (every processor of the chosen type free) — the upper
/// bound the admission test discounts by the backlog, and the law whose
/// shed_floor-quantile prices deadline-aware shedding.
struct AdmissionEstimate {
  pmf::Pmf completion;     // completion law of the best full-platform group
  double shed_budget = 0.0;  // smallest budget with Pr(success) >= shed_floor
};

AdmissionEstimate make_estimate(const workload::Application& app,
                                const std::vector<std::size_t>& full_capacity,
                                const sysmodel::AvailabilitySpec& planning_spec,
                                double slack, ra::CountRule rule, double shed_floor) {
  const Choice best =
      choose_group(app, full_capacity, planning_spec, std::max(slack, 1.0), rule, false);
  AdmissionEstimate estimate{
      pmf::apply_availability(
          app.parallel_pmf(best.group.processor_type, best.group.processors, 64),
          planning_spec.of_type(best.group.processor_type)),
      0.0};
  if (shed_floor > 0.0) {
    double cumulative = 0.0;
    estimate.shed_budget = estimate.completion.max();
    for (const pmf::Pulse& pulse : estimate.completion.pulses()) {
      cumulative += pulse.probability;
      if (cumulative >= shed_floor) {
        estimate.shed_budget = pulse.value;
        break;
      }
    }
  }
  return estimate;
}

constexpr std::size_t kMaxTier = static_cast<std::size_t>(DegradationTier::kReject);

/// Reason payload of a kAdmissionRejected flight event (field `b`).
enum RejectReason : std::int64_t {
  kRejectLadder = 0,     // ladder at the reject tier
  kRejectQueueFull = 1,  // bounded queue at capacity
  kRejectAdmitFloor = 2, // backlog-discounted probability below admit_floor
  kRejectMarginal = 3,   // admitting would push queued work under shed_floor
};

}  // namespace

DynamicRunResult run_dynamic_manager(const sysmodel::Platform& platform,
                                     const sysmodel::AvailabilitySpec& reference,
                                     const sysmodel::AvailabilitySpec& runtime,
                                     const DynamicConfig& config, std::uint64_t seed) {
  if (config.applications == 0) {
    throw std::invalid_argument("run_dynamic_manager: applications must be >= 1");
  }
  if (!(config.mean_interarrival > 0.0)) {
    throw std::invalid_argument("run_dynamic_manager: mean_interarrival must be > 0");
  }
  if (!(config.deadline_slack > 0.0)) {
    throw std::invalid_argument("run_dynamic_manager: deadline_slack must be > 0");
  }
  if (config.escalate_speculation_on_risk &&
      !(config.speculation_risk_floor > 0.0 && config.speculation_risk_floor <= 1.0)) {
    throw std::invalid_argument(
        "run_dynamic_manager: speculation_risk_floor must be in (0, 1]");
  }
  // Contradictory admission knobs (shedding or a ladder under accept-all,
  // bounded policies without capacity, ...) are rejected, not ignored.
  validate_admission(config.admission);
  // The dynamic manager executes applications on the idealized
  // simulate_loop, which has no message channel and no master process —
  // silently ignoring these knobs would misreport a hardened run.
  // (Quarantine/audit knobs ARE honored: simulate_loop implements them.)
  if (config.sim.channel.corrupting()) {
    throw std::invalid_argument(
        "run_dynamic_manager: payload corruption ([integrity] / "
        "ChannelModel::corrupt_to_*) requires the MPI executor's checksum "
        "framing (SimConfig::channel is ignored by simulate_loop)");
  }
  if (config.sim.channel.faulty()) {
    throw std::invalid_argument(
        "run_dynamic_manager: channel faults require the MPI executor "
        "(SimConfig::channel is ignored by simulate_loop)");
  }
  if (config.sim.checkpoint.enabled ||
      sim::detail::master_restart_failure(config.sim) != nullptr) {
    throw std::invalid_argument(
        "run_dynamic_manager: master checkpointing/restart requires the MPI "
        "executor (SimConfig::checkpoint is ignored by simulate_loop)");
  }

  // rho_2 trigger: if the realized availability has degraded past the
  // certified radius, plan against it instead of the reference.
  const double realized_decrease =
      sysmodel::availability_decrease(reference, runtime, platform);
  const bool remap_triggered = config.remap_on_rho2 && realized_decrease > config.rho2;
  const sysmodel::AvailabilitySpec& planning_spec = remap_triggered ? runtime : reference;
  const AdmissionConfig& admission = config.admission;
  const bool admission_active = admission.active();
  {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    if (metrics.enabled()) {
      metrics.add("cdsf.dynamic.runs");
      metrics.add("cdsf.remap.checks");
      if (remap_triggered) metrics.add("cdsf.remap.triggered");
      metrics.observe("cdsf.remap.realized_decrease", realized_decrease);
    }
  }
  // Manager-level flight recording (master track only): admission
  // rejections, sheds, and ladder transitions. Structurally inert under
  // accept-all, so default runs stay byte-identical.
  obs::FlightRecorder flight(0, config.sim.flight.track_capacity,
                             admission_active && config.sim.flight.enabled &&
                                 obs::flight_recording_enabled());

  const util::SeedSequence seeds(seed);
  util::RngStream arrival_rng = seeds.stream(0);

  // Generate the arrival stream up front (deterministic).
  workload::BatchSpec spec = config.application_spec;
  spec.applications = config.applications;
  const workload::Batch apps = workload::generate_batch(spec, seeds.child(1));
  std::vector<double> arrivals(config.applications);
  double clock = 0.0;
  for (std::size_t i = 0; i < config.applications; ++i) {
    clock += -config.mean_interarrival *
             std::log(std::max(1e-12, 1.0 - arrival_rng.uniform01()));
    arrivals[i] = clock;
  }
  // Per-application deadline slack. The spread knob draws from its own
  // stream, created only when armed, so spread == 0 (the default) leaves
  // every historical RNG stream untouched.
  std::vector<double> slack(config.applications, config.deadline_slack);
  if (config.deadline_slack_spread > 0.0) {
    util::RngStream slack_rng = seeds.stream(2);
    for (std::size_t i = 0; i < config.applications; ++i) {
      const double u = slack_rng.uniform01();
      slack[i] = config.deadline_slack *
                 (1.0 - config.deadline_slack_spread +
                  2.0 * config.deadline_slack_spread * u);
    }
  }

  // Event-driven manager: arrivals and completions interleave; completions
  // free processors and trigger queued allocations.
  std::vector<std::size_t> free_processors(platform.type_count());
  std::vector<std::size_t> full_capacity(platform.type_count());
  for (std::size_t j = 0; j < platform.type_count(); ++j) {
    free_processors[j] = platform.processors_of_type(j);
    full_capacity[j] = free_processors[j];
  }

  struct Completion {
    double time;
    std::size_t app;
    ra::GroupAssignment group;
    bool operator>(const Completion& other) const { return time > other.time; }
  };
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;
  std::deque<std::size_t> waiting;

  DynamicRunResult result;
  result.remap_triggered = remap_triggered;
  result.realized_decrease = realized_decrease;
  result.outcomes.assign(config.applications, DynamicOutcome{});
  for (std::size_t i = 0; i < config.applications; ++i) {
    result.outcomes[i].deadline_slack = slack[i];
  }
  std::size_t next_arrival = 0;
  double busy_processor_time = 0.0;

  // Admission state. shed_budget caches, per queued application, the
  // smallest remaining budget that keeps its best-case success probability
  // at or above shed_floor — the deadline-aware shedding test is then one
  // comparison per queued job per event.
  AdmissionStats& stats = result.admission;
  std::vector<double> shed_budget(admission_active ? config.applications : 0, 0.0);
  double service_ewma = 0.0;   // EWMA of realized execution makespans
  bool service_seen = false;
  std::size_t tier = 0;
  double overload_ewma = 0.0;
  std::uint64_t stress_events = 0;  // rejections + sheds since last arrival

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  const bool count_metrics = admission_active && metrics.enabled();

  auto deadline_of = [&](std::size_t app_index) {
    return arrivals[app_index] + slack[app_index];
  };

  auto step_ladder_to = [&](std::size_t new_tier, double now) {
    flight.record(obs::FlightEventKind::kOverloadTierChanged, now, obs::kFlightMasterTrack,
                  static_cast<std::int64_t>(new_tier), static_cast<std::int64_t>(tier));
    tier = new_tier;
    ++stats.ladder_steps;
    stats.max_tier = std::max<std::uint64_t>(stats.max_tier, tier);
    if (count_metrics) metrics.add("cdsf.dynamic.ladder_steps");
  };

  auto reject_arrival = [&](std::size_t app_index, double now, std::int64_t reason) {
    result.outcomes[app_index].disposition = DynamicOutcome::Disposition::kRejected;
    ++stats.rejected;
    ++stress_events;
    flight.record(obs::FlightEventKind::kAdmissionRejected, now, obs::kFlightMasterTrack,
                  static_cast<std::int64_t>(app_index), reason);
    if (count_metrics) metrics.add("cdsf.dynamic.rejected");
  };

  // Deadline-aware shedding: evict queued applications whose remaining
  // budget fell below their shed_floor quantile — they could no longer
  // meet their deadline even starting NOW on an idle platform, so burning
  // processor time on them only starves the rest of the queue.
  auto shed_stale = [&](double now) {
    if (!admission_active || !(admission.shed_floor > 0.0)) return;
    for (auto it = waiting.begin(); it != waiting.end();) {
      const std::size_t app_index = *it;
      if (deadline_of(app_index) - now < shed_budget[app_index]) {
        result.outcomes[app_index].disposition = DynamicOutcome::Disposition::kShed;
        ++stats.shed;
        ++stress_events;
        flight.record(obs::FlightEventKind::kJobShed, now, obs::kFlightMasterTrack,
                      static_cast<std::int64_t>(app_index),
                      static_cast<std::int64_t>(tier));
        if (count_metrics) metrics.add("cdsf.dynamic.shed");
        it = waiting.erase(it);
      } else {
        ++it;
      }
    }
  };

  auto try_allocate = [&](std::size_t app_index, double now) -> bool {
    const workload::Application& app = apps.at(app_index);
    DynamicOutcome& outcome = result.outcomes[app_index];
    const double budget = deadline_of(app_index) - now;
    const bool coarse = admission_active &&
                        tier >= static_cast<std::size_t>(DegradationTier::kCoarseAllocation);
    const Choice choice = choose_group(app, free_processors, planning_spec,
                                       std::max(budget, 1.0), config.rule, coarse);
    if (!choice.found) return false;  // nothing free at all

    free_processors[choice.group.processor_type] -= choice.group.processors;
    outcome.start_time = now;
    outcome.group = choice.group;
    outcome.probability = choice.probability;
    ++stats.admitted;
    if (count_metrics) metrics.add("cdsf.dynamic.admitted");

    sim::SimConfig sim_config = config.sim;
    if (config.escalate_speculation_on_risk &&
        choice.probability < config.speculation_risk_floor) {
      // The allocation itself is already at risk: hedge the execution with
      // speculative replication before the rho_2 cliff is even reached.
      ++result.speculation_escalations;
      if (!sim_config.speculation.enabled) {
        sim_config.speculation.enabled = true;
      } else {
        sim_config.speculation.quantile =
            std::max(sim_config.speculation.min_quantile,
                     sim_config.speculation.quantile * sim_config.speculation.escalation_factor);
      }
      obs::MetricsRegistry& escalation_metrics = obs::MetricsRegistry::global();
      if (escalation_metrics.enabled()) {
        escalation_metrics.add("cdsf.dynamic.speculation_escalated");
      }
    }
    if (admission_active) {
      // Degradation-ladder effects on the execution, cumulative by tier.
      if (tier >= static_cast<std::size_t>(DegradationTier::kTightSpeculation)) {
        if (!sim_config.speculation.enabled) {
          sim_config.speculation.enabled = true;
        } else {
          sim_config.speculation.quantile = std::max(
              sim_config.speculation.min_quantile,
              sim_config.speculation.quantile * sim_config.speculation.escalation_factor);
        }
      }
      if (tier >= static_cast<std::size_t>(DegradationTier::kLeanOverheads)) {
        sim_config.quarantine.audit_rate = 0.0;
      }
    }
    if (sim_config.deadline_risk.enabled && sim_config.deadline_risk.deadline == 0.0) {
      sim_config.deadline_risk.deadline = std::max(budget, 1.0);
    }

    const sim::RunResult run = sim::simulate_loop(
        app, choice.group.processor_type, choice.group.processors, runtime, config.technique,
        sim_config, seeds.child(1000 + app_index));
    result.speculation_total.accumulate(run.speculation);
    outcome.completion_time = now + run.makespan;
    outcome.met_deadline = outcome.completion_time <= deadline_of(app_index);
    busy_processor_time += static_cast<double>(choice.group.processors) * run.makespan;
    completions.push(Completion{outcome.completion_time, app_index, choice.group});
    if (admission_active) {
      service_ewma = service_seen ? 0.3 * run.makespan + 0.7 * service_ewma : run.makespan;
      service_seen = true;
    }
    return true;
  };

  // Admission decision for one arrival under an active (non-accept-all)
  // policy. Mutates queue/stats; the accept-all path never calls this.
  auto admit_arrival = [&](std::size_t app_index, double now) {
    // Sustained-overload ladder: one EWMA update and at most one tier step
    // per arrival. The instant signal combines queue occupancy with the
    // rejection/shed pressure accumulated since the previous arrival.
    if (admission.ladder) {
      const double occupancy =
          std::min(1.0, static_cast<double>(waiting.size()) /
                            static_cast<double>(admission.queue_capacity));
      const double instant = std::min(1.0, occupancy + (stress_events > 0 ? 1.0 : 0.0));
      overload_ewma =
          admission.ladder_alpha * instant + (1.0 - admission.ladder_alpha) * overload_ewma;
      stress_events = 0;
      if (overload_ewma > admission.overload_threshold && tier < kMaxTier) {
        step_ladder_to(tier + 1, now);
      } else if (overload_ewma < admission.recover_threshold && tier > 0) {
        step_ladder_to(tier - 1, now);
      }
    }

    if (tier >= static_cast<std::size_t>(DegradationTier::kReject)) {
      reject_arrival(app_index, now, kRejectLadder);
      return;
    }

    const workload::Application& app = apps.at(app_index);
    const AdmissionEstimate estimate = make_estimate(
        app, full_capacity, planning_spec, slack[app_index], config.rule,
        admission.shed_floor);
    shed_budget[app_index] = estimate.shed_budget;

    if (admission.policy == AdmissionPolicy::kRho2Aware) {
      // Backlog-discounted best achievable success probability: the idle-
      // platform completion law, evaluated against the slack that remains
      // after an estimated queue wait (realized-service EWMA x backlog,
      // spread over the groups currently running).
      const double parallel_groups =
          static_cast<double>(std::max<std::size_t>(1, completions.size()));
      const double wait_estimate =
          service_seen
              ? service_ewma * static_cast<double>(waiting.size()) / parallel_groups
              : 0.0;
      const double discounted_budget = slack[app_index] - wait_estimate;
      const double probability =
          discounted_budget > 0.0 ? estimate.completion.cdf(discounted_budget) : 0.0;
      if (probability < admission.admit_floor) {
        reject_arrival(app_index, now, kRejectAdmitFloor);
        return;
      }
      // Marginal rho-impact on already-admitted work: if adding one more
      // expected service time to the backlog would push the most
      // slack-starved queued application under its shed floor (when it is
      // not already), admitting only converts this rejection into a later
      // shed of committed work — refuse instead.
      if (service_seen && admission.shed_floor > 0.0 && !waiting.empty()) {
        std::size_t starved = waiting.front();
        for (const std::size_t queued_index : waiting) {
          if (deadline_of(queued_index) < deadline_of(starved)) starved = queued_index;
        }
        const double budget_without = deadline_of(starved) - now - wait_estimate;
        const double budget_with = budget_without - service_ewma;
        if (budget_without >= shed_budget[starved] && budget_with < shed_budget[starved]) {
          reject_arrival(app_index, now, kRejectMarginal);
          return;
        }
      }
    }

    if (waiting.empty() && try_allocate(app_index, now)) return;  // admitted now

    if (waiting.size() >= admission.queue_capacity) {
      reject_arrival(app_index, now, kRejectQueueFull);
      return;
    }
    // Enqueue per the configured order. EDF inserts before the first
    // queued application with a strictly later absolute deadline, so ties
    // (and the all-equal-slack case) preserve arrival order.
    ++stats.queued;
    if (count_metrics) metrics.add("cdsf.dynamic.queued");
    if (admission.queue_order == QueueOrder::kEdf) {
      auto position = waiting.begin();
      while (position != waiting.end() && deadline_of(*position) <= deadline_of(app_index)) {
        ++position;
      }
      waiting.insert(position, app_index);
    } else {
      waiting.push_back(app_index);
    }
    stats.peak_queue_depth = std::max<std::uint64_t>(stats.peak_queue_depth, waiting.size());
  };

  while (next_arrival < config.applications || !completions.empty() || !waiting.empty()) {
    const double next_arrival_time =
        next_arrival < config.applications ? arrivals[next_arrival] : 1e300;
    const double next_completion_time = completions.empty() ? 1e300 : completions.top().time;

    if (next_arrival_time <= next_completion_time) {
      const std::size_t app_index = next_arrival++;
      result.outcomes[app_index].arrival_time = arrivals[app_index];
      ++stats.arrivals;
      if (admission_active) {
        shed_stale(arrivals[app_index]);
        admit_arrival(app_index, arrivals[app_index]);
      } else if (!waiting.empty() || !try_allocate(app_index, arrivals[app_index])) {
        waiting.push_back(app_index);  // preserve FIFO order
      }
    } else {
      const Completion done = completions.top();
      completions.pop();
      free_processors[done.group.processor_type] += done.group.processors;
      result.horizon = std::max(result.horizon, done.time);
      // Drain the queue as far as the freed resources allow (head-of-line:
      // the front blocks the rest, in FIFO or EDF order alike).
      shed_stale(done.time);
      while (!waiting.empty() && try_allocate(waiting.front(), done.time)) {
        waiting.pop_front();
      }
    }
  }

  std::size_t hits = 0;
  std::size_t admitted_hits = 0;
  double delay = 0.0;
  for (const DynamicOutcome& outcome : result.outcomes) {
    if (outcome.met_deadline) ++hits;
    if (outcome.disposition == DynamicOutcome::Disposition::kAdmitted) {
      if (outcome.met_deadline) ++admitted_hits;
      delay += outcome.start_time - outcome.arrival_time;
    }
  }
  result.deadline_hit_rate =
      static_cast<double>(hits) / static_cast<double>(config.applications);
  result.mean_queueing_delay =
      stats.admitted > 0 ? delay / static_cast<double>(stats.admitted) : 0.0;
  result.admitted_hit_rate =
      stats.admitted > 0
          ? static_cast<double>(admitted_hits) / static_cast<double>(stats.admitted)
          : 0.0;
  result.utilization =
      result.horizon > 0.0
          ? busy_processor_time /
                (static_cast<double>(platform.total_processors()) * result.horizon)
          : 0.0;

  if (flight.enabled()) {
    // Keep the merged events when anything noteworthy happened (tests and
    // postmortems read them); otherwise the cheap summary suffices.
    const bool eventful = stats.shed > 0 || stats.rejected > 0 || stats.ladder_steps > 0;
    result.flight = eventful ? flight.finish() : flight.finish_summary();
    if (stats.shed > 0) {
      obs::FlightAnomaly anomaly;
      anomaly.kind = "overload_shed";
      anomaly.detail = std::to_string(stats.shed) + " of " + std::to_string(stats.arrivals) +
                       " arrivals shed from the waiting queue (max tier " +
                       degradation_tier_name(static_cast<DegradationTier>(
                           std::min<std::uint64_t>(stats.max_tier, kMaxTier))) +
                       ")";
      anomaly.time = result.horizon;
      obs::FlightSink::global().maybe_dump(result.flight, anomaly);
    }
  }
  return result;
}

}  // namespace cdsf::core
