// Dynamic per-application resource allocation — the "dynamic [19]
// stochastic resource allocation heuristics" the paper names as a Stage I
// extension (Smith, Chong, Maciejewski & Siegel, ICPP 2009 lineage).
//
// Unlike the batch mode (every application of a batch mapped at once,
// cdsf/multi_batch.hpp), applications here arrive ONE AT A TIME and are
// allocated immediately from whatever processors are currently free,
// maximizing their own probability of meeting their arrival-relative
// deadline; finished applications release their group. Arrivals finding
// no satisfactory processors wait in a FIFO queue.
//
// Overload robustness (cdsf/admission.hpp): DynamicConfig::admission
// selects an AdmissionPolicy — accept-all (the historical unbounded FIFO,
// byte-identical default), a bounded FIFO/EDF queue with deadline-aware
// shedding, or the rho_2-aware admission test — plus the graceful-
// degradation ladder for sustained overload. AdmissionStats on the result
// carry the closed identity arrivals == admitted + rejected + shed.
#pragma once

#include <cstdint>
#include <vector>

#include "cdsf/admission.hpp"
#include "cdsf/framework.hpp"
#include "obs/flight.hpp"
#include "workload/generator.hpp"

namespace cdsf::core {

/// Arrival process and per-application deadline policy.
struct DynamicConfig {
  std::size_t applications = 20;
  double mean_interarrival = 800.0;
  /// Deadline of each application = its arrival time + this slack.
  double deadline_slack = 8000.0;
  /// Per-application slack heterogeneity in [0, 1): each application's
  /// slack is drawn uniformly from deadline_slack * [1 - spread, 1 + spread]
  /// (its own RNG stream, created only when spread > 0, so the default
  /// leaves every historical stream untouched). Heterogeneous slack is what
  /// makes EDF queue order differ from FIFO.
  double deadline_slack_spread = 0.0;
  /// Shape of the generated applications (one draw per arrival).
  workload::BatchSpec application_spec;
  /// Stage II technique every application executes with.
  dls::TechniqueId technique = dls::TechniqueId::kAF;
  /// Simulation settings for the executions.
  sim::SimConfig sim;
  ra::CountRule rule = ra::CountRule::kPowerOfTwo;
  /// rho_2-triggered re-mapping: when true and the realized (runtime)
  /// weighted-availability decrease relative to `reference` exceeds
  /// `rho2`, every allocation decision scores candidate groups against the
  /// REALIZED availability instead of the stale reference — the dynamic
  /// manager's version of Framework::remap_on_availability.
  bool remap_on_rho2 = false;
  double rho2 = 0.0;
  /// Graceful degradation BEFORE the re-map cliff: when true, an
  /// application whose allocation-time success probability falls below
  /// `speculation_risk_floor` executes with speculative chunk re-execution
  /// enabled (sim.speculation forced on; if it is already on, the straggler
  /// quantile is tightened by sim.speculation.escalation_factor instead,
  /// floored at sim.speculation.min_quantile).
  bool escalate_speculation_on_risk = false;
  double speculation_risk_floor = 0.5;
  /// Overload robustness: admission policy, bounded queue, shedding, and
  /// the degradation ladder (cdsf/admission.hpp). The default accept-all
  /// policy reproduces the historical manager byte-for-byte.
  AdmissionConfig admission;
};

/// One application's journey through the manager.
struct DynamicOutcome {
  /// Where the application ended up: executed (admitted), refused at
  /// arrival, or evicted from the waiting queue by the shed floor.
  /// Rejected/shed applications never start: start_time, completion_time,
  /// group, and probability stay zero and met_deadline stays false.
  enum class Disposition : std::uint8_t { kAdmitted, kRejected, kShed };

  double arrival_time = 0.0;
  /// Slack actually applied to this application (== config.deadline_slack
  /// unless deadline_slack_spread drew a per-application value); absolute
  /// deadline = arrival_time + deadline_slack.
  double deadline_slack = 0.0;
  double start_time = 0.0;       // allocation time (>= arrival when queued)
  double completion_time = 0.0;
  ra::GroupAssignment group;     // what it got
  double probability = 0.0;      // Pr(meets remaining slack) at allocation
  bool met_deadline = false;
  Disposition disposition = Disposition::kAdmitted;
};

/// Aggregates over one run.
struct DynamicRunResult {
  std::vector<DynamicOutcome> outcomes;
  double deadline_hit_rate = 0.0;
  double mean_queueing_delay = 0.0;
  /// Fraction of processor-time used: sum over apps of
  /// processors x (completion - start) / (total processors x horizon).
  double utilization = 0.0;
  double horizon = 0.0;  // completion of the last application
  /// rho_2 re-map observability: whether the realized decrease exceeded
  /// DynamicConfig::rho2 (always false when remap_on_rho2 is off), and the
  /// realized weighted-availability decrease itself (recorded regardless).
  bool remap_triggered = false;
  double realized_decrease = 0.0;
  /// Applications whose execution ran with escalated speculation (only
  /// populated when DynamicConfig::escalate_speculation_on_risk is set),
  /// and the speculation activity summed over every execution.
  std::size_t speculation_escalations = 0;
  sim::SpeculationStats speculation_total;
  /// Admission-control accounting (all zero under accept-all except
  /// arrivals/admitted, which close the identity trivially).
  AdmissionStats admission;
  /// Deadline-hit rate over admitted applications only — the service
  /// level an admission-controlled scheduler actually promises (equals
  /// deadline_hit_rate under accept-all; 0 when nothing was admitted).
  double admitted_hit_rate = 0.0;
  /// Manager-level flight recording: admission rejections, sheds, and
  /// ladder transitions on the master track. Only armed when the
  /// admission layer is active (enabled == false otherwise), so default
  /// runs carry no recording state. A run that shed work dumps a
  /// postmortem with anomaly kind "overload_shed" through the global
  /// obs::FlightSink.
  obs::FlightRecord flight;
};

/// Runs the dynamic manager. Applications are generated deterministically
/// from `seed`; every stochastic component fans out from it. Throws
/// std::invalid_argument on degenerate config.
[[nodiscard]] DynamicRunResult run_dynamic_manager(const sysmodel::Platform& platform,
                                                   const sysmodel::AvailabilitySpec& reference,
                                                   const sysmodel::AvailabilitySpec& runtime,
                                                   const DynamicConfig& config,
                                                   std::uint64_t seed);

}  // namespace cdsf::core
