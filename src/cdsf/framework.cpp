#include "cdsf/framework.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "pmf/ops.hpp"
#include "util/rng.hpp"

namespace cdsf::core {

Framework::Framework(workload::Batch batch, sysmodel::Platform platform,
                     sysmodel::AvailabilitySpec reference_availability, double deadline,
                     ra::RobustnessConfig robustness_config)
    : batch_(std::move(batch)),
      platform_(std::move(platform)),
      reference_(std::move(reference_availability)),
      deadline_(deadline),
      robustness_config_(robustness_config),
      evaluator_(batch_, reference_, deadline_, robustness_config_) {
  if (platform_.type_count() != batch_.type_count()) {
    throw std::invalid_argument("Framework: platform/batch type count mismatch");
  }
}

StageOneResult Framework::describe_allocation(const ra::Allocation& allocation,
                                              std::string label) const {
  if (allocation.size() != batch_.size()) {
    throw std::invalid_argument("describe_allocation: allocation size != batch size");
  }
  if (!allocation.fits(platform_)) {
    throw std::invalid_argument("describe_allocation: allocation does not fit the platform");
  }
  StageOneResult result;
  result.heuristic_name = std::move(label);
  result.allocation = allocation;
  result.phi1 = evaluator_.joint_probability(allocation);
  result.expected_times.reserve(batch_.size());
  result.app_probabilities.reserve(batch_.size());
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    result.expected_times.push_back(evaluator_.expected_completion(i, allocation.at(i)));
    result.app_probabilities.push_back(evaluator_.application_probability(i, allocation.at(i)));
  }
  return result;
}

StageOneResult Framework::run_stage_one(const ra::Heuristic& heuristic,
                                        ra::CountRule rule) const {
  obs::ScopedTimer timer(obs::MetricsRegistry::global(), "cdsf.stage1.seconds");
  ra::Allocation allocation = [&] {
    // The enumeration phase wraps the heuristic's whole search; PMF
    // convolution/compaction nested inside report as their own phases
    // (the profiler subtracts child time from the parent).
    obs::PhaseTimer phase(obs::Phase::kRaEnumeration);
    return heuristic.allocate(evaluator_, platform_, rule);
  }();
  StageOneResult result = describe_allocation(std::move(allocation), heuristic.name());
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  if (metrics.enabled()) {
    metrics.add("cdsf.stage1.allocations");
    metrics.set_gauge("cdsf.stage1.phi1", result.phi1);
  }
  return result;
}

StageTwoResult Framework::run_stage_two(const ra::Allocation& allocation,
                                        const sysmodel::AvailabilitySpec& runtime,
                                        const std::vector<dls::TechniqueId>& techniques,
                                        const StageTwoConfig& config) const {
  if (allocation.size() != batch_.size()) {
    throw std::invalid_argument("run_stage_two: allocation size != batch size");
  }
  if (techniques.empty()) {
    throw std::invalid_argument("run_stage_two: at least one technique required");
  }
  obs::ScopedTimer timer(obs::MetricsRegistry::global(), "cdsf.stage2.seconds");
  if (obs::MetricsRegistry::global().enabled()) {
    obs::MetricsRegistry::global().add("cdsf.stage2.cases");
  }

  StageTwoResult result;
  result.case_name = runtime.name();
  result.outcomes.resize(batch_.size());
  result.best_technique.assign(batch_.size(), -1);
  result.all_meet_deadline = true;
  result.system_makespan = 0.0;

  // The deadline-risk monitor projects against the FRAMEWORK deadline
  // unless the caller pinned an explicit one.
  sim::SimConfig sim_config = config.sim;
  if (sim_config.deadline_risk.enabled && sim_config.deadline_risk.deadline == 0.0) {
    sim_config.deadline_risk.deadline = deadline_;
  }
  // The flight recorder's deadline-miss anomaly likewise defaults to the
  // framework deadline.
  if (sim_config.flight.deadline == 0.0 && deadline_ > 0.0 && std::isfinite(deadline_)) {
    sim_config.flight.deadline = deadline_;
  }

  const util::SeedSequence seeds(config.seed);
  for (std::size_t app = 0; app < batch_.size(); ++app) {
    const ra::GroupAssignment group = allocation.at(app);
    double best_meeting = std::numeric_limits<double>::infinity();
    double best_any = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < techniques.size(); ++k) {
      AppTechniqueOutcome outcome;
      outcome.technique = techniques[k];
      {
        obs::PhaseTimer phase(obs::Phase::kMonteCarlo);
        outcome.summary = sim::simulate_replicated(
            batch_.at(app), group.processor_type, group.processors, runtime, techniques[k],
            sim_config, seeds.child(app * 64 + k), config.replications, deadline_,
            config.threads);
      }
      outcome.meets_deadline = outcome.summary.median_makespan <= deadline_;
      best_any = std::min(best_any, outcome.summary.median_makespan);
      if (outcome.meets_deadline && outcome.summary.median_makespan < best_meeting) {
        best_meeting = outcome.summary.median_makespan;
        result.best_technique[app] = static_cast<int>(k);
      }
      result.outcomes[app].push_back(outcome);
    }
    if (result.best_technique[app] < 0) {
      result.all_meet_deadline = false;
      result.system_makespan = std::max(result.system_makespan, best_any);
    } else {
      result.system_makespan = std::max(result.system_makespan, best_meeting);
    }
  }
  return result;
}

ScenarioResult Framework::run_scenario(std::string name, const ra::Heuristic& heuristic,
                                       const std::vector<dls::TechniqueId>& techniques,
                                       const std::vector<sysmodel::AvailabilitySpec>& cases,
                                       const StageTwoConfig& config, ra::CountRule rule) const {
  ScenarioResult result;
  result.name = std::move(name);
  result.stage_one = run_stage_one(heuristic, rule);
  result.per_case.reserve(cases.size());
  for (const sysmodel::AvailabilitySpec& runtime : cases) {
    result.per_case.push_back(
        run_stage_two(result.stage_one.allocation, runtime, techniques, config));
  }
  return result;
}

RobustnessReport Framework::robustness_report(
    const ScenarioResult& scenario, const std::vector<sysmodel::AvailabilitySpec>& cases) const {
  if (scenario.per_case.size() != cases.size()) {
    throw std::invalid_argument("robustness_report: scenario/case list size mismatch");
  }
  RobustnessReport report;
  report.rho1 = scenario.stage_one.phi1;
  report.rho2 = -1.0;
  report.rho2_case = -1;
  if (cases.empty()) return report;
  for (std::size_t k = 0; k < cases.size(); ++k) {
    if (!scenario.per_case[k].all_meet_deadline) continue;
    const double decrease = sysmodel::availability_decrease(cases.front(), cases[k], platform_);
    if (decrease > report.rho2) {
      report.rho2 = decrease;
      report.rho2_case = static_cast<int>(k);
    }
  }
  return report;
}

Framework::ExecutionPlan Framework::make_plan(const ScenarioResult& scenario,
                                              std::size_t case_index,
                                              dls::TechniqueId fallback) const {
  const StageTwoResult& per_case = scenario.per_case.at(case_index);
  ExecutionPlan plan;
  plan.allocation = scenario.stage_one.allocation;
  plan.phi1 = scenario.stage_one.phi1;
  plan.techniques.reserve(per_case.best_technique.size());
  for (std::size_t app = 0; app < per_case.best_technique.size(); ++app) {
    const int best = per_case.best_technique[app];
    plan.techniques.push_back(
        best >= 0 ? per_case.outcomes[app][static_cast<std::size_t>(best)].technique
                  : fallback);
  }
  return plan;
}

sim::BatchRunResult Framework::execute_plan(const ExecutionPlan& plan,
                                            const sysmodel::AvailabilitySpec& runtime,
                                            const sim::SimConfig& config,
                                            std::uint64_t seed) const {
  sim::SimConfig sim_config = config;
  if (sim_config.deadline_risk.enabled && sim_config.deadline_risk.deadline == 0.0) {
    sim_config.deadline_risk.deadline = deadline_;
  }
  if (sim_config.flight.deadline == 0.0 && deadline_ > 0.0 && std::isfinite(deadline_)) {
    sim_config.flight.deadline = deadline_;
  }
  return sim::simulate_batch(batch_, plan.allocation, runtime, plan.techniques, sim_config,
                             seed);
}

Framework::RemapDecision Framework::remap_on_availability(const ExecutionPlan& plan,
                                                          const sysmodel::AvailabilitySpec& realized,
                                                          const ra::Heuristic& heuristic,
                                                          const RemapPolicy& policy,
                                                          ra::CountRule rule) const {
  if (plan.allocation.size() != batch_.size()) {
    throw std::invalid_argument("remap_on_availability: plan allocation size != batch size");
  }
  if (realized.type_count() != platform_.type_count()) {
    throw std::invalid_argument("remap_on_availability: realized spec type count mismatch");
  }
  RemapDecision decision;
  decision.realized_decrease = sysmodel::availability_decrease(reference_, realized, platform_);

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  if (metrics.enabled()) {
    metrics.add("cdsf.remap.checks");
    metrics.observe("cdsf.remap.realized_decrease", decision.realized_decrease);
  }

  // Evaluate against what the system has BECOME, not what Stage I assumed.
  const ra::RobustnessEvaluator realized_eval(batch_, realized, deadline_, robustness_config_);
  decision.phi1_realized_before = realized_eval.joint_probability(plan.allocation);
  decision.plan = plan;
  decision.phi1_realized_after = decision.phi1_realized_before;
  if (decision.realized_decrease <= policy.rho2) return decision;  // within certificate

  decision.triggered = true;
  if (metrics.enabled()) metrics.add("cdsf.remap.triggered");
  decision.plan.allocation = heuristic.allocate(realized_eval, platform_, rule);
  decision.phi1_realized_after = realized_eval.joint_probability(decision.plan.allocation);
  decision.plan.phi1 = decision.phi1_realized_after;
  return decision;
}

std::string Framework::describe_plan(const ExecutionPlan& plan) const {
  std::string out;
  for (std::size_t app = 0; app < plan.allocation.size(); ++app) {
    const ra::GroupAssignment group = plan.allocation.at(app);
    out += batch_.at(app).name() + " -> " + std::to_string(group.processors) + " x " +
           platform_.type(group.processor_type).name + " via " +
           (app < plan.techniques.size() ? dls::technique_name(plan.techniques[app]) : "?") +
           "\n";
  }
  out += "phi_1 = " + std::to_string(plan.phi1);
  return out;
}

double Framework::analytic_static_time(std::size_t app, ra::GroupAssignment group,
                                       const sysmodel::AvailabilitySpec& runtime) const {
  const pmf::Pmf parallel = batch_.at(app).parallel_pmf(group.processor_type, group.processors,
                                                        robustness_config_.discretization_pulses);
  return pmf::apply_availability(parallel, runtime.of_type(group.processor_type),
                                 robustness_config_.max_pulses)
      .expectation();
}

}  // namespace cdsf::core
