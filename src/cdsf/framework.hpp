// The Combined Dual-Stage Framework (CDSF) — the paper's primary
// contribution, tying Stage I (robust resource allocation) to Stage II
// (robust dynamic loop scheduling) and quantifying the system robustness
// tuple (rho_1, rho_2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dls/registry.hpp"
#include "ra/allocation.hpp"
#include "ra/heuristics.hpp"
#include "ra/robustness.hpp"
#include "sim/batch_executor.hpp"
#include "sim/loop_executor.hpp"
#include "sysmodel/availability.hpp"
#include "sysmodel/platform.hpp"
#include "workload/application.hpp"

namespace cdsf::core {

/// Stage I output: the initial mapping and its robustness.
struct StageOneResult {
  std::string heuristic_name;
  ra::Allocation allocation;
  /// phi_1 = Pr(all applications complete <= deadline) under Â.
  double phi1 = 0.0;
  /// Expected completion time per application (Table V values).
  std::vector<double> expected_times;
  /// Per-application probability of meeting the deadline.
  std::vector<double> app_probabilities;
};

/// One (application, technique) outcome of Stage II.
struct AppTechniqueOutcome {
  dls::TechniqueId technique = dls::TechniqueId::kStatic;
  sim::ReplicationSummary summary;
  /// Median simulated makespan <= deadline (representative execution).
  bool meets_deadline = false;
};

/// Stage II output for one runtime availability case.
struct StageTwoResult {
  std::string case_name;
  /// outcomes[app][k] — k indexes the technique list passed in.
  std::vector<std::vector<AppTechniqueOutcome>> outcomes;
  /// Per application: index (into the technique list) of the fastest
  /// technique that meets the deadline; -1 if none does.
  std::vector<int> best_technique;
  /// Every application has at least one deadline-meeting technique.
  bool all_meet_deadline = false;
  /// System makespan under the per-application best techniques (max of the
  /// winners' median makespans; uses the overall-fastest technique for
  /// applications with no deadline-meeting one).
  double system_makespan = 0.0;
};

/// Stage II configuration.
struct StageTwoConfig {
  sim::SimConfig sim;
  std::size_t replications = 25;
  std::uint64_t seed = 0xC05F;
  /// Threads for the replication loop (results are thread-count invariant;
  /// see sim::simulate_replicated). 1 = serial.
  std::size_t threads = 1;
};

/// Scenario = Stage I policy x Stage II policy, evaluated over a set of
/// runtime availability cases.
struct ScenarioResult {
  std::string name;
  StageOneResult stage_one;
  std::vector<StageTwoResult> per_case;  // aligned with the cases passed in
};

/// System robustness tuple (Section III-C, question 3).
struct RobustnessReport {
  /// rho_1: phi_1 of the Stage I mapping.
  double rho1 = 0.0;
  /// rho_2: largest tolerable percentage decrease in weighted system
  /// availability, over cases where every application still meets the
  /// deadline; 0 if only the reference case survives, negative sentinel -1
  /// if not even the reference case does.
  double rho2 = 0.0;
  /// Index (into the case list) of the case achieving rho_2; -1 if none.
  int rho2_case = -1;
};

/// The framework: a batch, a platform, the reference availability Â and a
/// common deadline Delta.
class Framework {
 public:
  /// Throws std::invalid_argument on empty batch, type-count mismatches, or
  /// non-positive deadline.
  Framework(workload::Batch batch, sysmodel::Platform platform,
            sysmodel::AvailabilitySpec reference_availability, double deadline,
            ra::RobustnessConfig robustness_config = {});

  [[nodiscard]] const workload::Batch& batch() const noexcept { return batch_; }
  [[nodiscard]] const sysmodel::Platform& platform() const noexcept { return platform_; }
  [[nodiscard]] const sysmodel::AvailabilitySpec& reference_availability() const noexcept {
    return reference_;
  }
  [[nodiscard]] double deadline() const noexcept { return deadline_; }
  /// The Stage I evaluator (reference availability Â).
  [[nodiscard]] const ra::RobustnessEvaluator& evaluator() const noexcept { return evaluator_; }

  /// Stage I: run an RA heuristic against Â.
  [[nodiscard]] StageOneResult run_stage_one(const ra::Heuristic& heuristic,
                                             ra::CountRule rule = ra::CountRule::kPowerOfTwo) const;

  /// Stage I bookkeeping for an externally chosen allocation.
  [[nodiscard]] StageOneResult describe_allocation(const ra::Allocation& allocation,
                                                   std::string label) const;

  /// Stage II: execute every application of `allocation` under every
  /// technique in `techniques` against runtime availability `runtime`.
  [[nodiscard]] StageTwoResult run_stage_two(const ra::Allocation& allocation,
                                             const sysmodel::AvailabilitySpec& runtime,
                                             const std::vector<dls::TechniqueId>& techniques,
                                             const StageTwoConfig& config) const;

  /// Full scenario: Stage I with `heuristic`, then Stage II over `cases`.
  [[nodiscard]] ScenarioResult run_scenario(std::string name, const ra::Heuristic& heuristic,
                                            const std::vector<dls::TechniqueId>& techniques,
                                            const std::vector<sysmodel::AvailabilitySpec>& cases,
                                            const StageTwoConfig& config,
                                            ra::CountRule rule = ra::CountRule::kPowerOfTwo) const;

  /// (rho_1, rho_2) from a scenario result. `cases` must be those the
  /// scenario ran over, with cases[0] the reference.
  [[nodiscard]] RobustnessReport robustness_report(
      const ScenarioResult& scenario,
      const std::vector<sysmodel::AvailabilitySpec>& cases) const;

  /// Analytic STATIC completion expectation for one application under a
  /// given runtime availability: E[T_par / a] — the paper's Figure 3/4
  /// arithmetic.
  [[nodiscard]] double analytic_static_time(std::size_t app, ra::GroupAssignment group,
                                            const sysmodel::AvailabilitySpec& runtime) const;

  /// The deployable artifact of the whole framework: where each application
  /// runs (Stage I) and which DLS technique executes it (Stage II).
  struct ExecutionPlan {
    ra::Allocation allocation;
    std::vector<dls::TechniqueId> techniques;  // one per application
    double phi1 = 0.0;
  };

  /// Locks a plan from a scenario result: the allocation from Stage I and,
  /// per application, the best deadline-meeting technique under
  /// `cases_index` (the overall-fastest one, `fallback`, when none meets).
  /// Throws std::out_of_range for a bad case index.
  [[nodiscard]] ExecutionPlan make_plan(const ScenarioResult& scenario, std::size_t case_index,
                                        dls::TechniqueId fallback = dls::TechniqueId::kAF) const;

  /// Executes a locked plan once against a runtime availability (one
  /// simulated batch execution; see sim::simulate_batch).
  [[nodiscard]] sim::BatchRunResult execute_plan(const ExecutionPlan& plan,
                                                 const sysmodel::AvailabilitySpec& runtime,
                                                 const sim::SimConfig& config,
                                                 std::uint64_t seed) const;

  /// Re-mapping trigger: re-run Stage I when the realized availability has
  /// degraded beyond what the plan was certified to tolerate (rho_2 from
  /// robustness_report).
  struct RemapPolicy {
    /// Largest tolerable weighted-availability decrease. A realized
    /// decrease <= rho2 keeps the original plan.
    double rho2 = 0.0;
  };

  /// Outcome of a remap check. `plan` is the original plan when not
  /// triggered, or the re-allocation computed against the REALIZED
  /// availability when triggered (techniques carry over per application;
  /// phi1 is re-evaluated under the realized spec).
  struct RemapDecision {
    bool triggered = false;
    /// Realized weighted-availability decrease vs. the reference.
    double realized_decrease = 0.0;
    ExecutionPlan plan;
    /// phi_1 of the ORIGINAL allocation evaluated under the realized
    /// availability — what the stale plan is actually worth now.
    double phi1_realized_before = 0.0;
    /// phi_1 of `plan`'s allocation under the realized availability
    /// (equals phi1_realized_before when not triggered).
    double phi1_realized_after = 0.0;
  };

  /// Closes the Stage I / Stage II loop: compares the realized availability
  /// against the reference and, when the decrease exceeds policy.rho2,
  /// re-runs `heuristic` on an evaluator built from the REALIZED
  /// availability — the paper's rho_2 turned from a static certificate into
  /// a runtime trigger. Throws std::invalid_argument on a plan whose
  /// allocation does not match the batch, or a realized spec with a
  /// mismatched type count.
  [[nodiscard]] RemapDecision remap_on_availability(
      const ExecutionPlan& plan, const sysmodel::AvailabilitySpec& realized,
      const ra::Heuristic& heuristic, const RemapPolicy& policy,
      ra::CountRule rule = ra::CountRule::kPowerOfTwo) const;

  /// Human-readable plan rendering.
  [[nodiscard]] std::string describe_plan(const ExecutionPlan& plan) const;

 private:
  workload::Batch batch_;
  sysmodel::Platform platform_;
  sysmodel::AvailabilitySpec reference_;
  double deadline_;
  ra::RobustnessConfig robustness_config_;
  ra::RobustnessEvaluator evaluator_;
};

}  // namespace cdsf::core
