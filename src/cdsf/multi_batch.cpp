#include "cdsf/multi_batch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/batch_executor.hpp"
#include "util/rng.hpp"

namespace cdsf::core {

MultiBatchResult run_multi_batch(const sysmodel::Platform& platform,
                                 const sysmodel::AvailabilitySpec& reference,
                                 const sysmodel::AvailabilitySpec& runtime,
                                 const ra::Heuristic& heuristic, const MultiBatchConfig& config,
                                 std::uint64_t seed) {
  if (config.batches == 0) {
    throw std::invalid_argument("run_multi_batch: batches must be >= 1");
  }
  if (!(config.mean_interarrival > 0.0)) {
    throw std::invalid_argument("run_multi_batch: mean_interarrival must be > 0");
  }
  if (!(config.deadline_slack > 0.0)) {
    throw std::invalid_argument("run_multi_batch: deadline_slack must be > 0");
  }

  const util::SeedSequence seeds(seed);
  util::RngStream arrival_rng = seeds.stream(0);

  MultiBatchResult result;
  result.outcomes.reserve(config.batches);
  double clock = 0.0;           // arrival process time
  double resources_free = 0.0;  // when the platform becomes available again
  std::size_t hits = 0;
  double delay_sum = 0.0;

  for (std::size_t b = 0; b < config.batches; ++b) {
    BatchOutcome outcome;
    clock += -config.mean_interarrival *
             std::log(std::max(1e-12, 1.0 - arrival_rng.uniform01()));
    outcome.arrival_time = clock;
    outcome.start_time = std::max(clock, resources_free);
    const double deadline_absolute = outcome.arrival_time + config.deadline_slack;

    // Stage I on the reference availability. The batch's Stage I deadline
    // is its REMAINING slack at start time — queueing delay already spent.
    const workload::Batch batch = workload::generate_batch(config.batch_spec, seeds.child(b));
    const double remaining_slack = std::max(deadline_absolute - outcome.start_time, 1.0);
    const Framework framework(batch, platform, reference, remaining_slack);
    const StageOneResult stage1 = framework.run_stage_one(heuristic, config.rule);
    outcome.phi1 = stage1.phi1;

    // Stage II: per-application best technique of the robust set, then one
    // simulated execution of the whole batch with those winners.
    const StageTwoResult stage2 = framework.run_stage_two(
        stage1.allocation, runtime, dls::paper_robust_set(), config.stage_two);
    std::vector<dls::TechniqueId> winners;
    winners.reserve(batch.size());
    for (std::size_t app = 0; app < batch.size(); ++app) {
      const int best = stage2.best_technique[app];
      winners.push_back(best >= 0 ? dls::paper_robust_set()[static_cast<std::size_t>(best)]
                                  : dls::TechniqueId::kAF);
    }
    const sim::BatchRunResult run = sim::simulate_batch(
        batch, stage1.allocation, runtime, winners, config.stage_two.sim,
        seeds.child(1000 + b));
    outcome.psi = run.system_makespan;
    outcome.completion_time = outcome.start_time + run.system_makespan;
    outcome.met_deadline = outcome.completion_time <= deadline_absolute;

    resources_free = outcome.completion_time;
    if (outcome.met_deadline) ++hits;
    delay_sum += outcome.start_time - outcome.arrival_time;
    result.outcomes.push_back(outcome);
  }

  result.total_time = resources_free;
  result.deadline_hit_rate =
      static_cast<double>(hits) / static_cast<double>(config.batches);
  result.mean_queueing_delay = delay_sum / static_cast<double>(config.batches);
  return result;
}

}  // namespace cdsf::core
