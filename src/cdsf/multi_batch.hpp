// Multi-batch operation — the paper's future work "a larger scale problem
// ... more applications, i.e., in a larger batch or in multiple batches".
//
// Applications arrive at random intervals in the resource manager's queue
// (Section III-B) and are assigned in batches. Following the paper's
// definition, the system makespan Psi of a batch "represents the time when
// the next batch of applications will require resources": batches execute
// one after another on the full platform, each re-running Stage I (on the
// reference availability) and Stage II (simulated against the runtime
// availability). Per-batch deadlines are relative to ARRIVAL, so queueing
// delay consumes slack and robustness couples across batches — the effect
// a single-batch study cannot show.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cdsf/framework.hpp"
#include "workload/generator.hpp"

namespace cdsf::core {

/// Arrival process and per-batch deadline policy.
struct MultiBatchConfig {
  /// Number of batches to process.
  std::size_t batches = 8;
  /// Mean inter-arrival time between batches (exponential).
  double mean_interarrival = 2000.0;
  /// Deadline of a batch = its arrival time + this slack.
  double deadline_slack = 8000.0;
  /// Workload shape of every batch.
  workload::BatchSpec batch_spec;
  /// Stage II simulation settings.
  StageTwoConfig stage_two;
  /// Count rule for Stage I.
  ra::CountRule rule = ra::CountRule::kPowerOfTwo;
};

/// Outcome of one batch.
struct BatchOutcome {
  double arrival_time = 0.0;
  double start_time = 0.0;       // max(arrival, previous batch completion)
  double completion_time = 0.0;  // start + simulated Psi
  double phi1 = 0.0;             // Stage I robustness at allocation time
  double psi = 0.0;              // simulated system makespan of the batch
  bool met_deadline = false;     // completion <= arrival + slack
};

/// Aggregate over a whole run.
struct MultiBatchResult {
  std::vector<BatchOutcome> outcomes;
  double total_time = 0.0;        // completion of the last batch
  double deadline_hit_rate = 0.0; // fraction of batches meeting their deadline
  double mean_queueing_delay = 0.0;
};

/// Processes `config.batches` randomly generated batches through the CDSF
/// on `platform`: Stage I against `reference`, Stage II simulated against
/// `runtime` with the per-application best technique of the robust set.
/// Deterministic given `seed`. Throws std::invalid_argument on degenerate
/// config (zero batches, non-positive inter-arrival or slack).
[[nodiscard]] MultiBatchResult run_multi_batch(const sysmodel::Platform& platform,
                                               const sysmodel::AvailabilitySpec& reference,
                                               const sysmodel::AvailabilitySpec& runtime,
                                               const ra::Heuristic& heuristic,
                                               const MultiBatchConfig& config,
                                               std::uint64_t seed);

}  // namespace cdsf::core
