#include "cdsf/paper_example.hpp"

namespace cdsf::core {

PaperExample make_paper_example() {
  using workload::Application;
  using workload::TimeLaw;
  using workload::TimeLawKind;

  // Table II (iteration counts) + Table III (mean times, sigma = mu / 10).
  workload::Batch batch;
  batch.add(Application("app1", 439, 1024,
                        {TimeLaw{TimeLawKind::kNormal, 1800.0, 0.1},
                         TimeLaw{TimeLawKind::kNormal, 4000.0, 0.1}}));
  batch.add(Application("app2", 512, 2048,
                        {TimeLaw{TimeLawKind::kNormal, 2800.0, 0.1},
                         TimeLaw{TimeLawKind::kNormal, 6000.0, 0.1}}));
  // Table II's app3 row is partially garbled in available copies; the
  // serial count 216 and the 5 % / 95 % split (which Table V's 2699.86
  // pins down analytically) give 216 serial + 4104 parallel iterations.
  batch.add(Application("app3", 216, 4104,
                        {TimeLaw{TimeLawKind::kNormal, 12000.0, 0.1},
                         TimeLaw{TimeLawKind::kNormal, 8000.0, 0.1}}));
  return PaperExample{std::move(batch), sysmodel::paper_platform(), sysmodel::paper_cases(),
                      3250.0};
}

ra::Allocation paper_naive_allocation() {
  return ra::Allocation({ra::GroupAssignment{1, 4},   // app1: 4 x type2
                         ra::GroupAssignment{0, 4},   // app2: 4 x type1
                         ra::GroupAssignment{1, 4}}); // app3: 4 x type2
}

ra::Allocation paper_robust_allocation() {
  return ra::Allocation({ra::GroupAssignment{0, 2},   // app1: 2 x type1
                         ra::GroupAssignment{0, 2},   // app2: 2 x type1
                         ra::GroupAssignment{1, 8}}); // app3: 8 x type2
}

}  // namespace cdsf::core
