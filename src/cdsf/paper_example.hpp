// The canonical data of the paper's Section IV example:
//   Table I   — availability cases (via sysmodel::paper_cases),
//   Table II  — the batch of three applications,
//   Table III — mean single-processor execution times,
//   Table IV  — the two reference allocations (naive and robust IM),
//   deadline Delta = 3250 time units.
#pragma once

#include <vector>

#include "ra/allocation.hpp"
#include "sysmodel/cases.hpp"
#include "workload/application.hpp"

namespace cdsf::core {

/// Everything the Section IV example needs, bundled.
struct PaperExample {
  workload::Batch batch;
  sysmodel::Platform platform;
  std::vector<sysmodel::AvailabilitySpec> cases;  // [0] == case 1 == Â
  double deadline = 3250.0;
};

/// Builds the example. Applications use Normal laws with cov = 0.1 exactly
/// as Section IV prescribes.
[[nodiscard]] PaperExample make_paper_example();

/// Table IV "naive IM": app1 -> 4 x type2, app2 -> 4 x type1,
/// app3 -> 4 x type2.
[[nodiscard]] ra::Allocation paper_naive_allocation();

/// Table IV "robust IM": app1 -> 2 x type1, app2 -> 2 x type1,
/// app3 -> 8 x type2.
[[nodiscard]] ra::Allocation paper_robust_allocation();

}  // namespace cdsf::core
