#include "cdsf/scenario_io.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "cdsf/paper_example.hpp"

namespace cdsf::core {

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  throw std::runtime_error("scenario parse error (line " + std::to_string(line) + "): " +
                           message);
}

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> split_whitespace(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) out.push_back(token);
  return out;
}

double parse_double(const std::string& text, std::size_t line) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(text, &pos);
    if (pos != text.size()) parse_error(line, "trailing characters in number '" + text + "'");
    return value;
  } catch (const std::invalid_argument&) {
    parse_error(line, "expected a number, got '" + text + "'");
  } catch (const std::out_of_range&) {
    parse_error(line, "number out of range: '" + text + "'");
  }
}

std::int64_t parse_int(const std::string& text, std::size_t line) {
  try {
    std::size_t pos = 0;
    const std::int64_t value = std::stoll(text, &pos);
    if (pos != text.size()) parse_error(line, "trailing characters in integer '" + text + "'");
    return value;
  } catch (const std::invalid_argument&) {
    parse_error(line, "expected an integer, got '" + text + "'");
  } catch (const std::out_of_range&) {
    parse_error(line, "integer out of range: '" + text + "'");
  }
}

workload::IterationProfile parse_profile(const std::string& text, std::size_t line) {
  if (text == "flat") return workload::IterationProfile::kFlat;
  if (text == "increasing") return workload::IterationProfile::kIncreasing;
  if (text == "decreasing") return workload::IterationProfile::kDecreasing;
  if (text == "parabolic") return workload::IterationProfile::kParabolic;
  parse_error(line, "unknown iteration profile '" + text + "'");
}

workload::TimeLawKind parse_law(const std::string& text, std::size_t line) {
  if (text == "normal") return workload::TimeLawKind::kNormal;
  if (text == "lognormal") return workload::TimeLawKind::kLogNormal;
  if (text == "gamma") return workload::TimeLawKind::kGamma;
  if (text == "uniform") return workload::TimeLawKind::kUniform;
  if (text == "exponential") return workload::TimeLawKind::kExponential;
  parse_error(line, "unknown time law '" + text + "'");
}

std::string law_name(workload::TimeLawKind kind) {
  switch (kind) {
    case workload::TimeLawKind::kNormal: return "normal";
    case workload::TimeLawKind::kLogNormal: return "lognormal";
    case workload::TimeLawKind::kGamma: return "gamma";
    case workload::TimeLawKind::kUniform: return "uniform";
    case workload::TimeLawKind::kExponential: return "exponential";
  }
  return "normal";
}

/// "value:probability" pulse.
pmf::Pulse parse_pulse(const std::string& token, std::size_t line) {
  const auto colon = token.find(':');
  if (colon == std::string::npos) {
    parse_error(line, "pulse must be 'availability:probability', got '" + token + "'");
  }
  return pmf::Pulse{parse_double(token.substr(0, colon), line),
                    parse_double(token.substr(colon + 1), line)};
}

// Raw, order-preserving view of the file before semantic resolution.
struct RawApplication {
  std::string name;
  std::int64_t serial = -1;
  std::int64_t parallel = -1;
  std::vector<double> means;
  double cov = 0.1;
  workload::TimeLawKind law = workload::TimeLawKind::kNormal;
  workload::IterationProfile profile = workload::IterationProfile::kFlat;
  std::size_t line = 0;
};
struct RawCase {
  std::string name;
  std::vector<std::pair<std::string, std::vector<pmf::Pulse>>> per_type;
  std::size_t line = 0;
};

sim::SimConfig::FailureKind parse_failure_kind(const std::string& text, std::size_t line) {
  if (text == "degrade") return sim::SimConfig::FailureKind::kDegrade;
  if (text == "crash") return sim::SimConfig::FailureKind::kCrash;
  if (text == "crash-recover") return sim::SimConfig::FailureKind::kCrashRecover;
  if (text == "master-restart") return sim::SimConfig::FailureKind::kMasterCrashRestart;
  if (text == "silent-corrupt") return sim::SimConfig::FailureKind::kSilentCorrupt;
  parse_error(line, "unknown failure kind '" + text +
                        "' (degrade|crash|crash-recover|master-restart|silent-corrupt)");
}

std::string failure_kind_name(sim::SimConfig::FailureKind kind) {
  switch (kind) {
    case sim::SimConfig::FailureKind::kDegrade: return "degrade";
    case sim::SimConfig::FailureKind::kCrash: return "crash";
    case sim::SimConfig::FailureKind::kCrashRecover: return "crash-recover";
    case sim::SimConfig::FailureKind::kMasterCrashRestart: return "master-restart";
    case sim::SimConfig::FailureKind::kSilentCorrupt: return "silent-corrupt";
  }
  return "degrade";
}

/// Probability knob in [0, 1].
double parse_probability(const std::string& text, std::size_t line) {
  const double p = parse_double(text, line);
  if (!(p >= 0.0 && p <= 1.0)) parse_error(line, "probability must be in [0, 1]");
  return p;
}

}  // namespace

Scenario parse_scenario(std::istream& in) {
  std::vector<sysmodel::ProcessorType> types;
  std::vector<RawCase> raw_cases;
  std::vector<RawApplication> raw_apps;
  std::vector<sim::SimConfig::Failure> failures;
  sim::ChannelModel channel;
  sim::SimConfig::MasterCheckpoint checkpoint;
  sim::SimConfig::Quarantine quarantine;
  AdmissionConfig admission;
  double deadline = -1.0;

  enum class Section {
    kNone,
    kPlatform,
    kAvailability,
    kApplication,
    kDeadline,
    kFailure,
    kChannel,
    kCheckpoint,
    kQuarantine,
    kIntegrity,
    kAdmission,
  };
  Section section = Section::kNone;
  RawCase* current_case = nullptr;
  RawApplication* current_app = nullptr;
  sim::SimConfig::Failure* current_failure = nullptr;

  std::string line_text;
  std::size_t line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    std::string text = line_text;
    if (const auto hash = text.find('#'); hash != std::string::npos) text = text.substr(0, hash);
    text = trim(text);
    if (text.empty()) continue;

    if (text.front() == '[') {
      if (text.back() != ']') parse_error(line, "unterminated section header");
      const std::vector<std::string> header = split_whitespace(text.substr(1, text.size() - 2));
      if (header.empty()) parse_error(line, "empty section header");
      if (header[0] == "platform") {
        section = Section::kPlatform;
      } else if (header[0] == "availability") {
        if (header.size() != 2) parse_error(line, "[availability <name>] expected");
        section = Section::kAvailability;
        raw_cases.push_back(RawCase{header[1], {}, line});
        current_case = &raw_cases.back();
      } else if (header[0] == "application") {
        if (header.size() != 2) parse_error(line, "[application <name>] expected");
        section = Section::kApplication;
        raw_apps.push_back(RawApplication{});
        current_app = &raw_apps.back();
        current_app->name = header[1];
        current_app->line = line;
      } else if (header[0] == "deadline") {
        section = Section::kDeadline;
      } else if (header[0] == "failure") {
        if (header.size() != 1) parse_error(line, "[failure] takes no name");
        section = Section::kFailure;
        failures.push_back(sim::SimConfig::Failure{});
        current_failure = &failures.back();
      } else if (header[0] == "channel") {
        if (header.size() != 1) parse_error(line, "[channel] takes no name");
        section = Section::kChannel;
      } else if (header[0] == "checkpoint") {
        if (header.size() != 1) parse_error(line, "[checkpoint] takes no name");
        section = Section::kCheckpoint;
        checkpoint.enabled = true;
      } else if (header[0] == "quarantine") {
        if (header.size() != 1) parse_error(line, "[quarantine] takes no name");
        section = Section::kQuarantine;
        quarantine.enabled = true;
      } else if (header[0] == "integrity") {
        if (header.size() != 1) parse_error(line, "[integrity] takes no name");
        section = Section::kIntegrity;
      } else if (header[0] == "admission") {
        if (header.size() != 1) parse_error(line, "[admission] takes no name");
        section = Section::kAdmission;
        // Presence enables: default to the bounded policy so a bare
        // [admission] section with just a capacity is meaningful.
        if (!admission.active()) admission.policy = AdmissionPolicy::kBoundedQueue;
      } else {
        parse_error(line, "unknown section '" + header[0] + "'");
      }
      continue;
    }

    const auto eq = text.find('=');
    if (eq == std::string::npos) parse_error(line, "expected 'key = value'");
    const std::string key = trim(text.substr(0, eq));
    const std::string value = trim(text.substr(eq + 1));

    switch (section) {
      case Section::kNone:
        parse_error(line, "key outside of any section");
      case Section::kPlatform: {
        if (key != "type") parse_error(line, "only 'type = name count' allowed in [platform]");
        const std::vector<std::string> parts = split_whitespace(value);
        if (parts.size() != 2) parse_error(line, "'type = name count' expected");
        const std::int64_t count = parse_int(parts[1], line);
        if (count <= 0) parse_error(line, "processor count must be positive");
        types.push_back({parts[0], static_cast<std::size_t>(count)});
        break;
      }
      case Section::kAvailability: {
        std::vector<pmf::Pulse> pulses;
        for (const std::string& token : split_whitespace(value)) {
          pulses.push_back(parse_pulse(token, line));
        }
        if (pulses.empty()) parse_error(line, "at least one pulse required");
        current_case->per_type.emplace_back(key, std::move(pulses));
        break;
      }
      case Section::kApplication: {
        if (key == "serial") {
          current_app->serial = parse_int(value, line);
        } else if (key == "parallel") {
          current_app->parallel = parse_int(value, line);
        } else if (key == "mean") {
          for (const std::string& token : split_whitespace(value)) {
            current_app->means.push_back(parse_double(token, line));
          }
        } else if (key == "cov") {
          current_app->cov = parse_double(value, line);
        } else if (key == "law") {
          current_app->law = parse_law(value, line);
        } else if (key == "profile") {
          current_app->profile = parse_profile(value, line);
        } else {
          parse_error(line, "unknown application key '" + key + "'");
        }
        break;
      }
      case Section::kDeadline: {
        if (key != "value") parse_error(line, "only 'value = <number>' allowed in [deadline]");
        deadline = parse_double(value, line);
        break;
      }
      case Section::kFailure: {
        if (key == "worker") {
          const std::int64_t worker = parse_int(value, line);
          if (worker < 0) parse_error(line, "failure worker must be >= 0");
          current_failure->worker = static_cast<std::size_t>(worker);
        } else if (key == "time") {
          const double time = parse_double(value, line);
          if (time < 0.0) parse_error(line, "failure time must be >= 0");
          current_failure->time = time;
        } else if (key == "kind") {
          current_failure->kind = parse_failure_kind(value, line);
        } else if (key == "residual") {
          const double residual = parse_double(value, line);
          if (!(residual > 0.0 && residual <= 1.0)) {
            parse_error(line, "failure residual must be in (0, 1]");
          }
          current_failure->residual_availability = residual;
        } else if (key == "recovery") {
          current_failure->recovery_time = parse_double(value, line);
        } else if (key == "probability") {
          const double p = parse_probability(value, line);
          if (!(p > 0.0)) parse_error(line, "failure probability must be in (0, 1]");
          current_failure->corrupt_probability = p;
        } else {
          parse_error(line, "unknown failure key '" + key + "'");
        }
        break;
      }
      case Section::kChannel: {
        if (key == "drop-to-worker") {
          channel.drop_to_worker = parse_probability(value, line);
        } else if (key == "drop-to-master") {
          channel.drop_to_master = parse_probability(value, line);
        } else if (key == "duplicate-to-worker") {
          channel.duplicate_to_worker = parse_probability(value, line);
        } else if (key == "duplicate-to-master") {
          channel.duplicate_to_master = parse_probability(value, line);
        } else if (key == "reorder-to-worker") {
          channel.reorder_to_worker = parse_probability(value, line);
        } else if (key == "reorder-to-master") {
          channel.reorder_to_master = parse_probability(value, line);
        } else if (key == "reorder-delay") {
          const double delay = parse_double(value, line);
          if (!(delay > 0.0)) parse_error(line, "reorder-delay must be > 0");
          channel.reorder_delay = delay;
        } else if (key == "burst-gap-mean") {
          const double gap = parse_double(value, line);
          if (gap < 0.0) parse_error(line, "burst-gap-mean must be >= 0");
          channel.burst_gap_mean = gap;
        } else if (key == "burst-duration") {
          const double duration = parse_double(value, line);
          if (duration < 0.0) parse_error(line, "burst-duration must be >= 0");
          channel.burst_duration = duration;
        } else if (key == "rto") {
          const double rto = parse_double(value, line);
          if (!(rto > 0.0)) parse_error(line, "rto must be > 0");
          channel.rto = rto;
        } else if (key == "rto-backoff") {
          const double backoff = parse_double(value, line);
          if (!(backoff >= 1.0)) parse_error(line, "rto-backoff must be >= 1");
          channel.rto_backoff = backoff;
        } else if (key == "max-retransmits") {
          const std::int64_t n = parse_int(value, line);
          if (n < 0) parse_error(line, "max-retransmits must be >= 0");
          channel.max_retransmits = static_cast<std::size_t>(n);
        } else {
          parse_error(line, "unknown channel key '" + key + "'");
        }
        break;
      }
      case Section::kCheckpoint: {
        if (key == "interval") {
          const double interval = parse_double(value, line);
          if (!(interval > 0.0)) parse_error(line, "checkpoint interval must be > 0");
          checkpoint.interval = interval;
        } else if (key == "json") {
          checkpoint.json_path = value;
        } else {
          parse_error(line, "unknown checkpoint key '" + key + "'");
        }
        break;
      }
      case Section::kQuarantine: {
        if (key == "fail-slow") {
          // The section arms the EWMA tracker by default; 'fail-slow = 0'
          // keeps only the audit layer (audit-rate) active.
          const std::int64_t v = parse_int(value, line);
          if (v != 0 && v != 1) parse_error(line, "fail-slow must be 0 or 1");
          quarantine.enabled = v != 0;
        } else if (key == "ewma-alpha") {
          const double alpha = parse_double(value, line);
          if (!(alpha > 0.0 && alpha <= 1.0)) parse_error(line, "ewma-alpha must be in (0, 1]");
          quarantine.ewma_alpha = alpha;
        } else if (key == "slowdown-threshold") {
          const double threshold = parse_double(value, line);
          if (!(threshold > 1.0)) parse_error(line, "slowdown-threshold must be > 1");
          quarantine.slowdown_threshold = threshold;
        } else if (key == "min-observations") {
          const std::int64_t n = parse_int(value, line);
          if (n < 1) parse_error(line, "min-observations must be >= 1");
          quarantine.min_observations = static_cast<std::uint64_t>(n);
        } else if (key == "probe-interval") {
          const double interval = parse_double(value, line);
          if (!(interval > 0.0)) parse_error(line, "probe-interval must be > 0");
          quarantine.probe_interval = interval;
        } else if (key == "probe-successes") {
          const std::int64_t n = parse_int(value, line);
          if (n < 1) parse_error(line, "probe-successes must be >= 1");
          quarantine.probe_successes = static_cast<std::size_t>(n);
        } else if (key == "audit-rate") {
          quarantine.audit_rate = parse_probability(value, line);
        } else if (key == "audit-mismatch-limit") {
          const std::int64_t n = parse_int(value, line);
          if (n < 1) parse_error(line, "audit-mismatch-limit must be >= 1");
          quarantine.audit_mismatch_limit = static_cast<std::size_t>(n);
        } else {
          parse_error(line, "unknown quarantine key '" + key + "'");
        }
        break;
      }
      case Section::kIntegrity: {
        if (key == "corrupt-to-worker") {
          channel.corrupt_to_worker = parse_probability(value, line);
        } else if (key == "corrupt-to-master") {
          channel.corrupt_to_master = parse_probability(value, line);
        } else {
          parse_error(line, "unknown integrity key '" + key + "'");
        }
        break;
      }
      case Section::kAdmission: {
        if (key == "policy") {
          try {
            admission.policy = admission_policy_from_name(value);
          } catch (const std::invalid_argument& error) {
            parse_error(line, error.what());
          }
        } else if (key == "queue-capacity") {
          const std::int64_t capacity = parse_int(value, line);
          if (capacity < 1) parse_error(line, "queue-capacity must be >= 1");
          admission.queue_capacity = static_cast<std::size_t>(capacity);
        } else if (key == "order") {
          if (value == "fifo") {
            admission.queue_order = QueueOrder::kFifo;
          } else if (value == "edf") {
            admission.queue_order = QueueOrder::kEdf;
          } else {
            parse_error(line, "order must be fifo or edf, got '" + value + "'");
          }
        } else if (key == "admit-floor") {
          admission.admit_floor = parse_probability(value, line);
        } else if (key == "shed-floor") {
          admission.shed_floor = parse_probability(value, line);
        } else if (key == "ladder") {
          const std::int64_t v = parse_int(value, line);
          if (v != 0 && v != 1) parse_error(line, "ladder must be 0 or 1");
          admission.ladder = v != 0;
        } else if (key == "ladder-alpha") {
          const double alpha = parse_double(value, line);
          if (!(alpha > 0.0 && alpha <= 1.0)) parse_error(line, "ladder-alpha must be in (0, 1]");
          admission.ladder_alpha = alpha;
        } else if (key == "overload-threshold") {
          const double threshold = parse_double(value, line);
          if (!(threshold > 0.0 && threshold <= 1.0)) {
            parse_error(line, "overload-threshold must be in (0, 1]");
          }
          admission.overload_threshold = threshold;
        } else if (key == "recover-threshold") {
          const double threshold = parse_double(value, line);
          if (!(threshold >= 0.0 && threshold < 1.0)) {
            parse_error(line, "recover-threshold must be in [0, 1)");
          }
          admission.recover_threshold = threshold;
        } else {
          parse_error(line, "unknown admission key '" + key + "'");
        }
        break;
      }
    }
  }

  // ---- semantic resolution ------------------------------------------------
  if (types.empty()) throw std::invalid_argument("scenario: [platform] defines no types");
  sysmodel::Platform platform(types);
  auto type_index = [&](const std::string& name, std::size_t at_line) {
    for (std::size_t j = 0; j < platform.type_count(); ++j) {
      if (platform.type(j).name == name) return j;
    }
    parse_error(at_line, "unknown processor type '" + name + "'");
  };

  if (raw_cases.empty()) {
    throw std::invalid_argument("scenario: at least one [availability <name>] case required");
  }
  std::vector<sysmodel::AvailabilitySpec> cases;
  for (const RawCase& raw : raw_cases) {
    std::vector<pmf::Pmf> per_type(platform.type_count(), pmf::Pmf::delta(1.0));
    std::vector<bool> seen(platform.type_count(), false);
    for (const auto& [name, pulses] : raw.per_type) {
      const std::size_t j = type_index(name, raw.line);
      per_type[j] = pmf::Pmf::from_pulses(pulses);
      seen[j] = true;
    }
    for (std::size_t j = 0; j < platform.type_count(); ++j) {
      if (!seen[j]) {
        throw std::invalid_argument("scenario: availability case '" + raw.name +
                                    "' missing type '" + platform.type(j).name + "'");
      }
    }
    cases.emplace_back(raw.name, std::move(per_type));
  }

  if (raw_apps.empty()) throw std::invalid_argument("scenario: no applications defined");
  workload::Batch batch;
  for (const RawApplication& raw : raw_apps) {
    if (raw.serial < 0 || raw.parallel < 0) {
      throw std::invalid_argument("scenario: application '" + raw.name +
                                  "' needs 'serial' and 'parallel'");
    }
    if (raw.means.size() != platform.type_count()) {
      throw std::invalid_argument("scenario: application '" + raw.name + "' needs " +
                                  std::to_string(platform.type_count()) + " mean values");
    }
    std::vector<workload::TimeLaw> laws;
    laws.reserve(raw.means.size());
    for (double mean : raw.means) laws.push_back({raw.law, mean, raw.cov});
    batch.add(workload::Application(raw.name, raw.serial, raw.parallel, std::move(laws),
                                    raw.profile));
  }

  if (!(deadline > 0.0)) {
    throw std::invalid_argument("scenario: [deadline] with a positive 'value' required");
  }

  std::size_t master_failures = 0;
  for (const sim::SimConfig::Failure& failure : failures) {
    if (failure.kind == sim::SimConfig::FailureKind::kCrashRecover ||
        failure.kind == sim::SimConfig::FailureKind::kMasterCrashRestart) {
      if (!std::isfinite(failure.recovery_time) || failure.recovery_time <= failure.time) {
        throw std::invalid_argument("scenario: [failure] with kind = " +
                                    failure_kind_name(failure.kind) +
                                    " needs 'recovery' > 'time'");
      }
    } else if (std::isfinite(failure.recovery_time)) {
      throw std::invalid_argument(
          "scenario: [failure] 'recovery' is only valid with kind = crash-recover or "
          "master-restart");
    }
    if (failure.kind != sim::SimConfig::FailureKind::kSilentCorrupt &&
        failure.corrupt_probability != 1.0) {
      throw std::invalid_argument(
          "scenario: [failure] 'probability' is only valid with kind = silent-corrupt");
    }
    if (failure.kind == sim::SimConfig::FailureKind::kMasterCrashRestart) ++master_failures;
  }
  if (master_failures > 1) {
    throw std::invalid_argument("scenario: at most one master-restart [failure] per scenario");
  }
  // Contradictory [admission] knob combinations fail here, with the other
  // semantic checks, rather than at the first dynamic-manager run.
  validate_admission(admission);

  return Scenario{std::move(platform), std::move(cases),      std::move(batch),
                  deadline,            std::move(failures),   std::move(channel),
                  std::move(checkpoint), quarantine,          admission};
}

Scenario parse_scenario_text(const std::string& text) {
  std::istringstream stream(text);
  return parse_scenario(stream);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("scenario: cannot open '" + path + "'");
  return parse_scenario(file);
}

std::string scenario_to_text(const Scenario& scenario) {
  std::ostringstream out;
  out << "[platform]\n";
  for (const auto& type : scenario.platform.types()) {
    out << "type = " << type.name << " " << type.count << "\n";
  }
  for (const auto& spec : scenario.cases) {
    out << "\n[availability " << spec.name() << "]\n";
    for (std::size_t j = 0; j < scenario.platform.type_count(); ++j) {
      out << scenario.platform.type(j).name << " =";
      for (const pmf::Pulse& pulse : spec.of_type(j).pulses()) {
        out << " " << pulse.value << ":" << pulse.probability;
      }
      out << "\n";
    }
  }
  for (const auto& app : scenario.batch) {
    out << "\n[application " << app.name() << "]\n";
    out << "serial = " << app.serial_iterations() << "\n";
    out << "parallel = " << app.parallel_iterations() << "\n";
    out << "mean =";
    for (std::size_t j = 0; j < app.type_count(); ++j) out << " " << app.mean_time(j);
    out << "\n";
    out << "cov = " << app.time_law(0).cov << "\n";
    out << "law = " << law_name(app.time_law(0).kind) << "\n";
    out << "profile = " << workload::to_string(app.profile()) << "\n";
  }
  out << "\n[deadline]\nvalue = " << scenario.deadline << "\n";
  for (const sim::SimConfig::Failure& failure : scenario.failures) {
    out << "\n[failure]\n";
    if (failure.kind != sim::SimConfig::FailureKind::kMasterCrashRestart) {
      out << "worker = " << failure.worker << "\n";
    }
    out << "time = " << failure.time << "\n";
    out << "kind = " << failure_kind_name(failure.kind) << "\n";
    if (failure.kind == sim::SimConfig::FailureKind::kDegrade) {
      out << "residual = " << failure.residual_availability << "\n";
    } else if (failure.kind == sim::SimConfig::FailureKind::kCrashRecover ||
               failure.kind == sim::SimConfig::FailureKind::kMasterCrashRestart) {
      out << "recovery = " << failure.recovery_time << "\n";
    } else if (failure.kind == sim::SimConfig::FailureKind::kSilentCorrupt) {
      out << "probability = " << failure.corrupt_probability << "\n";
    }
  }
  if (scenario.channel.faulty()) {
    const sim::ChannelModel& ch = scenario.channel;
    out << "\n[channel]\n";
    out << "drop-to-worker = " << ch.drop_to_worker << "\n";
    out << "drop-to-master = " << ch.drop_to_master << "\n";
    out << "duplicate-to-worker = " << ch.duplicate_to_worker << "\n";
    out << "duplicate-to-master = " << ch.duplicate_to_master << "\n";
    out << "reorder-to-worker = " << ch.reorder_to_worker << "\n";
    out << "reorder-to-master = " << ch.reorder_to_master << "\n";
    out << "reorder-delay = " << ch.reorder_delay << "\n";
    out << "burst-gap-mean = " << ch.burst_gap_mean << "\n";
    out << "burst-duration = " << ch.burst_duration << "\n";
    out << "rto = " << ch.rto << "\n";
    out << "rto-backoff = " << ch.rto_backoff << "\n";
    out << "max-retransmits = " << ch.max_retransmits << "\n";
  }
  if (scenario.checkpoint.enabled) {
    out << "\n[checkpoint]\n";
    out << "interval = " << scenario.checkpoint.interval << "\n";
    if (!scenario.checkpoint.json_path.empty()) {
      out << "json = " << scenario.checkpoint.json_path << "\n";
    }
  }
  if (scenario.quarantine.armed()) {
    const sim::SimConfig::Quarantine& q = scenario.quarantine;
    out << "\n[quarantine]\n";
    out << "fail-slow = " << (q.enabled ? 1 : 0) << "\n";
    out << "ewma-alpha = " << q.ewma_alpha << "\n";
    out << "slowdown-threshold = " << q.slowdown_threshold << "\n";
    out << "min-observations = " << q.min_observations << "\n";
    out << "probe-interval = " << q.probe_interval << "\n";
    out << "probe-successes = " << q.probe_successes << "\n";
    out << "audit-rate = " << q.audit_rate << "\n";
    out << "audit-mismatch-limit = " << q.audit_mismatch_limit << "\n";
  }
  if (scenario.channel.corrupt_to_worker > 0.0 || scenario.channel.corrupt_to_master > 0.0) {
    out << "\n[integrity]\n";
    out << "corrupt-to-worker = " << scenario.channel.corrupt_to_worker << "\n";
    out << "corrupt-to-master = " << scenario.channel.corrupt_to_master << "\n";
  }
  if (scenario.admission.active()) {
    const AdmissionConfig& adm = scenario.admission;
    out << "\n[admission]\n";
    out << "policy = " << admission_policy_name(adm.policy) << "\n";
    out << "queue-capacity = " << adm.queue_capacity << "\n";
    out << "order = " << (adm.queue_order == QueueOrder::kEdf ? "edf" : "fifo") << "\n";
    if (adm.admit_floor > 0.0) out << "admit-floor = " << adm.admit_floor << "\n";
    if (adm.shed_floor > 0.0) out << "shed-floor = " << adm.shed_floor << "\n";
    if (adm.ladder) {
      out << "ladder = 1\n";
      out << "ladder-alpha = " << adm.ladder_alpha << "\n";
      out << "overload-threshold = " << adm.overload_threshold << "\n";
      out << "recover-threshold = " << adm.recover_threshold << "\n";
    }
  }
  return out.str();
}

std::string paper_scenario_text() {
  const PaperExample example = make_paper_example();
  Scenario scenario;
  scenario.platform = example.platform;
  scenario.cases = example.cases;
  scenario.batch = example.batch;
  scenario.deadline = example.deadline;
  return scenario_to_text(scenario);
}

}  // namespace cdsf::core
