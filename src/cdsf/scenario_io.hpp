// Plain-text scenario files: describe a platform, its availability cases,
// a batch of applications and a deadline in a small INI-like format, so
// experiments can be configured without recompiling.
//
//   # comments start with '#'
//   [platform]
//   type = type1 4            # name count
//   type = type2 8
//
//   [availability case1]      # one section per case; first case = Â
//   type1 = 0.75:0.5 1.0:0.5  # availability:probability pulses
//   type2 = 0.25:0.25 0.5:0.25 1.0:0.5
//
//   [application app1]
//   serial = 439
//   parallel = 1024
//   mean = 1800 4000          # per processor type, in [platform] order
//   cov = 0.1                 # optional, default 0.1
//   law = normal              # optional: normal|lognormal|gamma|uniform|exponential
//
//   [deadline]
//   value = 3250
//
//   [failure]                 # optional, repeatable: injected fault
//   worker = 2                # worker index within the executing group
//   time = 600                # (ignored for kind = master-restart)
//   kind = crash-recover      # degrade | crash | crash-recover |
//                             #   master-restart | silent-corrupt
//   recovery = 1400           # crash-recover and master-restart only
//   # residual = 0.001        # degrade only
//   # probability = 0.5       # silent-corrupt only: chance a chunk
//                             #   completed after onset is silently wrong
//
//   [channel]                 # optional: unreliable master-worker channel
//   drop-to-worker = 0.1      # (MPI executor only; arms the hardened
//   drop-to-master = 0.05     #  at-least-once protocol)
//   duplicate-to-worker = 0.1
//   duplicate-to-master = 0.1
//   reorder-to-worker = 0.2
//   reorder-to-master = 0.2
//   reorder-delay = 1.5
//   burst-gap-mean = 400      # 0 disables burst-loss episodes
//   burst-duration = 20
//   rto = 2.0                 # first retransmit timeout
//   rto-backoff = 2.0
//   max-retransmits = 8       # 0 = never retransmit (ablation arm)
//
//   [checkpoint]              # optional: master checkpointing (presence
//   interval = 250            #  enables it; MPI executor only)
//   json = out/checkpoint.json  # optional final-state dump
//
//   [quarantine]              # optional: fail-slow detection (presence
//   slowdown-threshold = 4    #  enables the EWMA tracker; both executors)
//   fail-slow = 1             # optional: 0 keeps only the audit layer
//   ewma-alpha = 0.3
//   min-observations = 3
//   probe-interval = 200      # simulated time between canary probes
//   probe-successes = 2       # healthy canaries required to reinstate
//   audit-rate = 0.1          # fraction of chunks re-executed + compared
//   audit-mismatch-limit = 1  # mismatches before the origin is quarantined
//
//   [integrity]               # optional: payload corruption on the channel
//   corrupt-to-worker = 0.01  # (MPI executor only; checksum framing
//   corrupt-to-master = 0.01  #  discards, retransmission recovers)
//
//   [admission]               # optional: dynamic-manager overload control
//   policy = rho2             # accept-all | bounded | rho2 (presence
//   queue-capacity = 4        #  defaults the policy to 'bounded')
//   order = edf               # fifo | edf
//   admit-floor = 0.2         # rho2 only: reject below this probability
//   shed-floor = 0.1          # evict queued jobs below this probability
//   ladder = 1                # arm the graceful-degradation ladder
//   ladder-alpha = 0.3
//   overload-threshold = 0.75
//   recover-threshold = 0.25
//
// Sections may appear in any order; [platform] must precede availability
// and application sections only logically (the parser resolves names after
// reading the whole file).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cdsf/admission.hpp"
#include "sim/loop_executor.hpp"
#include "sysmodel/availability.hpp"
#include "sysmodel/platform.hpp"
#include "workload/application.hpp"

namespace cdsf::core {

/// Everything a scenario file defines.
struct Scenario {
  sysmodel::Platform platform{{{"default", 1}}};
  std::vector<sysmodel::AvailabilitySpec> cases;  // [0] is the reference
  workload::Batch batch;
  double deadline = 0.0;
  /// Injected worker faults for Stage II executions (worker indexes are
  /// within each application's group; duplicates are rejected at
  /// simulation time, where the group size is known).
  std::vector<sim::SimConfig::Failure> failures;
  /// Unreliable-channel model for the MPI executor ([channel] section;
  /// default-constructed = reliable, no protocol hardening).
  sim::ChannelModel channel;
  /// Master checkpoint/restart knobs ([checkpoint] section; disabled when
  /// the section is absent — a master-restart failure still implies it at
  /// simulation time).
  sim::SimConfig::MasterCheckpoint checkpoint;
  /// Fail-slow quarantine / audit-validation knobs ([quarantine] section;
  /// structurally disarmed when the section is absent). Payload-corruption
  /// probabilities from [integrity] land on `channel`.
  sim::SimConfig::Quarantine quarantine;
  /// Dynamic-manager overload control ([admission] section; inert
  /// accept-all when absent — batch/plan runs ignore it entirely).
  AdmissionConfig admission;
};

/// Parses a scenario from a stream. Throws std::runtime_error with a
/// line-numbered message on malformed input, and std::invalid_argument when
/// the parsed pieces are inconsistent (unknown type names, no applications,
/// missing deadline, ...).
[[nodiscard]] Scenario parse_scenario(std::istream& in);

/// Convenience: parse from a string.
[[nodiscard]] Scenario parse_scenario_text(const std::string& text);

/// Loads and parses a scenario file. Throws std::runtime_error if the file
/// cannot be opened.
[[nodiscard]] Scenario load_scenario(const std::string& path);

/// Serializes a scenario back to the file format (round-trips through
/// parse_scenario_text).
[[nodiscard]] std::string scenario_to_text(const Scenario& scenario);

/// The paper's Section IV example as a scenario-file string (used by the
/// round-trip tests and as a template for users).
[[nodiscard]] std::string paper_scenario_text();

}  // namespace cdsf::core
