#include "cdsf/solve.hpp"

#include "dls/analysis.hpp"

namespace cdsf::core {

Framework make_framework(const Scenario& scenario, ra::RobustnessConfig robustness) {
  return Framework(scenario.batch, scenario.platform, scenario.cases.front(), scenario.deadline,
                   std::move(robustness));
}

SolveOutcome solve_on(const Framework& framework, const Scenario& scenario,
                      const SolveOptions& options) {
  SolveOutcome outcome;
  outcome.feasible_space = ra::count_feasible(scenario.batch.size(), scenario.platform,
                                              ra::CountRule::kPowerOfTwo);
  const ra::ExhaustiveOptimal exhaustive;
  const ra::BestOfPortfolio portfolio;
  const ra::Heuristic& heuristic =
      outcome.feasible_space <= options.exhaustive_space_limit
          ? static_cast<const ra::Heuristic&>(exhaustive)
          : static_cast<const ra::Heuristic&>(portfolio);

  StageTwoConfig config;
  config.replications = options.replications;
  config.seed = options.seed;
  config.threads = options.threads;
  config.sim.failures = scenario.failures;  // [failure] sections from the file
  config.sim.quarantine = scenario.quarantine;  // [quarantine]: both executors
  config.sim.cancel = options.cancel;
  outcome.scenario = framework.run_scenario("cdsf", heuristic, dls::paper_robust_set(),
                                            scenario.cases, config);
  outcome.report = framework.robustness_report(outcome.scenario, scenario.cases);
  return outcome;
}

SolveOutcome solve_scenario(const Scenario& scenario, const SolveOptions& options) {
  ra::RobustnessConfig robustness;
  robustness.cancel = options.cancel;
  return solve_on(make_framework(scenario, std::move(robustness)), scenario, options);
}

}  // namespace cdsf::core
