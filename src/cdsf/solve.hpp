// The library-level solve entry point: everything `cdsf scenario` does
// between "parsed scenario" and "printed results", callable without a CLI.
//
// Extracted from src/tools/cdsf_tool.cpp so the scheduling service
// (src/svc/) and the tool share ONE solve path — heuristic selection by
// feasible-space size, Stage II configuration from the scenario's
// [failure]/[quarantine] sections, and the (rho_1, rho_2) certificate all
// live here. The tool keeps its printing; the service keeps its journal;
// neither re-implements the solve.
#pragma once

#include <atomic>
#include <cstdint>

#include "cdsf/framework.hpp"
#include "cdsf/scenario_io.hpp"

namespace cdsf::core {

/// Knobs of one solve. The defaults are the `cdsf scenario` defaults, so
/// a default-constructed SolveOptions reproduces the CLI byte-for-byte.
struct SolveOptions {
  /// Stage II replications per (application, technique, case).
  std::size_t replications = 51;
  std::uint64_t seed = 1;
  /// Threads for the Stage II replication loop (results are thread-count
  /// invariant; see sim::simulate_replicated).
  std::size_t threads = 1;
  /// Allocation-space threshold for heuristic selection: spaces up to this
  /// size are solved exactly (ra::ExhaustiveOptimal), larger ones fall
  /// back to ra::BestOfPortfolio.
  std::size_t exhaustive_space_limit = 200000;
  /// Cooperative cancellation: when non-null and set, the solve unwinds
  /// with util::Cancelled at the next RA-enumeration or Monte-Carlo
  /// boundary (see ra::RobustnessConfig::cancel / sim::SimConfig::cancel).
  /// solve_scenario wires it into both stages; solve_on only into Stage II
  /// (Stage I polls whatever the caller put in the framework's
  /// RobustnessConfig).
  const std::atomic<bool>* cancel = nullptr;
};

/// What a solve produces: the full scenario result, its robustness
/// certificate, and the feasible-space size that drove heuristic choice.
struct SolveOutcome {
  ScenarioResult scenario;
  RobustnessReport report;
  /// |feasible allocations| under CountRule::kPowerOfTwo — the number the
  /// exhaustive-vs-portfolio decision was made on.
  std::size_t feasible_space = 0;
};

/// Builds the Framework a scenario describes: batch + platform +
/// reference availability (cases.front()) + deadline. Throws whatever the
/// Framework constructor throws on an invalid scenario.
[[nodiscard]] Framework make_framework(const Scenario& scenario,
                                       ra::RobustnessConfig robustness = {});

/// Runs the full CDSF on an existing framework: picks the Stage I
/// heuristic by feasible-space size, runs Stage II over scenario.cases
/// with the scenario's [failure]/[quarantine] sections applied, and
/// computes (rho_1, rho_2). `framework` must be the one make_framework
/// built for this scenario (or equivalent).
[[nodiscard]] SolveOutcome solve_on(const Framework& framework, const Scenario& scenario,
                                    const SolveOptions& options = {});

/// Convenience: make_framework + solve_on, with options.cancel wired into
/// BOTH stages. This is the service's one-call solve path.
[[nodiscard]] SolveOutcome solve_scenario(const Scenario& scenario,
                                          const SolveOptions& options = {});

}  // namespace cdsf::core
