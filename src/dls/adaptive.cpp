#include "dls/adaptive.hpp"

#include <cmath>
#include <stdexcept>

namespace cdsf::dls {

std::string awf_variant_name(AwfVariant variant) {
  switch (variant) {
    case AwfVariant::kTimestep: return "AWF";
    case AwfVariant::kBatch: return "AWF-B";
    case AwfVariant::kChunk: return "AWF-C";
    case AwfVariant::kBatchTotal: return "AWF-D";
    case AwfVariant::kChunkTotal: return "AWF-E";
  }
  return "AWF-?";
}

namespace {

/// Weights proportional to measured rates (1 / mean iteration time),
/// normalized to mean 1. Workers without measurements get the average rate
/// of the measured ones (neutral weight if nobody has data yet).
std::vector<double> weights_from_measurements(
    const std::vector<stats::OnlineSummary>& measured) {
  const std::size_t workers = measured.size();
  double known_rate_sum = 0.0;
  std::size_t known = 0;
  for (const auto& summary : measured) {
    if (!summary.empty() && summary.mean() > 0.0) {
      known_rate_sum += 1.0 / summary.mean();
      ++known;
    }
  }
  std::vector<double> weights(workers, 1.0);
  if (known == 0) return weights;
  const double fallback_rate = known_rate_sum / static_cast<double>(known);
  double total = 0.0;
  for (std::size_t w = 0; w < workers; ++w) {
    const double rate = (!measured[w].empty() && measured[w].mean() > 0.0)
                            ? 1.0 / measured[w].mean()
                            : fallback_rate;
    weights[w] = rate;
    total += rate;
  }
  for (double& weight : weights) weight *= static_cast<double>(workers) / total;
  return weights;
}

}  // namespace

// ------------------------------------------------------------------- AWF --

AdaptiveWeightedFactoring::AdaptiveWeightedFactoring(const TechniqueParams& params,
                                                     AwfVariant variant)
    : variant_(variant), workers_(params.workers), measured_(params.workers) {
  validate_params(params);
  // The timestep variant carries a-priori weights across executions (they
  // come from previous timesteps). The batch/chunk-adaptive variants start
  // uniform by definition — they learn ONLY from their own measurements,
  // which is exactly what separates them from WF in the paper's study.
  weights_ = variant_ == AwfVariant::kTimestep ? normalized_weights(params)
                                               : std::vector<double>(workers_, 1.0);
}

void AdaptiveWeightedFactoring::refresh_weights() { weights_ = weights_from_measurements(measured_); }

std::int64_t AdaptiveWeightedFactoring::weighted_chunk(const SchedulingContext& ctx,
                                                       std::int64_t pool) {
  const double share =
      static_cast<double>(pool) * weights_.at(ctx.worker) / static_cast<double>(workers_);
  auto chunk = static_cast<std::int64_t>(std::llround(share));
  return std::max<std::int64_t>(1, chunk);
}

std::int64_t AdaptiveWeightedFactoring::next_chunk(const SchedulingContext& ctx) {
  const bool chunk_adaptive = variant_ == AwfVariant::kChunk || variant_ == AwfVariant::kChunkTotal;
  if (chunk_adaptive) {
    refresh_weights();
    // No batches: the pool is half the remaining iterations.
    const auto pool = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(static_cast<double>(ctx.remaining_iterations) * 0.5)));
    return clamp_chunk(weighted_chunk(ctx, pool), ctx.remaining_iterations);
  }

  if (batch_remaining_ <= 0) {
    if (variant_ == AwfVariant::kBatch || variant_ == AwfVariant::kBatchTotal) refresh_weights();
    batch_size_ = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(static_cast<double>(ctx.remaining_iterations) * 0.5)));
    batch_remaining_ = batch_size_;
  }
  std::int64_t chunk = weighted_chunk(ctx, batch_size_);
  chunk = std::min(chunk, batch_remaining_);
  batch_remaining_ -= chunk;
  return clamp_chunk(chunk, ctx.remaining_iterations);
}

void AdaptiveWeightedFactoring::record(const ChunkResult& result) {
  if (result.worker >= workers_) throw std::out_of_range("AWF::record: bad worker index");
  if (result.iterations <= 0) return;
  const bool total_timing =
      variant_ == AwfVariant::kBatchTotal || variant_ == AwfVariant::kChunkTotal;
  const double time = total_timing ? result.total_time : result.execution_time;
  if (time <= 0.0) return;
  measured_[result.worker].add(time / static_cast<double>(result.iterations),
                               static_cast<double>(result.iterations));
}

void AdaptiveWeightedFactoring::reset() {
  batch_remaining_ = 0;
  batch_size_ = 0;
  if (variant_ != AwfVariant::kTimestep) {
    // Chunk/batch-adaptive variants learn within one execution only.
    measured_.assign(workers_, stats::OnlineSummary{});
    weights_.assign(workers_, 1.0);
  }
}

void AdaptiveWeightedFactoring::advance_timestep() {
  if (variant_ != AwfVariant::kTimestep) return;
  refresh_weights();
  measured_.assign(workers_, stats::OnlineSummary{});
}

std::vector<double> AdaptiveWeightedFactoring::current_weights() const { return weights_; }

double AdaptiveWeightedFactoring::estimated_iteration_time(std::size_t worker) const {
  if (worker >= workers_) throw std::out_of_range("AWF::estimated_iteration_time: bad worker index");
  const stats::OnlineSummary& own = measured_[worker];
  return (!own.empty() && own.mean() > 0.0) ? own.mean() : 0.0;
}

// -------------------------------------------------------------------- AF --

AdaptiveFactoring::AdaptiveFactoring(const TechniqueParams& params)
    : workers_(params.workers),
      bootstrap_weights_(normalized_weights(params)),
      measured_(params.workers) {
  validate_params(params);
}

double AdaptiveFactoring::chunk_for_target(double mu, double sigma, double target) {
  if (!(mu > 0.0)) throw std::invalid_argument("chunk_for_target: mu must be > 0");
  if (sigma < 0.0) throw std::invalid_argument("chunk_for_target: sigma must be >= 0");
  if (target <= 0.0) return 0.0;
  const double s2 = sigma * sigma;
  return (s2 + 2.0 * mu * target - sigma * std::sqrt(s2 + 4.0 * mu * target)) /
         (2.0 * mu * mu);
}

std::int64_t AdaptiveFactoring::next_chunk(const SchedulingContext& ctx) {
  const auto p = static_cast<double>(workers_);
  const double batch = std::max(1.0, static_cast<double>(ctx.remaining_iterations) * 0.5);

  const stats::OnlineSummary& own = measured_.at(ctx.worker);
  if (own.empty() || own.mean() <= 0.0) {
    // No measurements yet: AF's only runtime information is the current
    // system state, so the bootstrap chunk is the factoring share scaled by
    // the worker's observed availability (params.weights, filled by the
    // executor). An unloaded-uniform group degrades to the plain R/(2P).
    const double share = (batch / p) * bootstrap_weights_.at(ctx.worker);
    const std::int64_t bootstrap =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(share)));
    return clamp_chunk(bootstrap, ctx.remaining_iterations);
  }

  // Collect (mu, sigma) for all workers with data; others contribute the
  // bootstrap share to the batch budget.
  struct Estimate {
    double mu;
    double sigma;
  };
  std::vector<Estimate> estimates;
  estimates.reserve(workers_);
  double unknown_share = 0.0;
  for (const auto& summary : measured_) {
    if (!summary.empty() && summary.mean() > 0.0) {
      estimates.push_back({summary.mean(), summary.stddev()});
    } else {
      unknown_share += batch / p;
    }
  }
  const double budget = std::max(1.0, batch - unknown_share);

  // Find target time T with sum_j K_j(T) = budget (monotone in T).
  auto total_chunks = [&](double target) {
    double sum = 0.0;
    for (const Estimate& e : estimates) sum += chunk_for_target(e.mu, e.sigma, target);
    return sum;
  };
  double hi = own.mean() * budget + own.stddev() * std::sqrt(budget) + 1.0;
  for (int i = 0; i < 128 && total_chunks(hi) < budget; ++i) hi *= 2.0;
  double lo = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (total_chunks(mid) < budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double target = 0.5 * (lo + hi);
  const auto chunk = static_cast<std::int64_t>(
      std::llround(chunk_for_target(own.mean(), own.stddev(), target)));
  return clamp_chunk(chunk, ctx.remaining_iterations);
}

void AdaptiveFactoring::record(const ChunkResult& result) {
  if (result.worker >= workers_) throw std::out_of_range("AF::record: bad worker index");
  if (result.iterations <= 0 || result.execution_time <= 0.0) return;
  // One observation per chunk: the chunk-mean iteration time. The spread of
  // these observations across chunks is exactly the availability-driven
  // variability AF must react to.
  measured_[result.worker].add(result.execution_time / static_cast<double>(result.iterations));
}

void AdaptiveFactoring::reset() { measured_.assign(workers_, stats::OnlineSummary{}); }

double AdaptiveFactoring::estimated_iteration_time(std::size_t worker) const {
  if (worker >= workers_) throw std::out_of_range("AF::estimated_iteration_time: bad worker index");
  const stats::OnlineSummary& own = measured_[worker];
  return (!own.empty() && own.mean() > 0.0) ? own.mean() : 0.0;
}

}  // namespace cdsf::dls
