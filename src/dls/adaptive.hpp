// Adaptive weighted factoring (AWF) and its variants.
//
// AWF keeps the weighted-factoring chunk rule but *learns* the worker
// weights from runtime measurements instead of fixing them a priori
// (Cariño & Banicescu 2008). A worker's weight is proportional to its
// measured processing rate (inverse mean iteration time). The variants
// differ in WHEN weights are refreshed and WHICH timing they use:
//
//   AWF    — weights refresh only between timesteps of a time-stepping
//            application (advance_timestep()); within one loop execution it
//            behaves like WF with the current weights.
//   AWF-B  — weights refresh at every batch boundary; timing = chunk
//            execution time.
//   AWF-C  — weights refresh at every chunk request (no batches); timing =
//            chunk execution time.
//   AWF-D  — like AWF-B but timing includes the scheduling overhead
//            (total chunk time).
//   AWF-E  — like AWF-C but timing includes the scheduling overhead.
#pragma once

#include "dls/technique.hpp"
#include "stats/summary.hpp"

namespace cdsf::dls {

/// Which AWF flavor an AdaptiveWeightedFactoring instance implements.
enum class AwfVariant { kTimestep, kBatch, kChunk, kBatchTotal, kChunkTotal };

[[nodiscard]] std::string awf_variant_name(AwfVariant variant);

class AdaptiveWeightedFactoring final : public Technique {
 public:
  AdaptiveWeightedFactoring(const TechniqueParams& params, AwfVariant variant);

  [[nodiscard]] std::string name() const override { return awf_variant_name(variant_); }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void record(const ChunkResult& result) override;
  void reset() override;
  [[nodiscard]] double estimated_iteration_time(std::size_t worker) const override;

  /// AWF (timestep variant) only: folds this execution's measurements into
  /// the weights used by the next execution. No-op for other variants.
  void advance_timestep();

  /// Current normalized weights (mean 1) — exposed for tests.
  [[nodiscard]] std::vector<double> current_weights() const;

 private:
  void refresh_weights();
  [[nodiscard]] std::int64_t weighted_chunk(const SchedulingContext& ctx, std::int64_t pool);

  AwfVariant variant_;
  std::size_t workers_;
  std::vector<double> weights_;                  // normalized, mean 1
  std::vector<stats::OnlineSummary> measured_;   // per-worker iteration times
  std::int64_t batch_remaining_ = 0;
  std::int64_t batch_size_ = 0;
};

/// AF — adaptive factoring (Banicescu & Liu 2000).
///
/// For each worker j, runtime estimates (mu_j, sigma_j) of its iteration
/// time are maintained. A chunk for worker j is the K solving
///     K * mu_j + sigma_j * sqrt(K) = T,
/// i.e. the largest chunk whose one-standard-deviation pessimistic
/// completion time stays within the batch target T; closed form
///     K_j(T) = (sigma^2 + 2 mu T - sigma sqrt(sigma^2 + 4 mu T)) / (2 mu^2).
/// T is set (by monotone bisection) so that one virtual batch of chunks
/// covers half of the remaining iterations: sum_j K_j(T) = R / 2 — the
/// factoring rule. Workers with no measurements yet receive the factoring
/// bootstrap chunk R / (2P) scaled by their availability observed at
/// dispatch time (the executor-provided weights): AF is defined by its use
/// of runtime system information, and before any chunk completes the
/// current availability is the only runtime information there is.
class AdaptiveFactoring final : public Technique {
 public:
  explicit AdaptiveFactoring(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "AF"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void record(const ChunkResult& result) override;
  void reset() override;
  [[nodiscard]] double estimated_iteration_time(std::size_t worker) const override;

  /// K_j(T) closed form above — exposed for unit tests.
  [[nodiscard]] static double chunk_for_target(double mu, double sigma, double target);

 private:
  std::size_t workers_;
  std::vector<double> bootstrap_weights_;       // availability-seeded, mean 1
  std::vector<stats::OnlineSummary> measured_;  // per-worker chunk-mean iteration times
};

}  // namespace cdsf::dls
