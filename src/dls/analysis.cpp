#include "dls/analysis.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

namespace cdsf::dls {

ScheduleAnalysis analyze_schedule(Technique& technique, std::int64_t total_iterations,
                                  std::size_t workers) {
  if (workers == 0) throw std::invalid_argument("analyze_schedule: workers must be >= 1");
  if (total_iterations < 1) {
    throw std::invalid_argument("analyze_schedule: total_iterations must be >= 1");
  }
  technique.reset();

  ScheduleAnalysis analysis;
  analysis.total_iterations = total_iterations;
  analysis.smallest_chunk = std::numeric_limits<std::int64_t>::max();

  std::int64_t remaining = total_iterations;
  std::vector<bool> retired(workers, false);
  std::vector<std::uint64_t> per_worker(workers, 0);
  std::size_t retired_count = 0;
  std::size_t worker = 0;
  std::uint64_t guard = 0;
  const auto guard_limit =
      static_cast<std::uint64_t>(total_iterations) * workers + 1000 * workers;

  while (remaining > 0 && retired_count < workers) {
    if (++guard > guard_limit) {
      throw std::runtime_error("analyze_schedule: technique failed to drain the pool");
    }
    if (!retired[worker]) {
      const std::int64_t chunk =
          technique.next_chunk(SchedulingContext{remaining, worker, 0.0});
      if (chunk <= 0) {
        retired[worker] = true;
        ++retired_count;
      } else {
        const std::int64_t size = std::min(chunk, remaining);
        analysis.chunks.push_back({worker, size, remaining});
        remaining -= size;
        per_worker[worker] += 1;
        // Uniform feedback: one time unit per iteration.
        technique.record(ChunkResult{worker, size, static_cast<double>(size),
                                     static_cast<double>(size)});
      }
    }
    worker = (worker + 1) % workers;
  }
  if (remaining > 0) {
    throw std::runtime_error("analyze_schedule: every worker retired with work remaining");
  }

  std::set<std::int64_t> sizes;
  std::int64_t sum = 0;
  for (const ScheduledChunk& chunk : analysis.chunks) {
    analysis.largest_chunk = std::max(analysis.largest_chunk, chunk.size);
    analysis.smallest_chunk = std::min(analysis.smallest_chunk, chunk.size);
    sizes.insert(chunk.size);
    sum += chunk.size;
  }
  analysis.chunk_count = analysis.chunks.size();
  analysis.mean_chunk =
      analysis.chunk_count > 0
          ? static_cast<double>(sum) / static_cast<double>(analysis.chunk_count)
          : 0.0;
  analysis.distinct_sizes = sizes.size();
  const auto [min_it, max_it] = std::minmax_element(per_worker.begin(), per_worker.end());
  analysis.worker_chunk_imbalance = *max_it - *min_it;
  if (analysis.chunk_count == 0) analysis.smallest_chunk = 0;
  return analysis;
}

ScheduleAnalysis analyze_schedule(TechniqueId id, std::int64_t total_iterations,
                                  std::size_t workers) {
  TechniqueParams params;
  params.workers = workers;
  params.total_iterations = total_iterations;
  const auto technique = make_technique(id, params);
  return analyze_schedule(*technique, total_iterations, workers);
}

}  // namespace cdsf::dls
