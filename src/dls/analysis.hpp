// Offline chunk-schedule analysis: replay a technique against a
// deterministic request pattern (no simulator, no randomness) to obtain
// the exact chunk sequence it would produce, plus summary statistics.
//
// Useful for: understanding a technique before running it ("schedule
// preview"), regression-testing chunk rules against their published
// closed forms, and estimating scheduling overhead (chunk count) without
// a simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "dls/registry.hpp"
#include "dls/technique.hpp"

namespace cdsf::dls {

/// One dispatched chunk of the replay.
struct ScheduledChunk {
  std::size_t worker = 0;
  std::int64_t size = 0;
  std::int64_t remaining_before = 0;
};

/// Summary of a replayed schedule.
struct ScheduleAnalysis {
  std::vector<ScheduledChunk> chunks;
  std::int64_t total_iterations = 0;
  std::size_t chunk_count = 0;
  std::int64_t largest_chunk = 0;
  std::int64_t smallest_chunk = 0;
  double mean_chunk = 0.0;
  /// Number of distinct chunk SIZES (a proxy for batch structure: FAC on a
  /// power-of-two loop shows ~log2(N/P) sizes, SS shows 1).
  std::size_t distinct_sizes = 0;
  /// Chunks per worker (max - min): dispatch fairness of the replay.
  std::uint64_t worker_chunk_imbalance = 0;
};

/// Replays `technique` with `workers` requesting round-robin until the pool
/// of `total_iterations` drains (or every worker is retired). Feedback is
/// synthesized as if every iteration took exactly one time unit, so
/// adaptive techniques see perfectly uniform workers. Throws
/// std::invalid_argument on a zero worker count or iteration count, and
/// std::runtime_error if the technique fails to drain the pool.
[[nodiscard]] ScheduleAnalysis analyze_schedule(Technique& technique,
                                                std::int64_t total_iterations,
                                                std::size_t workers);

/// Convenience: build the technique from the registry with uniform
/// single-speed workers and replay it.
[[nodiscard]] ScheduleAnalysis analyze_schedule(TechniqueId id, std::int64_t total_iterations,
                                                std::size_t workers);

}  // namespace cdsf::dls
