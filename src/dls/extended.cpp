#include "dls/extended.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cdsf::dls {

// ------------------------------------------------------------------ TFSS --

TrapezoidFactoring::TrapezoidFactoring(const TechniqueParams& params)
    : workers_(params.workers) {
  validate_params(params);
  const auto n = static_cast<double>(params.total_iterations);
  const auto p = static_cast<double>(params.workers);
  tss_first_ = std::max(1.0, std::ceil(n / (2.0 * p)));
  constexpr double last = 1.0;
  const double steps = std::max(2.0, std::ceil(2.0 * n / (tss_first_ + last)));
  tss_decrement_ = (tss_first_ - last) / (steps - 1.0);
  tss_current_ = tss_first_;
}

std::int64_t TrapezoidFactoring::next_chunk(const SchedulingContext& ctx) {
  if (batch_remaining_ <= 0) {
    // Average the next P TSS chunks into one batch plateau.
    double sum = 0.0;
    for (std::size_t i = 0; i < workers_; ++i) {
      sum += tss_current_;
      tss_current_ = std::max(1.0, tss_current_ - tss_decrement_);
    }
    batch_chunk_ = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(sum / static_cast<double>(workers_))));
    batch_remaining_ = batch_chunk_ * static_cast<std::int64_t>(workers_);
  }
  const std::int64_t chunk = std::min(batch_chunk_, batch_remaining_);
  batch_remaining_ -= chunk;
  return clamp_chunk(chunk, ctx.remaining_iterations);
}

void TrapezoidFactoring::reset() {
  tss_current_ = tss_first_;
  batch_remaining_ = 0;
  batch_chunk_ = 0;
}

// ------------------------------------------------------------------- RND --

RandomChunking::RandomChunking(const TechniqueParams& params)
    : seed_(params.seed), rng_(params.seed) {
  validate_params(params);
  const auto n = static_cast<double>(params.total_iterations);
  const auto p = static_cast<double>(params.workers);
  lo_ = std::max<std::int64_t>(1, static_cast<std::int64_t>(std::floor(n / (100.0 * p))));
  hi_ = std::max<std::int64_t>(lo_, static_cast<std::int64_t>(std::ceil(n / (2.0 * p))));
}

std::int64_t RandomChunking::next_chunk(const SchedulingContext& ctx) {
  const std::int64_t chunk = rng_.uniform_int(lo_, hi_);
  return clamp_chunk(chunk, ctx.remaining_iterations);
}

void RandomChunking::reset() { rng_ = util::RngStream(seed_); }

// ------------------------------------------------------------------- PLS --

PerformanceLoopScheduling::PerformanceLoopScheduling(const TechniqueParams& params)
    : workers_(params.workers), static_served_(params.workers, false) {
  validate_params(params);
  if (!(params.static_workload_ratio >= 0.0 && params.static_workload_ratio <= 1.0)) {
    throw std::invalid_argument("PLS: static_workload_ratio must be in [0, 1]");
  }
  const double share = params.static_workload_ratio *
                       static_cast<double>(params.total_iterations) /
                       static_cast<double>(params.workers);
  static_chunk_ = static_cast<std::int64_t>(std::floor(share));
}

std::int64_t PerformanceLoopScheduling::next_chunk(const SchedulingContext& ctx) {
  if (ctx.worker >= workers_) throw std::out_of_range("PLS: bad worker index");
  if (!static_served_[ctx.worker]) {
    static_served_[ctx.worker] = true;
    if (static_chunk_ >= 1) return clamp_chunk(static_chunk_, ctx.remaining_iterations);
    // SWR too small for a static share: fall through to the dynamic rule.
  }
  const auto p = static_cast<std::int64_t>(workers_);
  return clamp_chunk((ctx.remaining_iterations + p - 1) / p, ctx.remaining_iterations);
}

void PerformanceLoopScheduling::reset() { static_served_.assign(workers_, false); }

}  // namespace cdsf::dls
