// Additional DLS techniques from the authors' broader scheduling suite
// (the DLS4LB / LB4MPI lineage maintained by the same research groups):
//
//   TFSS — trapezoid factoring self scheduling: batches as in factoring,
//          but within a batch every chunk equals the AVERAGE of the next P
//          TSS chunks — TSS's linear decrease smoothed into FAC-style
//          batch plateaus.
//   RND  — random: each chunk drawn uniformly from
//          [N / (100 P), N / (2 P)] (clamped to >= 1). A control technique:
//          any "intelligent" rule should beat it.
//   PLS  — performance-based loop scheduling: a static fraction (the
//          static workload ratio, SWR) is dealt out in one equal chunk per
//          worker up front; the remainder is self-scheduled with the GSS
//          rule. SWR = 0 degrades to GSS, SWR = 1 to STATIC.
#pragma once

#include "dls/technique.hpp"
#include "util/rng.hpp"

namespace cdsf::dls {

/// TFSS — factoring batches of averaged TSS chunks.
class TrapezoidFactoring final : public Technique {
 public:
  explicit TrapezoidFactoring(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "TFSS"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override;

 private:
  std::size_t workers_;
  double tss_first_;
  double tss_decrement_;
  double tss_current_ = 0.0;
  std::int64_t batch_remaining_ = 0;
  std::int64_t batch_chunk_ = 0;
};

/// RND — uniformly random chunk sizes (control technique).
class RandomChunking final : public Technique {
 public:
  explicit RandomChunking(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "RND"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override;

  [[nodiscard]] std::int64_t lower_bound() const noexcept { return lo_; }
  [[nodiscard]] std::int64_t upper_bound() const noexcept { return hi_; }

 private:
  std::int64_t lo_;
  std::int64_t hi_;
  std::uint64_t seed_;
  util::RngStream rng_;
};

/// PLS — static prefix (SWR share per worker once) + GSS remainder.
class PerformanceLoopScheduling final : public Technique {
 public:
  explicit PerformanceLoopScheduling(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "PLS"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override;

  [[nodiscard]] std::int64_t static_chunk() const noexcept { return static_chunk_; }

 private:
  std::size_t workers_;
  std::int64_t static_chunk_;
  std::vector<bool> static_served_;
};

}  // namespace cdsf::dls
