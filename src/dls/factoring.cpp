#include "dls/factoring.hpp"

#include <cmath>

namespace cdsf::dls {

namespace {

/// Probabilistic batch fraction of original factoring: the batch is R/x
/// with x = 1 + b^2 + b sqrt(b^2 + 2), b = P sigma / (2 sqrt(R) mu).
/// Evaluated at R = N for a single representative fraction (the original
/// algorithm re-evaluates per batch; the dominant behaviour is captured by
/// the first batch and the fraction is monotone toward 1/2 as b -> 0).
double probabilistic_fraction(double n, double p, double mu, double sigma) {
  const double b = p * sigma / (2.0 * std::sqrt(n) * mu);
  const double x = 1.0 + b * b + b * std::sqrt(b * b + 2.0);
  return 1.0 / x;
}

}  // namespace

// ------------------------------------------------------------------- FAC --

Factoring::Factoring(const TechniqueParams& params) : workers_(params.workers) {
  validate_params(params);
  if (params.probabilistic_factoring && params.mean_iteration_time > 0.0 &&
      params.stddev_iteration_time > 0.0) {
    batch_fraction_ = probabilistic_fraction(static_cast<double>(params.total_iterations),
                                             static_cast<double>(params.workers),
                                             params.mean_iteration_time,
                                             params.stddev_iteration_time);
  } else {
    batch_fraction_ = 0.5;  // FAC2
  }
}

std::int64_t Factoring::next_chunk(const SchedulingContext& ctx) {
  if (batch_remaining_ <= 0) {
    const double batch = std::ceil(static_cast<double>(ctx.remaining_iterations) * batch_fraction_);
    batch_remaining_ = std::max<std::int64_t>(1, static_cast<std::int64_t>(batch));
    batch_chunk_ = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(batch / static_cast<double>(workers_))));
  }
  const std::int64_t chunk = std::min(batch_chunk_, batch_remaining_);
  batch_remaining_ -= chunk;
  return clamp_chunk(chunk, ctx.remaining_iterations);
}

void Factoring::reset() {
  batch_remaining_ = 0;
  batch_chunk_ = 0;
}

// -------------------------------------------------------------------- WF --

WeightedFactoring::WeightedFactoring(const TechniqueParams& params)
    : workers_(params.workers), weights_(normalized_weights(params)) {
  validate_params(params);
}

std::int64_t WeightedFactoring::next_chunk(const SchedulingContext& ctx) {
  if (batch_remaining_ <= 0) {
    batch_size_ = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(static_cast<double>(ctx.remaining_iterations) * 0.5)));
    batch_remaining_ = batch_size_;
  }
  // Worker w's chunk within a batch: its weighted share of the batch.
  const double share = static_cast<double>(batch_size_) * weights_.at(ctx.worker) /
                       static_cast<double>(workers_);
  auto chunk = static_cast<std::int64_t>(std::llround(share));
  chunk = std::max<std::int64_t>(1, std::min(chunk, batch_remaining_));
  batch_remaining_ -= chunk;
  return clamp_chunk(chunk, ctx.remaining_iterations);
}

void WeightedFactoring::reset() {
  batch_remaining_ = 0;
  batch_size_ = 0;
}

}  // namespace cdsf::dls
