// Factoring-family techniques (batched, non-adaptive):
//
//   FAC — factoring (Hummel, Schonberg & Flynn 1992). Iterations are
//         scheduled in batches; within a batch every chunk has the same
//         size batch/P. With a-priori iteration statistics (mu, sigma) the
//         batch fraction comes from the probabilistic rule of the original
//         paper; without them the practical factor-2 rule (each batch is
//         half the remaining work, "FAC2") is used — that is the variant
//         the authors' experimental studies run, and what the CDSF paper's
//         Figures label "FAC".
//
//   WF  — weighted factoring (Hummel et al. 1996 / Banicescu & Cariño
//         2005). Batch sizes follow factoring, but each worker's chunk is
//         scaled by a fixed relative weight (its measured relative power —
//         here: the initial availability of the processor). Weights never
//         change during execution; the adaptive AWF* variants lift that.
#pragma once

#include "dls/technique.hpp"

namespace cdsf::dls {

/// FAC — equal chunks within a batch.
class Factoring final : public Technique {
 public:
  explicit Factoring(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "FAC"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override;

  /// Batch fraction 1/x currently in force (0.5 for FAC2).
  [[nodiscard]] double batch_fraction() const noexcept { return batch_fraction_; }

 private:
  std::size_t workers_;
  double batch_fraction_;
  std::int64_t batch_remaining_ = 0;
  std::int64_t batch_chunk_ = 0;
};

/// WF — factor-2 batches, fixed per-worker weighted chunks.
class WeightedFactoring final : public Technique {
 public:
  explicit WeightedFactoring(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "WF"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override;

  [[nodiscard]] const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::size_t workers_;
  std::vector<double> weights_;  // normalized to mean 1
  std::int64_t batch_remaining_ = 0;
  std::int64_t batch_size_ = 0;
};

}  // namespace cdsf::dls
