#include "dls/nonadaptive.hpp"

#include <cmath>
#include <stdexcept>

namespace cdsf::dls {

// ---------------------------------------------------------------- STATIC --

StaticScheduling::StaticScheduling(const TechniqueParams& params)
    : workers_(params.workers), total_(params.total_iterations), issued_(params.workers, false) {
  validate_params(params);
}

std::int64_t StaticScheduling::next_chunk(const SchedulingContext& ctx) {
  if (ctx.worker >= workers_) throw std::out_of_range("StaticScheduling: bad worker index");
  if (issued_[ctx.worker]) return 0;
  issued_[ctx.worker] = true;
  // Equal shares; the first (total % workers) workers absorb the remainder.
  const auto workers = static_cast<std::int64_t>(workers_);
  std::int64_t share = total_ / workers;
  if (static_cast<std::int64_t>(ctx.worker) < total_ % workers) ++share;
  if (share == 0) return 0;
  return std::min(share, ctx.remaining_iterations);
}

void StaticScheduling::reset() { issued_.assign(workers_, false); }

// -------------------------------------------------------------------- SS --

SelfScheduling::SelfScheduling(const TechniqueParams& params) { validate_params(params); }

std::int64_t SelfScheduling::next_chunk(const SchedulingContext& ctx) {
  return clamp_chunk(1, ctx.remaining_iterations);
}

// ------------------------------------------------------------------- FSC --

FixedSizeChunking::FixedSizeChunking(const TechniqueParams& params) {
  validate_params(params);
  const auto n = static_cast<double>(params.total_iterations);
  const auto p = static_cast<double>(params.workers);
  const double sigma = params.stddev_iteration_time;
  const double h = params.scheduling_overhead;
  if (sigma > 0.0 && h > 0.0 && params.workers > 1) {
    // Kruskal & Weiss: K_opt = (sqrt(2) N h / (sigma P sqrt(log P)))^(2/3).
    const double k = std::pow(std::sqrt(2.0) * n * h / (sigma * p * std::sqrt(std::log(p))),
                              2.0 / 3.0);
    chunk_ = std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(k)));
  } else {
    // No usable hints: fall back to the factoring first-batch chunk.
    chunk_ = std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(n / (2.0 * p))));
  }
}

std::int64_t FixedSizeChunking::next_chunk(const SchedulingContext& ctx) {
  return clamp_chunk(chunk_, ctx.remaining_iterations);
}

// ------------------------------------------------------------------- GSS --

GuidedSelfScheduling::GuidedSelfScheduling(const TechniqueParams& params)
    : workers_(params.workers) {
  validate_params(params);
}

std::int64_t GuidedSelfScheduling::next_chunk(const SchedulingContext& ctx) {
  const auto p = static_cast<std::int64_t>(workers_);
  const std::int64_t chunk = (ctx.remaining_iterations + p - 1) / p;
  return clamp_chunk(chunk, ctx.remaining_iterations);
}

// ------------------------------------------------------------------- TSS --

TrapezoidSelfScheduling::TrapezoidSelfScheduling(const TechniqueParams& params) {
  validate_params(params);
  const auto n = static_cast<double>(params.total_iterations);
  const auto p = static_cast<double>(params.workers);
  first_ = std::max(1.0, std::ceil(n / (2.0 * p)));
  constexpr double last = 1.0;
  const double steps = std::max(2.0, std::ceil(2.0 * n / (first_ + last)));
  decrement_ = (first_ - last) / (steps - 1.0);
  current_ = first_;
}

std::int64_t TrapezoidSelfScheduling::next_chunk(const SchedulingContext& ctx) {
  const auto chunk = static_cast<std::int64_t>(std::llround(current_));
  current_ = std::max(1.0, current_ - decrement_);
  return clamp_chunk(chunk, ctx.remaining_iterations);
}

void TrapezoidSelfScheduling::reset() { current_ = first_; }

}  // namespace cdsf::dls
