// Non-adaptive DLS techniques: chunk sizes are a function of the iteration
// pool only (plus a-priori statistics), never of runtime measurements.
//
//   STATIC  — straightforward parallelization: one equal share per worker,
//             assigned in a single step (the paper's naive RAS).
//   SS      — pure self scheduling: one iteration per request.
//   FSC     — fixed size chunking (Kruskal & Weiss 1985): the fixed chunk
//             that optimally trades scheduling overhead against imbalance.
//   GSS     — guided self scheduling (Polychronopoulos & Kuck 1987):
//             chunk = ceil(remaining / workers).
//   TSS     — trapezoid self scheduling (Tzen & Ni 1993): chunk sizes
//             decrease linearly from N/(2P) to 1.
#pragma once

#include "dls/technique.hpp"

namespace cdsf::dls {

/// STATIC: worker w receives ceil-ish equal share exactly once.
class StaticScheduling final : public Technique {
 public:
  explicit StaticScheduling(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "STATIC"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override;

 private:
  std::size_t workers_;
  std::int64_t total_;
  std::vector<bool> issued_;
};

/// SS: chunk size 1.
class SelfScheduling final : public Technique {
 public:
  explicit SelfScheduling(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "SS"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override {}
};

/// FSC: fixed chunk K = (sqrt(2) N h / (sigma P sqrt(log P)))^(2/3).
/// Falls back to N/(2P) when sigma or h hints are missing (0), matching the
/// common practice of seeding FSC with the factoring first-batch size.
class FixedSizeChunking final : public Technique {
 public:
  explicit FixedSizeChunking(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "FSC"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override {}

  [[nodiscard]] std::int64_t chunk_size() const noexcept { return chunk_; }

 private:
  std::int64_t chunk_;
};

/// GSS: chunk = ceil(remaining / workers).
class GuidedSelfScheduling final : public Technique {
 public:
  explicit GuidedSelfScheduling(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "GSS"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override {}

 private:
  std::size_t workers_;
};

/// TSS: linearly decreasing chunks from f = ceil(N / (2P)) to l = 1 over
/// S = ceil(2N / (f + l)) dispatches.
class TrapezoidSelfScheduling final : public Technique {
 public:
  explicit TrapezoidSelfScheduling(const TechniqueParams& params);

  [[nodiscard]] std::string name() const override { return "TSS"; }
  [[nodiscard]] std::int64_t next_chunk(const SchedulingContext& ctx) override;
  void reset() override;

 private:
  double first_;
  double decrement_;
  double current_;
};

}  // namespace cdsf::dls
