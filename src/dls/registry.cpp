#include "dls/registry.hpp"

#include <stdexcept>

#include "dls/adaptive.hpp"
#include "dls/extended.hpp"
#include "dls/factoring.hpp"
#include "dls/nonadaptive.hpp"

namespace cdsf::dls {

std::string technique_name(TechniqueId id) {
  switch (id) {
    case TechniqueId::kStatic: return "STATIC";
    case TechniqueId::kSS: return "SS";
    case TechniqueId::kFSC: return "FSC";
    case TechniqueId::kGSS: return "GSS";
    case TechniqueId::kTSS: return "TSS";
    case TechniqueId::kFAC: return "FAC";
    case TechniqueId::kWF: return "WF";
    case TechniqueId::kAWF: return "AWF";
    case TechniqueId::kAWF_B: return "AWF-B";
    case TechniqueId::kAWF_C: return "AWF-C";
    case TechniqueId::kAWF_D: return "AWF-D";
    case TechniqueId::kAWF_E: return "AWF-E";
    case TechniqueId::kAF: return "AF";
    case TechniqueId::kTFSS: return "TFSS";
    case TechniqueId::kRND: return "RND";
    case TechniqueId::kPLS: return "PLS";
  }
  throw std::logic_error("technique_name: unknown id");
}

TechniqueId technique_from_name(const std::string& name) {
  for (TechniqueId id : all_techniques()) {
    if (technique_name(id) == name) return id;
  }
  throw std::invalid_argument("technique_from_name: unknown technique '" + name + "'");
}

const std::vector<TechniqueId>& all_techniques() {
  static const std::vector<TechniqueId> kAll = {
      TechniqueId::kStatic, TechniqueId::kSS,    TechniqueId::kFSC,   TechniqueId::kGSS,
      TechniqueId::kTSS,    TechniqueId::kFAC,   TechniqueId::kWF,    TechniqueId::kAWF,
      TechniqueId::kAWF_B,  TechniqueId::kAWF_C, TechniqueId::kAWF_D, TechniqueId::kAWF_E,
      TechniqueId::kAF,     TechniqueId::kTFSS,  TechniqueId::kRND,   TechniqueId::kPLS,
  };
  return kAll;
}

const std::vector<TechniqueId>& paper_robust_set() {
  static const std::vector<TechniqueId> kSet = {
      TechniqueId::kFAC,
      TechniqueId::kWF,
      TechniqueId::kAWF_B,
      TechniqueId::kAF,
  };
  return kSet;
}

bool is_adaptive(TechniqueId id) {
  switch (id) {
    case TechniqueId::kAWF:
    case TechniqueId::kAWF_B:
    case TechniqueId::kAWF_C:
    case TechniqueId::kAWF_D:
    case TechniqueId::kAWF_E:
    case TechniqueId::kAF:
      return true;
    default:
      return false;
  }
}

std::unique_ptr<Technique> make_technique(TechniqueId id, const TechniqueParams& params) {
  switch (id) {
    case TechniqueId::kStatic: return std::make_unique<StaticScheduling>(params);
    case TechniqueId::kSS: return std::make_unique<SelfScheduling>(params);
    case TechniqueId::kFSC: return std::make_unique<FixedSizeChunking>(params);
    case TechniqueId::kGSS: return std::make_unique<GuidedSelfScheduling>(params);
    case TechniqueId::kTSS: return std::make_unique<TrapezoidSelfScheduling>(params);
    case TechniqueId::kFAC: return std::make_unique<Factoring>(params);
    case TechniqueId::kWF: return std::make_unique<WeightedFactoring>(params);
    case TechniqueId::kAWF:
      return std::make_unique<AdaptiveWeightedFactoring>(params, AwfVariant::kTimestep);
    case TechniqueId::kAWF_B:
      return std::make_unique<AdaptiveWeightedFactoring>(params, AwfVariant::kBatch);
    case TechniqueId::kAWF_C:
      return std::make_unique<AdaptiveWeightedFactoring>(params, AwfVariant::kChunk);
    case TechniqueId::kAWF_D:
      return std::make_unique<AdaptiveWeightedFactoring>(params, AwfVariant::kBatchTotal);
    case TechniqueId::kAWF_E:
      return std::make_unique<AdaptiveWeightedFactoring>(params, AwfVariant::kChunkTotal);
    case TechniqueId::kAF: return std::make_unique<AdaptiveFactoring>(params);
    case TechniqueId::kTFSS: return std::make_unique<TrapezoidFactoring>(params);
    case TechniqueId::kRND: return std::make_unique<RandomChunking>(params);
    case TechniqueId::kPLS: return std::make_unique<PerformanceLoopScheduling>(params);
  }
  throw std::logic_error("make_technique: unknown id");
}

}  // namespace cdsf::dls
