// Name-indexed factory over all DLS techniques.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dls/technique.hpp"

namespace cdsf::dls {

/// Every technique the library ships.
enum class TechniqueId {
  kStatic,
  kSS,
  kFSC,
  kGSS,
  kTSS,
  kFAC,
  kWF,
  kAWF,
  kAWF_B,
  kAWF_C,
  kAWF_D,
  kAWF_E,
  kAF,
  kTFSS,
  kRND,
  kPLS,
};

/// Display name ("AWF-B").
[[nodiscard]] std::string technique_name(TechniqueId id);

/// Inverse of technique_name (case-sensitive). Throws std::invalid_argument
/// for unknown names.
[[nodiscard]] TechniqueId technique_from_name(const std::string& name);

/// All ids in declaration order.
[[nodiscard]] const std::vector<TechniqueId>& all_techniques();

/// The paper's Stage II robust set {FAC, WF, AWF-B, AF}.
[[nodiscard]] const std::vector<TechniqueId>& paper_robust_set();

/// True for techniques that adapt to runtime measurements.
[[nodiscard]] bool is_adaptive(TechniqueId id);

/// Instantiates a fresh technique. Throws on invalid params.
[[nodiscard]] std::unique_ptr<Technique> make_technique(TechniqueId id,
                                                        const TechniqueParams& params);

}  // namespace cdsf::dls
