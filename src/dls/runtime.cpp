#include "dls/runtime.hpp"

// cdsf-lint: allow-file(wall-clock)
// This is the real-workload harness: it schedules *actual* computations and
// must measure their true elapsed time, so the monotonic clock is the whole
// point here — nothing in this file feeds the deterministic simulation.

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/parallel.hpp"

namespace cdsf::dls {

double RuntimeResult::imbalance() const {
  double busiest = 0.0;
  double total = 0.0;
  for (const RuntimeWorkerStats& w : workers) {
    busiest = std::max(busiest, w.busy_seconds);
    total += w.busy_seconds;
  }
  if (workers.empty() || total <= 0.0) return 1.0;
  return busiest / (total / static_cast<double>(workers.size()));
}

RuntimeResult run_parallel_loop(std::int64_t total_iterations, Technique& technique,
                                const std::function<void(std::int64_t)>& body,
                                std::size_t threads) {
  if (total_iterations < 1) {
    throw std::invalid_argument("run_parallel_loop: total_iterations must be >= 1");
  }
  threads = std::max<std::size_t>(1, threads);
  technique.reset();

  RuntimeResult result;
  result.workers.assign(threads, RuntimeWorkerStats{});

  // Scheduler state shared across workers; the mutex is the "master".
  std::mutex scheduler_mutex;
  std::int64_t remaining = total_iterations;
  std::int64_t next_index = 0;
  std::vector<std::exception_ptr> errors(threads);

  using Clock = std::chrono::steady_clock;
  const Clock::time_point run_start = Clock::now();

  auto worker_loop = [&](std::size_t w) {
    try {
      while (true) {
        std::int64_t first = 0;
        std::int64_t count = 0;
        {
          const std::lock_guard<std::mutex> lock(scheduler_mutex);
          if (remaining <= 0) break;
          const SchedulingContext ctx{
              remaining, w,
              std::chrono::duration<double>(Clock::now() - run_start).count()};
          std::int64_t chunk = technique.next_chunk(ctx);
          if (chunk <= 0) break;  // technique retired this worker
          chunk = std::min(chunk, remaining);
          first = next_index;
          count = chunk;
          next_index += chunk;
          remaining -= chunk;
        }
        const Clock::time_point chunk_start = Clock::now();
        for (std::int64_t i = first; i < first + count; ++i) body(i);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - chunk_start).count();
        {
          const std::lock_guard<std::mutex> lock(scheduler_mutex);
          technique.record(ChunkResult{w, count, seconds, seconds});
          result.workers[w].chunks += 1;
          result.workers[w].iterations += count;
          result.workers[w].busy_seconds += seconds;
          result.total_chunks += 1;
        }
      }
    } catch (...) {
      errors[w] = std::current_exception();
      // Poison the pool so other workers stop promptly.
      const std::lock_guard<std::mutex> lock(scheduler_mutex);
      remaining = 0;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t w = 1; w < threads; ++w) pool.emplace_back(worker_loop, w);
  worker_loop(0);
  for (std::thread& thread : pool) thread.join();
  result.elapsed_seconds = std::chrono::duration<double>(Clock::now() - run_start).count();

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return result;
}

RuntimeResult run_parallel_loop(std::int64_t total_iterations, TechniqueId technique,
                                const std::function<void(std::int64_t)>& body,
                                std::size_t threads) {
  if (threads == 0) threads = util::default_thread_count();
  TechniqueParams params;
  params.workers = threads;
  params.total_iterations = std::max<std::int64_t>(1, total_iterations);
  const auto instance = make_technique(technique, params);
  return run_parallel_loop(total_iterations, *instance, body, threads);
}

}  // namespace cdsf::dls
