// A real shared-memory DLS runtime: schedule an actual C++ loop body over
// std::threads with any of the library's sixteen techniques — OpenMP's
// schedule(dynamic)/schedule(guided) generalized to the full DLS family,
// including the adaptive ones (the technique receives real measured chunk
// times and adapts live).
//
//   dls::RuntimeResult r = dls::run_parallel_loop(
//       n, dls::TechniqueId::kAF, [&](std::int64_t i) { out[i] = f(i); });
//
// The loop body is invoked exactly once per index in [0, total_iterations),
// concurrently across workers but with disjoint index ranges per chunk.
// The scheduler (technique state, remaining counter) is mutex-protected —
// exactly the master serialization the message-passing simulator models.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dls/registry.hpp"
#include "dls/technique.hpp"

namespace cdsf::dls {

/// Per-worker accounting of a real run.
struct RuntimeWorkerStats {
  std::uint64_t chunks = 0;
  std::int64_t iterations = 0;
  double busy_seconds = 0.0;
};

/// Outcome of a real run.
struct RuntimeResult {
  double elapsed_seconds = 0.0;
  std::uint64_t total_chunks = 0;
  std::vector<RuntimeWorkerStats> workers;

  /// Ratio of the busiest worker's compute time to the mean — 1.0 is
  /// perfect balance.
  [[nodiscard]] double imbalance() const;
};

/// Runs `body(i)` for every i in [0, total_iterations) on `threads` workers
/// with chunk sizes from `technique`. `threads` == 0 uses the hardware
/// concurrency. The body must be safe to call concurrently for distinct
/// indices. Throws std::invalid_argument if total_iterations < 1;
/// exceptions from the body propagate (the first one) after all workers
/// stop.
[[nodiscard]] RuntimeResult run_parallel_loop(std::int64_t total_iterations,
                                              TechniqueId technique,
                                              const std::function<void(std::int64_t)>& body,
                                              std::size_t threads = 0);

/// Variant with explicit params (weights, overrides) and a caller-built
/// technique; the technique is reset() first and fed real measurements.
[[nodiscard]] RuntimeResult run_parallel_loop(std::int64_t total_iterations,
                                              Technique& technique,
                                              const std::function<void(std::int64_t)>& body,
                                              std::size_t threads);

}  // namespace cdsf::dls
