#include "dls/technique.hpp"

#include <algorithm>
#include <stdexcept>

namespace cdsf::dls {

void Technique::record(const ChunkResult&) {}

double Technique::estimated_iteration_time(std::size_t) const { return 0.0; }

std::int64_t clamp_chunk(std::int64_t proposed, std::int64_t remaining) noexcept {
  return std::clamp<std::int64_t>(proposed, 1, remaining);
}

void validate_params(const TechniqueParams& params) {
  if (params.workers == 0) throw std::invalid_argument("TechniqueParams: workers must be >= 1");
  if (params.total_iterations < 1) {
    throw std::invalid_argument("TechniqueParams: total_iterations must be >= 1");
  }
  if (params.mean_iteration_time < 0.0 || params.stddev_iteration_time < 0.0 ||
      params.scheduling_overhead < 0.0) {
    throw std::invalid_argument("TechniqueParams: time hints must be >= 0");
  }
  if (!params.weights.empty() && params.weights.size() != params.workers) {
    throw std::invalid_argument("TechniqueParams: weights size must equal workers");
  }
}

std::vector<double> normalized_weights(const TechniqueParams& params) {
  std::vector<double> weights = params.weights;
  if (weights.empty()) return std::vector<double>(params.workers, 1.0);
  double total = 0.0;
  for (double w : weights) {
    if (!(w > 0.0)) throw std::invalid_argument("normalized_weights: weights must be > 0");
    total += w;
  }
  const double scale = static_cast<double>(params.workers) / total;
  for (double& w : weights) w *= scale;
  return weights;
}

}  // namespace cdsf::dls
