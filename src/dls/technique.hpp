// Dynamic loop scheduling (DLS) techniques as pure chunk-size policies.
//
// A Technique owns no clock and no iterations: the loop executor
// (src/sim/loop_executor.hpp) tracks remaining work, asks the technique how
// many iterations to hand the requesting worker, and feeds completed-chunk
// measurements back. This separation keeps every technique unit-testable
// in isolation and lets the same policy drive both the discrete-event
// simulator and the analytic executors used in property tests.
//
// Implemented techniques (src/dls/*.cpp):
//   non-adaptive: STATIC, SS, FSC, GSS, TSS, FAC (probabilistic and
//                 factor-2 practical variant), WF
//   adaptive:     AWF, AWF-B, AWF-C, AWF-D, AWF-E, AF
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cdsf::dls {

/// Static problem facts every technique is constructed with.
struct TechniqueParams {
  /// Number of workers (processors in the allocated group). Must be >= 1.
  std::size_t workers = 1;
  /// Total parallel iterations of the loop. Must be >= 1.
  std::int64_t total_iterations = 1;
  /// A-priori mean of one iteration's dedicated execution time; 0 if
  /// unknown. Used by FSC and probabilistic FAC; adaptive techniques
  /// measure their own.
  double mean_iteration_time = 0.0;
  /// A-priori stddev of one iteration's time; 0 if unknown.
  double stddev_iteration_time = 0.0;
  /// Per-dispatch scheduling overhead h (same time units); used by FSC.
  double scheduling_overhead = 0.0;
  /// Initial relative worker weights for WF / AWF (empty => uniform).
  /// Values must be positive; they are normalized internally. The loop
  /// executor fills these with each worker's availability observed at
  /// dispatch time 0 — the measurable "relative power" WF weights encode.
  std::vector<double> weights;
  /// When true AND mean/stddev hints are present, FAC uses the original
  /// probabilistic batch rule of Hummel et al.; otherwise FAC uses the
  /// practical factor-2 rule (the variant the CDSF paper's figures run).
  bool probabilistic_factoring = false;
  /// Seed for techniques with internal randomness (RND). Deterministic
  /// default so identical params give identical schedules.
  std::uint64_t seed = 0xD15;
  /// PLS only: fraction of the loop scheduled statically up front (the
  /// "static workload ratio"); the remainder is self-scheduled.
  double static_workload_ratio = 0.5;
};

/// Per-request context supplied by the executor.
struct SchedulingContext {
  /// Iterations not yet dispatched (remaining in the scheduler's pool).
  std::int64_t remaining_iterations = 0;
  /// Index of the requesting worker in [0, workers).
  std::size_t worker = 0;
  /// Current simulation time (informational; no technique may use it to
  /// peek at availability).
  double now = 0.0;
};

/// Feedback after a worker finishes a chunk.
struct ChunkResult {
  std::size_t worker = 0;
  std::int64_t iterations = 0;
  /// Wall-clock time spent executing the chunk (excluding overhead).
  double execution_time = 0.0;
  /// Wall-clock time spent executing the chunk including overhead.
  double total_time = 0.0;
};

/// Abstract chunk-size policy.
class Technique {
 public:
  virtual ~Technique() = default;

  /// Display name, e.g. "AWF-B".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Size of the next chunk for ctx.worker. The executor guarantees
  /// ctx.remaining_iterations >= 1. Returns a value in
  /// [0, ctx.remaining_iterations]; 0 means "nothing for this worker ever
  /// again" (only STATIC uses it — each worker has exactly one share).
  [[nodiscard]] virtual std::int64_t next_chunk(const SchedulingContext& ctx) = 0;

  /// Measurement feedback; default ignores it (non-adaptive techniques).
  /// The executors deliver feedback for COMPLETED chunks only: a chunk
  /// stranded by a worker crash (sim::FailureKind::kCrash/kCrashRecover) is
  /// re-dispatched without a record() call, so adaptive weights (AWF/AF)
  /// are never poisoned by a dead worker's unfinished timing. Likewise,
  /// when speculative re-execution duplicates a chunk, only the WINNING
  /// copy's timing is fed back — the cancelled loser is never record()ed,
  /// so duplicate iterations cannot count twice in adaptive weights.
  virtual void record(const ChunkResult& result);

  /// Runtime estimate of one iteration's wall-clock time on `worker`, or
  /// 0 when the technique has no measurement for it (non-adaptive
  /// techniques, or an adaptive one before the worker's first record()).
  /// The speculation layer uses this to sharpen its a-priori straggler
  /// thresholds with the same mu estimates AWF/AF maintain for weights.
  [[nodiscard]] virtual double estimated_iteration_time(std::size_t worker) const;

  /// Clears all run state so the instance can schedule a fresh loop
  /// execution (adaptive weights persist across timesteps only through
  /// AWF's explicit advance_timestep()).
  virtual void reset() = 0;
};

/// Clamps a proposed chunk to [1, remaining].
[[nodiscard]] std::int64_t clamp_chunk(std::int64_t proposed, std::int64_t remaining) noexcept;

/// Validates common params; throws std::invalid_argument on violation.
void validate_params(const TechniqueParams& params);

/// Normalizes weights to mean 1 (so Sum w = workers); empty input yields
/// uniform weights. Throws std::invalid_argument on non-positive weights or
/// size mismatch with params.workers.
[[nodiscard]] std::vector<double> normalized_weights(const TechniqueParams& params);

}  // namespace cdsf::dls
