#include "lint/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "lint/index.hpp"
#include "lint/layering.hpp"
#include "lint/lockorder.hpp"
#include "lint/registry_check.hpp"
#include "lint/taint.hpp"

namespace cdsf::lint {

namespace {

bool diagnostic_order(const Diagnostic& a, const Diagnostic& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

/// Suppression ids the engine accepts: every rule id plus every pass id.
/// Pass ids are always "known", even when the pass is not selected for this
/// run — an allow(include-layering) must not trip unknown-suppression just
/// because a per-file invocation skipped the project passes.
std::set<std::string, std::less<>> known_suppression_ids(
    const std::vector<std::unique_ptr<Rule>>& rules) {
  std::set<std::string, std::less<>> known;
  for (const auto& rule : rules) known.emplace(rule->id());
  for (const std::string& pass : all_pass_ids()) known.insert(pass);
  return known;
}

/// Routes `found` diagnostics into violations/suppressed using the
/// suppression tables of the scanned files. Diagnostics anchored at files
/// outside the scan set (registry/doc files) cannot be suppressed.
void route_diagnostics(std::vector<Diagnostic> found,
                       const std::map<std::string, const SourceFile*, std::less<>>& by_path,
                       LintResult& result, PassSummary& summary) {
  for (Diagnostic& diagnostic : found) {
    const auto it = by_path.find(diagnostic.file);
    if (it != by_path.end() && it->second->suppressed(diagnostic.rule, diagnostic.line)) {
      diagnostic.suppressed = true;
      ++summary.suppressed_count;
      result.suppressed.push_back(std::move(diagnostic));
    } else {
      ++summary.violation_count;
      result.violations.push_back(std::move(diagnostic));
    }
  }
}

void check_unknown_suppressions(const std::vector<SourceFile>& files,
                                const std::set<std::string, std::less<>>& known,
                                LintResult& result, PassSummary& rules_summary) {
  for (const SourceFile& file : files) {
    // A marker naming a rule nobody registered is a typo that would
    // otherwise rot silently once the rule it meant is renamed.
    for (const Suppression& suppression : file.suppressions()) {
      if (known.count(suppression.rule) == 0) {
        ++rules_summary.violation_count;
        result.violations.push_back(
            {file.path(), suppression.line, "unknown-suppression",
             "suppression names unknown rule '" + suppression.rule + "'", false, kRulesPass});
      }
    }
  }
}

void run_rules_pass(const std::vector<SourceFile>& files,
                    const std::vector<std::unique_ptr<Rule>>& rules,
                    const std::map<std::string, const SourceFile*, std::less<>>& by_path,
                    LintResult& result, PassSummary& summary) {
  summary.ran = true;
  for (const SourceFile& file : files) {
    std::vector<Diagnostic> found;
    for (const auto& rule : rules) rule->check(file, found);
    for (Diagnostic& diagnostic : found) diagnostic.pass = kRulesPass;
    std::sort(found.begin(), found.end(), diagnostic_order);
    route_diagnostics(std::move(found), by_path, result, summary);
  }
}

}  // namespace

const std::vector<std::string>& all_pass_ids() {
  static const std::vector<std::string> kPasses = {kRulesPass, kLayeringPass, kLockOrderPass,
                                                   kTaintPass, kRegistryPass};
  return kPasses;
}

LintResult run_rules(const std::vector<SourceFile>& files,
                     const std::vector<std::unique_ptr<Rule>>& rules) {
  ProjectOptions options;
  options.passes = {kRulesPass};
  return run_project(files, rules, options);
}

LintResult run_project(const std::vector<SourceFile>& files,
                       const std::vector<std::unique_ptr<Rule>>& rules,
                       const ProjectOptions& options) {
  // Resolve the pass selection.
  std::set<std::string, std::less<>> selected;
  if (!options.passes.empty()) {
    for (const std::string& pass : options.passes) {
      if (std::find(all_pass_ids().begin(), all_pass_ids().end(), pass) ==
          all_pass_ids().end()) {
        throw std::runtime_error("unknown pass: " + pass);
      }
      selected.insert(pass);
    }
  } else {
    selected = {kRulesPass, kLockOrderPass, kTaintPass};
    if (!options.layering_path.empty()) selected.insert(kLayeringPass);
    if (!options.registry_path.empty() || !options.metrics_doc_path.empty()) {
      selected.insert(kRegistryPass);
    }
  }
  if (selected.count(kLayeringPass) != 0 && options.layering_path.empty()) {
    throw std::runtime_error("pass include-layering needs --layering <manifest>");
  }
  if (selected.count(kRegistryPass) != 0 && options.registry_path.empty() &&
      options.metrics_doc_path.empty()) {
    throw std::runtime_error("pass registry-sync needs --registry and/or --metrics-doc");
  }
  if (options.want_dot && selected.count(kLayeringPass) == 0) {
    throw std::runtime_error("--graph-dot needs the include-layering pass (--layering)");
  }

  LintResult result;
  result.files_scanned = files.size();
  std::map<std::string, const SourceFile*, std::less<>> by_path;
  for (const SourceFile& file : files) by_path.emplace(file.path(), &file);

  // The project passes share one index; skip the build when none runs.
  const bool needs_index = selected.count(kLayeringPass) != 0 ||
                           selected.count(kLockOrderPass) != 0 ||
                           selected.count(kTaintPass) != 0 ||
                           selected.count(kRegistryPass) != 0;
  ProjectIndex index;
  if (needs_index) index = build_index(files);

  for (const std::string& pass : all_pass_ids()) {
    PassSummary summary;
    summary.name = pass;
    if (selected.count(pass) == 0) {
      result.passes.push_back(std::move(summary));
      continue;
    }
    if (pass == kRulesPass) {
      run_rules_pass(files, rules, by_path, result, summary);
    } else if (pass == kLayeringPass) {
      summary.ran = true;
      const LayeringManifest manifest = LayeringManifest::load(options.layering_path);
      LayeringResult layering = check_layering(index, manifest);
      summary.notes = std::move(layering.notes);
      summary.notes.push_back(std::to_string(layering.edges_checked) +
                              " in-tree include edge(s) checked");
      route_diagnostics(std::move(layering.diagnostics), by_path, result, summary);
      if (options.want_dot) result.layering_dot = layering_dot(index, manifest);
    } else if (pass == kLockOrderPass) {
      summary.ran = true;
      LockOrderResult locks = check_lock_order(index);
      summary.notes.push_back(std::to_string(locks.sites) + " guard site(s), " +
                              std::to_string(locks.edges) + " ordering edge(s)");
      route_diagnostics(std::move(locks.diagnostics), by_path, result, summary);
    } else if (pass == kTaintPass) {
      summary.ran = true;
      TaintResult taint = check_determinism_taint(index);
      summary.notes.push_back(std::to_string(taint.seeds) + " seed function(s), " +
                              std::to_string(taint.tainted) + " tainted function(s)");
      route_diagnostics(std::move(taint.diagnostics), by_path, result, summary);
    } else if (pass == kRegistryPass) {
      summary.ran = true;
      const RegistryInput input =
          load_registry_input(options.registry_path, options.metrics_doc_path);
      RegistryResult registry = check_registry(index, input);
      summary.notes.push_back(std::to_string(registry.code_schemas) + " schema tag(s), " +
                              std::to_string(registry.code_metrics) +
                              " metric name(s) emitted by code");
      route_diagnostics(std::move(registry.diagnostics), by_path, result, summary);
    }
    result.passes.push_back(std::move(summary));
  }

  // Unknown-suppression markers are validated once, against every id.
  check_unknown_suppressions(files, known_suppression_ids(rules), result,
                             result.passes.front());

  std::sort(result.violations.begin(), result.violations.end(), diagnostic_order);
  std::sort(result.suppressed.begin(), result.suppressed.end(), diagnostic_order);
  return result;
}

std::vector<std::string> collect_sources(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path root(path);
  if (!fs::exists(root)) throw std::runtime_error("no such path: " + path);
  std::vector<std::string> sources;
  if (fs::is_regular_file(root)) {
    sources.push_back(root.generic_string());
    return sources;
  }
  for (const fs::directory_entry& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
      sources.push_back(entry.path().generic_string());
    }
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

std::string to_text(const LintResult& result) {
  std::ostringstream out;
  for (const Diagnostic& d : result.violations) {
    out << d.file << ":" << d.line << ": error: [" << d.rule << "] " << d.message << "\n";
  }
  for (const Diagnostic& d : result.suppressed) {
    out << d.file << ":" << d.line << ": note: suppressed [" << d.rule << "] " << d.message
        << "\n";
  }
  for (const PassSummary& pass : result.passes) {
    if (!pass.ran) continue;
    out << "pass " << pass.name << ": " << pass.violation_count << " violation(s), "
        << pass.suppressed_count << " suppressed";
    for (const std::string& note : pass.notes) out << "; " << note;
    out << "\n";
  }
  out << "cdsf_lint: " << result.files_scanned << " file(s), " << result.violations.size()
      << " violation(s), " << result.suppressed.size() << " suppressed\n";
  return out.str();
}

obs::Json to_json(const LintResult& result) {
  auto diagnostics_json = [](const std::vector<Diagnostic>& diagnostics) {
    obs::Json array = obs::Json::array();
    for (const Diagnostic& d : diagnostics) {
      obs::Json entry = obs::Json::object();
      entry.set("file", d.file);
      entry.set("line", d.line);
      entry.set("rule", d.rule);
      entry.set("pass", d.pass);
      entry.set("message", d.message);
      array.push_back(std::move(entry));
    }
    return array;
  };
  obs::Json doc = obs::Json::object();
  doc.set("schema", kLintReportSchema);
  doc.set("files_scanned", result.files_scanned);
  doc.set("violation_count", result.violations.size());
  doc.set("suppression_count", result.suppressed.size());
  doc.set("clean", result.clean());
  obs::Json passes = obs::Json::array();
  for (const PassSummary& pass : result.passes) {
    obs::Json entry = obs::Json::object();
    entry.set("name", pass.name);
    entry.set("ran", pass.ran);
    entry.set("violation_count", pass.violation_count);
    entry.set("suppressed_count", pass.suppressed_count);
    obs::Json notes = obs::Json::array();
    for (const std::string& note : pass.notes) notes.push_back(note);
    entry.set("notes", std::move(notes));
    passes.push_back(std::move(entry));
  }
  doc.set("passes", std::move(passes));
  doc.set("violations", diagnostics_json(result.violations));
  doc.set("suppressions", diagnostics_json(result.suppressed));
  return doc;
}

}  // namespace cdsf::lint
