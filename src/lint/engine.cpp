#include "lint/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <set>
#include <sstream>
#include <stdexcept>

namespace cdsf::lint {

namespace {

bool diagnostic_order(const Diagnostic& a, const Diagnostic& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

}  // namespace

LintResult run_rules(const std::vector<SourceFile>& files,
                     const std::vector<std::unique_ptr<Rule>>& rules) {
  std::set<std::string, std::less<>> known_rules;
  for (const auto& rule : rules) known_rules.emplace(rule->id());

  LintResult result;
  result.files_scanned = files.size();
  for (const SourceFile& file : files) {
    std::vector<Diagnostic> found;
    for (const auto& rule : rules) rule->check(file, found);
    std::sort(found.begin(), found.end(), diagnostic_order);
    for (Diagnostic& diagnostic : found) {
      if (file.suppressed(diagnostic.rule, diagnostic.line)) {
        diagnostic.suppressed = true;
        result.suppressed.push_back(std::move(diagnostic));
      } else {
        result.violations.push_back(std::move(diagnostic));
      }
    }
    // A marker naming a rule nobody registered is a typo that would
    // otherwise rot silently once the rule it meant is renamed.
    for (const Suppression& suppression : file.suppressions()) {
      if (known_rules.count(suppression.rule) == 0) {
        result.violations.push_back(
            {file.path(), suppression.line, "unknown-suppression",
             "suppression names unknown rule '" + suppression.rule + "'", false});
      }
    }
  }
  return result;
}

std::vector<std::string> collect_sources(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path root(path);
  if (!fs::exists(root)) throw std::runtime_error("no such path: " + path);
  std::vector<std::string> sources;
  if (fs::is_regular_file(root)) {
    sources.push_back(root.generic_string());
    return sources;
  }
  for (const fs::directory_entry& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc") {
      sources.push_back(entry.path().generic_string());
    }
  }
  std::sort(sources.begin(), sources.end());
  return sources;
}

std::string to_text(const LintResult& result) {
  std::ostringstream out;
  for (const Diagnostic& d : result.violations) {
    out << d.file << ":" << d.line << ": error: [" << d.rule << "] " << d.message << "\n";
  }
  for (const Diagnostic& d : result.suppressed) {
    out << d.file << ":" << d.line << ": note: suppressed [" << d.rule << "] " << d.message
        << "\n";
  }
  out << "cdsf_lint: " << result.files_scanned << " file(s), " << result.violations.size()
      << " violation(s), " << result.suppressed.size() << " suppressed\n";
  return out.str();
}

obs::Json to_json(const LintResult& result) {
  auto diagnostics_json = [](const std::vector<Diagnostic>& diagnostics) {
    obs::Json array = obs::Json::array();
    for (const Diagnostic& d : diagnostics) {
      obs::Json entry = obs::Json::object();
      entry.set("file", d.file);
      entry.set("line", d.line);
      entry.set("rule", d.rule);
      entry.set("message", d.message);
      array.push_back(std::move(entry));
    }
    return array;
  };
  obs::Json doc = obs::Json::object();
  doc.set("schema", kLintReportSchema);
  doc.set("files_scanned", result.files_scanned);
  doc.set("violation_count", result.violations.size());
  doc.set("suppression_count", result.suppressed.size());
  doc.set("clean", result.clean());
  doc.set("violations", diagnostics_json(result.violations));
  doc.set("suppressions", diagnostics_json(result.suppressed));
  return doc;
}

}  // namespace cdsf::lint
