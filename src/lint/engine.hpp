// Lint engine: runs the per-file rule set plus the project-wide passes
// (include-layering, lock-order, determinism-taint, registry-sync) over
// SourceFiles, applies suppressions, validates suppression markers, and
// renders text / JSON reports.
//
// Exit-code contract (shared with the cdsf_lint CLI and the fixture tests):
//   0 — clean (suppressed findings allowed)
//   1 — at least one active violation
//   2 — usage or I/O error
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "obs/json.hpp"

namespace cdsf::lint {

/// JSON schema tag stamped on --json reports. /2 added per-pass result
/// blocks and a "pass" field on every diagnostic.
inline constexpr const char* kLintReportSchema = "cdsf.lint_report/2";

/// Pass id of the per-file rule set (the other pass ids live in the pass
/// headers: kLayeringPass, kLockOrderPass, kTaintPass, kRegistryPass).
inline constexpr const char* kRulesPass = "rules";

/// All pass ids in stable execution order.
[[nodiscard]] const std::vector<std::string>& all_pass_ids();

/// One per-pass block of the report.
struct PassSummary {
  std::string name;
  bool ran = false;
  std::size_t violation_count = 0;
  std::size_t suppressed_count = 0;
  std::vector<std::string> notes;  ///< Pass-specific info (unused allows…).
};

/// Inputs and pass selection for run_project.
struct ProjectOptions {
  /// Passes to run, in any order (executed in canonical order). Empty =
  /// defaults: rules, lock-order, determinism-taint, plus include-layering
  /// when `layering_path` is set and registry-sync when `registry_path` or
  /// `metrics_doc_path` is set.
  std::vector<std::string> passes;
  std::string layering_path;     ///< tools/layering.json (enables layering).
  std::string registry_path;     ///< tools/obs_registry.json.
  std::string metrics_doc_path;  ///< docs/observability.md.
  bool want_dot = false;         ///< Produce LintResult::layering_dot.
};

struct LintResult {
  std::vector<Diagnostic> violations;   ///< Active findings (fail the run).
  std::vector<Diagnostic> suppressed;   ///< Findings silenced by allow(...).
  std::size_t files_scanned = 0;
  std::vector<PassSummary> passes;      ///< One entry per executed/known pass.
  std::string layering_dot;             ///< DOT graph when requested.

  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
  /// 0 when clean, 1 otherwise (see exit-code contract above).
  [[nodiscard]] int exit_code() const noexcept { return clean() ? 0 : 1; }
};

/// Runs every rule over every file (the "rules" pass only — the original
/// engine entry point, kept for per-file linting and the fixture tests).
/// Diagnostics on lines covered by an `allow(...)` land in `suppressed`; a
/// marker naming an unknown rule or pass id is itself an active violation
/// (rule id "unknown-suppression") so typos cannot silently disable
/// enforcement. Output order is deterministic: files in the order given,
/// diagnostics by line then rule id.
[[nodiscard]] LintResult run_rules(const std::vector<SourceFile>& files,
                                   const std::vector<std::unique_ptr<Rule>>& rules);

/// Runs the selected passes (see ProjectOptions) over the scan set: the
/// per-file rules plus the project-wide analyses on a shared ProjectIndex.
/// Suppression routing is central: a pass diagnostic at file:line honours
/// `allow(<pass-id>)` exactly like a rule diagnostic. Throws
/// std::runtime_error on unreadable/malformed manifest or registry inputs.
[[nodiscard]] LintResult run_project(const std::vector<SourceFile>& files,
                                     const std::vector<std::unique_ptr<Rule>>& rules,
                                     const ProjectOptions& options);

/// Recursively collects C++ sources (.hpp/.h/.cpp/.cc) under `path` in
/// sorted order; a file path is returned as-is. Throws std::runtime_error
/// when `path` does not exist.
[[nodiscard]] std::vector<std::string> collect_sources(const std::string& path);

/// Human-readable rendering: one gcc-style line per finding, suppressions
/// listed as notes, and a one-line summary.
[[nodiscard]] std::string to_text(const LintResult& result);

/// Machine-readable rendering ({schema: cdsf.lint_report/2, ...}).
[[nodiscard]] obs::Json to_json(const LintResult& result);

}  // namespace cdsf::lint
