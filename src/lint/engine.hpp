// Lint engine: runs a rule set over SourceFiles, applies suppressions,
// validates suppression markers, and renders text / JSON reports.
//
// Exit-code contract (shared with the cdsf_lint CLI and the fixture tests):
//   0 — clean (suppressed findings allowed)
//   1 — at least one active violation
//   2 — usage or I/O error
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "obs/json.hpp"

namespace cdsf::lint {

/// JSON schema tag stamped on --json reports.
inline constexpr const char* kLintReportSchema = "cdsf.lint_report/1";

struct LintResult {
  std::vector<Diagnostic> violations;   ///< Active findings (fail the run).
  std::vector<Diagnostic> suppressed;   ///< Findings silenced by allow(...).
  std::size_t files_scanned = 0;

  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
  /// 0 when clean, 1 otherwise (see exit-code contract above).
  [[nodiscard]] int exit_code() const noexcept { return clean() ? 0 : 1; }
};

/// Runs every rule over every file. Diagnostics on lines covered by an
/// `allow(...)` land in `suppressed`; a marker naming an unknown rule id is
/// itself an active violation (rule id "unknown-suppression") so typos
/// cannot silently disable enforcement. Output order is deterministic:
/// files in the order given, diagnostics by line then rule id.
[[nodiscard]] LintResult run_rules(const std::vector<SourceFile>& files,
                                   const std::vector<std::unique_ptr<Rule>>& rules);

/// Recursively collects C++ sources (.hpp/.h/.cpp/.cc) under `path` in
/// sorted order; a file path is returned as-is. Throws std::runtime_error
/// when `path` does not exist.
[[nodiscard]] std::vector<std::string> collect_sources(const std::string& path);

/// Human-readable rendering: one gcc-style line per finding, suppressions
/// listed as notes, and a one-line summary.
[[nodiscard]] std::string to_text(const LintResult& result);

/// Machine-readable rendering ({schema: cdsf.lint_report/1, ...}).
[[nodiscard]] obs::Json to_json(const LintResult& result);

}  // namespace cdsf::lint
