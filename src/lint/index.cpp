#include "lint/index.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "lint/text.hpp"

namespace cdsf::lint {

namespace {

constexpr std::size_t npos = ProjectIndex::npos;

bool is_keyword(std::string_view word) {
  static constexpr std::array<std::string_view, 22> kKeywords = {
      "if",      "for",       "while",    "switch",        "catch",    "return",
      "sizeof",  "alignof",   "alignas",  "decltype",      "noexcept", "static_assert",
      "new",     "delete",    "throw",    "co_await",      "co_yield", "co_return",
      "case",    "requires",  "typeid",   "static_cast"};
  return std::find(kKeywords.begin(), kKeywords.end(), word) != kKeywords.end();
}

// ---------------------------------------------------------------------------
// #include edges

void index_includes(const SourceFile& file, std::size_t fid,
                    const std::map<std::string, std::size_t, std::less<>>& by_path,
                    ProjectIndex& out) {
  const std::string_view text = file.scrubbed();
  const std::string_view raw = file.raw();
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t line_end = text.find('\n', pos);
    const std::size_t stop = line_end == std::string_view::npos ? text.size() : line_end;
    std::size_t cursor = skip_ws(text, pos);
    if (cursor < stop && text[cursor] == '#') {
      cursor = skip_ws(text, cursor + 1);
      static constexpr std::string_view kInclude = "include";
      if (text.compare(cursor, kInclude.size(), kInclude) == 0) {
        cursor = skip_ws(text, cursor + kInclude.size());
        // Quoted includes only: angle includes are system/external headers,
        // which the layer manifest never constrains.
        if (cursor < stop && text[cursor] == '"') {
          // Contents are blanked in the scrubbed view; read the target from
          // the raw view between the (still visible) quote offsets.
          const std::size_t close = text.find('"', cursor + 1);
          if (close != std::string_view::npos && close < stop) {
            IncludeRef ref;
            ref.from_file = fid;
            ref.target = normalize_path(raw.substr(cursor + 1, close - cursor - 1));
            ref.line = file.line_of(cursor);
            ref.to_file = npos;
            // Resolution: exact same-directory join first, then a unique-ish
            // suffix match against the scanned set (sorted map → the
            // lexicographically first candidate wins deterministically).
            const std::string from = normalize_path(file.path());
            const std::size_t slash = from.rfind('/');
            if (slash != std::string::npos) {
              const auto it = by_path.find(from.substr(0, slash + 1) + ref.target);
              if (it != by_path.end()) ref.to_file = it->second;
            }
            if (ref.to_file == npos) {
              const std::string suffix = "/" + ref.target;
              for (const auto& [path, id] : by_path) {
                if (path == ref.target || ends_with(path, suffix)) {
                  ref.to_file = id;
                  break;
                }
              }
            }
            out.includes.push_back(std::move(ref));
          }
        }
      }
    }
    if (line_end == std::string_view::npos) break;
    pos = line_end + 1;
  }
}

// ---------------------------------------------------------------------------
// function definitions

/// Starting just past the close paren of a parameter list, decide whether a
/// definition body follows, skipping cv/ref qualifiers, `noexcept(...)`,
/// trailing return types, and constructor member-init lists. Returns the
/// offset of the opening `{`, or npos when this is not a definition.
std::size_t find_body_open(std::string_view text, std::size_t cursor) {
  cursor = skip_ws(text, cursor);
  while (cursor < text.size()) {
    const char c = text[cursor];
    if (c == '{') return cursor;
    if (c == ';' || c == ',' || c == ')' || c == '=') return npos;
    if (c == ':') {
      if (cursor + 1 < text.size() && text[cursor + 1] == ':') return npos;
      // Constructor member-init list: `name(...)` / `name{...}` entries
      // separated by commas, then the body brace.
      cursor = skip_ws(text, cursor + 1);
      while (true) {
        std::size_t e = cursor;
        while (e < text.size() && (is_ident_char(text[e]) || text[e] == ':')) ++e;
        if (e == cursor) return npos;
        e = skip_ws(text, e);
        if (e < text.size() && text[e] == '<') {
          e = match_bracket(text, e);
          if (e == npos) return npos;
          e = skip_ws(text, e);
        }
        if (e >= text.size() || (text[e] != '(' && text[e] != '{')) return npos;
        e = match_bracket(text, e);
        if (e == npos) return npos;
        e = skip_ws(text, e);
        if (e < text.size() && text[e] == ',') {
          cursor = skip_ws(text, e + 1);
          continue;
        }
        cursor = e;
        break;
      }
      continue;
    }
    if (c == '-' && cursor + 1 < text.size() && text[cursor + 1] == '>') {
      // Trailing return type: consume tokens up to the body or terminator.
      cursor += 2;
      while (cursor < text.size() && text[cursor] != '{' && text[cursor] != ';') {
        if (text[cursor] == '(' || text[cursor] == '<') {
          const std::size_t m = match_bracket(text, cursor);
          if (m == npos) return npos;
          cursor = m;
        } else {
          ++cursor;
        }
      }
      continue;
    }
    if (c == '&') {
      cursor = skip_ws(text, cursor + 1);
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t e = cursor;
      while (e < text.size() && is_ident_char(text[e])) ++e;
      const std::string_view word = text.substr(cursor, e - cursor);
      if (word == "noexcept") {
        cursor = skip_ws(text, e);
        if (cursor < text.size() && text[cursor] == '(') {
          cursor = match_bracket(text, cursor);
          if (cursor == npos) return npos;
          cursor = skip_ws(text, cursor);
        }
        continue;
      }
      static constexpr std::array<std::string_view, 5> kSpecifiers = {"const", "override", "final",
                                                                      "mutable", "volatile"};
      if (std::find(kSpecifiers.begin(), kSpecifiers.end(), word) != kSpecifiers.end()) {
        cursor = skip_ws(text, e);
        continue;
      }
      return npos;
    }
    return npos;
  }
  return npos;
}

/// Qualified spelling of the identifier ending just before `name_pos`
/// (`Foo::Bar::` prefix walked back), or the bare name when unqualified.
std::string qualified_display(std::string_view text, std::size_t name_pos,
                              std::string_view name) {
  std::size_t start = name_pos;
  while (start >= 2 && text[start - 1] == ':' && text[start - 2] == ':') {
    std::size_t prev = start - 2;
    const std::size_t qual_start = ident_start(text, prev > 0 ? prev - 1 : 0);
    if (prev == 0 || !is_ident_char(text[prev - 1]) || qual_start > prev - 1) break;
    start = qual_start;
  }
  if (start == name_pos) return std::string(name);
  return std::string(text.substr(start, name_pos + name.size() - start));
}

void index_functions(const SourceFile& file, std::size_t fid, ProjectIndex& out) {
  const std::string_view text = file.scrubbed();
  std::size_t i = 0;
  while (i < text.size()) {
    if (!is_ident_char(text[i])) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < text.size() && is_ident_char(text[end])) ++end;
    const std::string_view name = text.substr(i, end - i);
    const std::size_t name_pos = i;
    i = end;
    if (is_keyword(name)) continue;
    const std::size_t open = skip_ws(text, end);
    if (open >= text.size() || text[open] != '(') continue;
    const std::size_t close = match_bracket(text, open);
    if (close == npos) continue;
    const std::size_t body_open = find_body_open(text, close);
    if (body_open == npos) continue;
    const std::size_t body_close = match_bracket(text, body_open);
    if (body_close == npos) continue;
    FunctionDef def;
    def.name = std::string(name);
    def.display = qualified_display(text, name_pos, name);
    def.file = fid;
    def.line = file.line_of(name_pos);
    def.body_begin = body_open + 1;
    def.body_end = body_close - 1;
    out.functions.push_back(std::move(def));
    // Scanning resumes inside the body, jumping over the parameter list and
    // any constructor init-list (whose `member_(value)` entries would
    // otherwise look like nested definitions). Local definitions nested in
    // the body (lambdas excepted) are indexed as the scan passes over them.
    i = body_open + 1;
  }
}

void index_calls(const SourceFile& file, ProjectIndex& out, std::size_t func_begin,
                 std::size_t func_end) {
  const std::string_view text = file.scrubbed();
  for (std::size_t fi = func_begin; fi < func_end; ++fi) {
    const FunctionDef& def = out.functions[fi];
    std::set<std::string, std::less<>> seen;
    std::size_t i = def.body_begin;
    while (i < def.body_end) {
      if (!is_ident_char(text[i])) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end < def.body_end && is_ident_char(text[end])) ++end;
      const std::string_view name = text.substr(i, end - i);
      const std::size_t name_pos = i;
      i = end;
      if (is_keyword(name)) continue;
      const std::size_t open = skip_ws(text, end);
      if (open >= def.body_end || text[open] != '(') continue;
      if (seen.count(name) != 0) continue;
      seen.emplace(name);
      out.calls.push_back({fi, std::string(name), file.line_of(name_pos)});
    }
  }
}

// ---------------------------------------------------------------------------
// mutex declarations and lock sites

void index_mutexes(const SourceFile& file, std::size_t fid, ProjectIndex& out) {
  const std::string_view text = file.scrubbed();
  static constexpr std::array<std::string_view, 6> kTypes = {
      "mutex",           "shared_mutex",       "recursive_mutex",
      "timed_mutex",     "shared_timed_mutex", "recursive_timed_mutex"};
  for (const std::string_view type : kTypes) {
    for (std::size_t pos = find_word(text, type); pos != std::string_view::npos;
         pos = find_word(text, type, pos + 1)) {
      std::size_t cursor = skip_ws(text, pos + type.size());
      while (cursor < text.size() && (text[cursor] == '*' || text[cursor] == '&')) {
        cursor = skip_ws(text, cursor + 1);
      }
      std::size_t name_end = cursor;
      while (name_end < text.size() && is_ident_char(text[name_end])) ++name_end;
      if (name_end == cursor) continue;  // template argument, cast, etc.
      const std::size_t after = skip_ws(text, name_end);
      // Member (`;`), brace-init, local/param (`,` / `)`), or default-init:
      // anything else (e.g. `mutex` used as a following call) is not a decl.
      if (after >= text.size() ||
          (text[after] != ';' && text[after] != '{' && text[after] != ',' &&
           text[after] != ')' && text[after] != '=')) {
        continue;
      }
      MutexDecl decl;
      decl.name = std::string(text.substr(cursor, name_end - cursor));
      decl.file = fid;
      decl.line = file.line_of(cursor);
      decl.recursive = type.find("recursive") != std::string_view::npos;
      out.mutexes.push_back(std::move(decl));
    }
  }
}

/// Last identifier token inside `arg` (so `*impl_->state_mu_` → "state_mu_").
std::string_view last_identifier(std::string_view arg) {
  std::size_t end = arg.size();
  while (end > 0) {
    if (is_ident_char(arg[end - 1])) {
      const std::size_t start = ident_start(arg, end - 1);
      return arg.substr(start, end - start);
    }
    --end;
  }
  return {};
}

void index_locks(const SourceFile& file, std::size_t fid,
                 const std::set<std::string, std::less<>>& mutex_names, ProjectIndex& out) {
  const std::string_view text = file.scrubbed();
  static constexpr std::array<std::string_view, 4> kGuards = {"scoped_lock", "lock_guard",
                                                              "unique_lock", "shared_lock"};
  for (const std::string_view guard : kGuards) {
    for (std::size_t pos = find_word(text, guard); pos != std::string_view::npos;
         pos = find_word(text, guard, pos + 1)) {
      if (preceded_by_member_access(text, pos)) continue;
      std::size_t cursor = skip_ws(text, pos + guard.size());
      if (cursor < text.size() && text[cursor] == '<') {
        cursor = match_bracket(text, cursor);
        if (cursor == npos) continue;
        cursor = skip_ws(text, cursor);
      }
      // Optional guard variable name between type and argument list.
      if (cursor < text.size() && is_ident_char(text[cursor])) {
        std::size_t name_end = cursor;
        while (name_end < text.size() && is_ident_char(text[name_end])) ++name_end;
        cursor = skip_ws(text, name_end);
      }
      if (cursor >= text.size() || text[cursor] != '(') continue;
      const std::size_t close = match_bracket(text, cursor);
      if (close == npos) continue;
      const std::string_view args = text.substr(cursor + 1, close - cursor - 2);
      if (find_word(args, "defer_lock") != std::string_view::npos) continue;  // no acquisition
      LockSite site;
      site.file = fid;
      site.function = npos;  // resolved by build_index once functions exist
      site.offset = pos;
      site.line = file.line_of(pos);
      site.guard = std::string(guard);
      // Split top-level commas; each argument's trailing identifier is the
      // candidate mutex name, kept only when a declaration with that name
      // was indexed anywhere in the scan set.
      std::size_t arg_start = 0;
      int depth = 0;
      for (std::size_t k = 0; k <= args.size(); ++k) {
        const char c = k < args.size() ? args[k] : ',';
        if (c == '(' || c == '{' || c == '[' || c == '<') ++depth;
        if (c == ')' || c == '}' || c == ']' || c == '>') --depth;
        if (c == ',' && depth <= 0) {
          const std::string_view ident = last_identifier(args.substr(arg_start, k - arg_start));
          if (!ident.empty() && mutex_names.count(ident) != 0) {
            site.mutexes.emplace_back(ident);
          }
          arg_start = k + 1;
        }
      }
      if (!site.mutexes.empty()) out.locks.push_back(std::move(site));
    }
  }
}

// ---------------------------------------------------------------------------
// schema tags and metric literals

bool parse_schema_tag(std::string_view literal, std::string& base, int& version) {
  static constexpr std::string_view kPrefix = "cdsf.";
  if (literal.size() <= kPrefix.size() ||
      literal.compare(0, kPrefix.size(), kPrefix) != 0) {
    return false;
  }
  const std::size_t slash = literal.rfind('/');
  if (slash == std::string_view::npos || slash <= kPrefix.size() ||
      slash + 1 >= literal.size()) {
    return false;
  }
  for (std::size_t i = kPrefix.size(); i < slash; ++i) {
    const char c = literal[i];
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.')) return false;
  }
  int v = 0;
  for (std::size_t i = slash + 1; i < literal.size(); ++i) {
    const char c = literal[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  base = std::string(literal.substr(0, slash));
  version = v;
  return true;
}

void index_schemas(const SourceFile& file, std::size_t fid, ProjectIndex& out) {
  const std::string_view text = file.scrubbed();
  const std::string_view raw = file.raw();
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string_view::npos) {
    const std::size_t close = text.find('"', pos + 1);
    if (close == std::string_view::npos) break;
    // Raw-string delimiters stay visible in the scrubbed view, so this
    // pairing can straddle R"x( ... )x" — the blanked middle then fails the
    // full-literal match below, which is the behaviour we want anyway.
    const std::string_view literal = raw.substr(pos + 1, close - pos - 1);
    std::string base;
    int version = 0;
    if (parse_schema_tag(literal, base, version)) {
      out.schemas.push_back(
          {std::string(literal), std::move(base), version, fid, file.line_of(pos)});
    }
    pos = close + 1;
  }
}

}  // namespace

std::vector<MetricLiteral> extract_metric_literals(const SourceFile& file, std::size_t file_id) {
  std::vector<MetricLiteral> out;
  const std::string_view text = file.scrubbed();
  const std::string_view raw = file.raw();
  const auto record_at = [&](std::size_t pos) {
    if (pos >= text.size() || text[pos] != '"') return;
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string_view::npos) return;
    out.push_back(
        {std::string(raw.substr(pos + 1, end - pos - 1)), file_id, file.line_of(pos)});
  };
  static constexpr std::array<std::string_view, 4> kMembers = {"add", "observe", "set_gauge",
                                                               "set_histogram_bounds"};
  for (const std::string_view member : kMembers) {
    for (std::size_t pos = find_word(text, member); pos != std::string_view::npos;
         pos = find_word(text, member, pos + 1)) {
      const std::size_t open = skip_ws(text, pos + member.size());
      if (open >= text.size() || text[open] != '(') continue;
      if (!preceded_by_member_access(text, pos)) continue;
      record_at(skip_ws(text, open + 1));
    }
  }
  static constexpr std::string_view kTimer = "ScopedTimer";
  for (std::size_t pos = find_word(text, kTimer); pos != std::string_view::npos;
       pos = find_word(text, kTimer, pos + 1)) {
    std::size_t open = skip_ws(text, pos + kTimer.size());
    if (open < text.size() && is_ident_char(text[open])) {
      std::size_t name_end = open;
      while (name_end < text.size() && is_ident_char(text[name_end])) ++name_end;
      open = skip_ws(text, name_end);
    }
    if (open >= text.size() || text[open] != '(') continue;
    const std::size_t close = match_bracket(text, open);
    if (close == std::string_view::npos) continue;
    const std::size_t quote = text.find('"', open);
    if (quote < close) record_at(quote);
  }
  return out;
}

std::size_t ProjectIndex::file_id(std::string_view path) const {
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i]->path() == path) return i;
  }
  return npos;
}

ProjectIndex build_index(const std::vector<SourceFile>& files) {
  ProjectIndex index;
  index.files.reserve(files.size());
  std::map<std::string, std::size_t, std::less<>> by_path;
  for (std::size_t i = 0; i < files.size(); ++i) {
    index.files.push_back(&files[i]);
    by_path.emplace(normalize_path(files[i].path()), i);
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    index_includes(files[i], i, by_path, index);
    const std::size_t func_begin = index.functions.size();
    index_functions(files[i], i, index);
    index_calls(files[i], index, func_begin, index.functions.size());
    index_mutexes(files[i], i, index);
    index_schemas(files[i], i, index);
    const std::vector<MetricLiteral> metrics = extract_metric_literals(files[i], i);
    index.metrics.insert(index.metrics.end(), metrics.begin(), metrics.end());
  }
  // Lock sites need the full mutex-name set (a guard in one file can lock a
  // member declared in a header), so they index in a second sweep.
  std::set<std::string, std::less<>> mutex_names;
  for (const MutexDecl& decl : index.mutexes) mutex_names.insert(decl.name);
  for (std::size_t i = 0; i < files.size(); ++i) {
    index_locks(files[i], i, mutex_names, index);
  }
  // Attribute each lock site to the innermost enclosing function body.
  for (LockSite& site : index.locks) {
    std::size_t best = ProjectIndex::npos;
    std::size_t best_span = static_cast<std::size_t>(-1);
    for (std::size_t fi = 0; fi < index.functions.size(); ++fi) {
      const FunctionDef& def = index.functions[fi];
      if (def.file != site.file) continue;
      if (site.offset < def.body_begin || site.offset >= def.body_end) continue;
      const std::size_t span = def.body_end - def.body_begin;
      if (span < best_span) {
        best = fi;
        best_span = span;
      }
    }
    site.function = best;
  }
  for (std::size_t fi = 0; fi < index.functions.size(); ++fi) {
    index.functions_by_name[index.functions[fi].name].push_back(fi);
  }
  return index;
}

}  // namespace cdsf::lint
