// Project-wide semantic index for cdsf_lint's multi-pass analyses.
//
// One pass over the scrubbed sources builds every cross-file fact the
// project passes need, so each pass is a pure graph/set computation:
//
//   - include edges   (#include "..." resolved against the scanned set)
//   - function definitions with body spans, and the call sites inside them
//     (a lexical, name-based approximation of the call graph)
//   - mutex member/local declarations and RAII lock-acquisition sites
//   - full-literal report schema tags ("cdsf.<name>/<version>")
//   - metric name literals passed to the MetricsRegistry mutators
//
// The index is deliberately lexical (no preprocessor, no overload
// resolution): deterministic, dependency-free, and fast enough to run on
// every test invocation. Each pass documents how it compensates for the
// approximation (docs/static_analysis.md).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source.hpp"

namespace cdsf::lint {

/// One `#include "..."` directive. `to_file` is npos when the target is
/// not among the scanned files (system or external header).
struct IncludeRef {
  std::size_t from_file = 0;
  std::string target;        ///< Path as written between the quotes.
  std::size_t to_file = 0;   ///< Scanned-file id, or npos.
  std::size_t line = 0;
};

/// One function (or member function / constructor) definition.
struct FunctionDef {
  std::string name;       ///< Unqualified name used for call matching.
  std::string display;    ///< Qualified spelling when written qualified.
  std::size_t file = 0;
  std::size_t line = 0;
  std::size_t body_begin = 0;  ///< Offset just inside the opening brace.
  std::size_t body_end = 0;    ///< Offset of the closing brace.
};

/// One call site `name(...)` inside a function body (first occurrence of
/// each callee name per function).
struct CallRef {
  std::size_t caller = 0;  ///< Index into ProjectIndex::functions.
  std::string name;
  std::size_t line = 0;
};

/// One mutex declaration (member, local, or parameter).
struct MutexDecl {
  std::string name;
  std::size_t file = 0;
  std::size_t line = 0;
  bool recursive = false;
};

/// One RAII guard acquisition (`std::scoped_lock lock(a, b);` etc.).
/// `mutexes` holds the declared mutex names found among the arguments;
/// deferred acquisitions (`std::defer_lock`) are not recorded.
struct LockSite {
  std::size_t function = 0;  ///< Index into ProjectIndex::functions.
  std::size_t file = 0;
  std::size_t offset = 0;    ///< Offset of the guard token.
  std::size_t line = 0;
  std::string guard;         ///< scoped_lock / lock_guard / unique_lock / shared_lock.
  std::vector<std::string> mutexes;
};

/// One full-literal schema tag, e.g. "cdsf.run_report/1".
struct SchemaLiteral {
  std::string tag;
  std::string base;     ///< "cdsf.run_report"
  int version = 0;      ///< 1
  std::size_t file = 0;
  std::size_t line = 0;
};

/// One string-literal metric name passed to a registry mutator
/// (`.add(...)`, `.observe(...)`, `.set_gauge(...)`,
/// `.set_histogram_bounds(...)`) or a ScopedTimer constructor.
struct MetricLiteral {
  std::string name;
  std::size_t file = 0;
  std::size_t line = 0;
};

struct ProjectIndex {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::vector<const SourceFile*> files;
  std::vector<IncludeRef> includes;
  std::vector<FunctionDef> functions;
  std::vector<CallRef> calls;
  std::vector<MutexDecl> mutexes;
  std::vector<LockSite> locks;
  std::vector<SchemaLiteral> schemas;
  std::vector<MetricLiteral> metrics;

  /// Function indexes grouped by unqualified name.
  std::map<std::string, std::vector<std::size_t>, std::less<>> functions_by_name;

  /// Scanned-file id of `path` (exact match on the path as given), or npos.
  [[nodiscard]] std::size_t file_id(std::string_view path) const;
};

/// Builds the full index. The SourceFile vector must outlive the index
/// (it keeps pointers, not copies).
[[nodiscard]] ProjectIndex build_index(const std::vector<SourceFile>& files);

/// Metric-name literal extraction for one file — shared between the
/// per-file metric-name rule and the registry cross-validation pass so the
/// two can never disagree about what counts as a recorded metric.
[[nodiscard]] std::vector<MetricLiteral> extract_metric_literals(const SourceFile& file,
                                                                 std::size_t file_id);

}  // namespace cdsf::lint
