#include "lint/layering.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lint/text.hpp"
#include "obs/json.hpp"

namespace cdsf::lint {

namespace {

bool pattern_matches(std::string_view path, const std::string& pattern) {
  if (pattern.find('/') == std::string::npos) return has_segment(path, pattern);
  const std::string normalized = normalize_path(path);
  if (normalized.rfind(pattern, 0) == 0) return true;
  std::string infix = "/";
  infix.append(pattern);
  return normalized.find(infix) != std::string::npos;
}

/// Throws when the `allow` graph over the manifest layers has a cycle:
/// a manifest that permits A→B and B→A orders nothing.
void require_acyclic(const std::vector<LayerSpec>& layers) {
  std::map<std::string, std::size_t, std::less<>> by_name;
  for (std::size_t i = 0; i < layers.size(); ++i) by_name.emplace(layers[i].name, i);
  // Colors: 0 unvisited, 1 on stack, 2 done.
  std::vector<int> color(layers.size(), 0);
  for (std::size_t root = 0; root < layers.size(); ++root) {
    if (color[root] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      const std::vector<std::string>& allow = layers[node].allow;
      if (edge >= allow.size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const std::string& target = allow[edge++];
      if (target == "*") continue;
      const auto it = by_name.find(target);
      if (it == by_name.end()) {
        throw std::runtime_error("layering manifest: layer '" + layers[node].name +
                                 "' allows unknown layer '" + target + "'");
      }
      if (color[it->second] == 1) {
        throw std::runtime_error("layering manifest: allow cycle through layers '" +
                                 layers[node].name + "' and '" + target + "'");
      }
      if (color[it->second] == 0) {
        color[it->second] = 1;
        stack.emplace_back(it->second, 0);
      }
    }
  }
}

}  // namespace

LayeringManifest LayeringManifest::parse(const std::string& json_text) {
  obs::Json doc;
  try {
    doc = obs::Json::parse(json_text);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("layering manifest: malformed JSON: ") + e.what());
  }
  const obs::Json* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != kLayeringSchema) {
    throw std::runtime_error(std::string("layering manifest: expected schema ") +
                             kLayeringSchema);
  }
  const obs::Json* layers = doc.find("layers");
  if (layers == nullptr || layers->type() != obs::Json::Type::kArray || layers->size() == 0) {
    throw std::runtime_error("layering manifest: 'layers' must be a non-empty array");
  }
  LayeringManifest manifest;
  std::set<std::string, std::less<>> names;
  for (const obs::Json& entry : layers->items()) {
    LayerSpec spec;
    spec.name = entry.at("name").as_string();
    if (!names.insert(spec.name).second) {
      throw std::runtime_error("layering manifest: duplicate layer '" + spec.name + "'");
    }
    for (const obs::Json& pattern : entry.at("match").items()) {
      spec.match.push_back(pattern.as_string());
    }
    if (spec.match.empty()) {
      throw std::runtime_error("layering manifest: layer '" + spec.name +
                               "' has no match patterns");
    }
    if (const obs::Json* allow = entry.find("allow"); allow != nullptr) {
      for (const obs::Json& target : allow->items()) {
        spec.allow.push_back(target.as_string());
      }
    }
    manifest.layers.push_back(std::move(spec));
  }
  require_acyclic(manifest.layers);
  return manifest;
}

LayeringManifest LayeringManifest::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read layering manifest: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::size_t LayeringManifest::layer_of(std::string_view path) const {
  for (std::size_t i = 0; i < layers.size(); ++i) {
    for (const std::string& pattern : layers[i].match) {
      if (pattern_matches(path, pattern)) return i;
    }
  }
  return npos;
}

namespace {

struct LayerGraph {
  std::vector<std::size_t> file_layer;  // per scanned file; npos = unmatched
  // (from-layer, to-layer) → one representative include site.
  std::map<std::pair<std::size_t, std::size_t>, const IncludeRef*> edges;
};

LayerGraph build_layer_graph(const ProjectIndex& index, const LayeringManifest& manifest) {
  LayerGraph graph;
  graph.file_layer.resize(index.files.size(), LayeringManifest::npos);
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    graph.file_layer[i] = manifest.layer_of(index.files[i]->path());
  }
  for (const IncludeRef& ref : index.includes) {
    if (ref.to_file == ProjectIndex::npos) continue;
    const std::size_t from = graph.file_layer[ref.from_file];
    const std::size_t to = graph.file_layer[ref.to_file];
    if (from == LayeringManifest::npos || to == LayeringManifest::npos) continue;
    graph.edges.emplace(std::make_pair(from, to), &ref);
  }
  return graph;
}

bool edge_allowed(const LayeringManifest& manifest, std::size_t from, std::size_t to) {
  if (from == to) return true;
  const LayerSpec& spec = manifest.layers[from];
  for (const std::string& target : spec.allow) {
    if (target == "*" || target == manifest.layers[to].name) return true;
  }
  return false;
}

}  // namespace

LayeringResult check_layering(const ProjectIndex& index, const LayeringManifest& manifest) {
  LayeringResult result;
  const LayerGraph graph = build_layer_graph(index, manifest);

  for (std::size_t i = 0; i < index.files.size(); ++i) {
    if (graph.file_layer[i] != LayeringManifest::npos) continue;
    ++result.files_unmatched;
    result.diagnostics.push_back(
        {index.files[i]->path(), 1, kLayeringPass,
         "file matches no layer in the manifest; add it to a layer's match patterns",
         false, kLayeringPass});
  }

  // Illegal edges: report every concrete include site, not just one per
  // layer pair, so a violation pinpoints the exact line to fix.
  std::set<std::string> used_allows;  // "<from>-><to>" exercised by an edge
  for (const IncludeRef& ref : index.includes) {
    if (ref.to_file == ProjectIndex::npos) continue;
    const std::size_t from = graph.file_layer[ref.from_file];
    const std::size_t to = graph.file_layer[ref.to_file];
    if (from == LayeringManifest::npos || to == LayeringManifest::npos) continue;
    ++result.edges_checked;
    if (!edge_allowed(manifest, from, to)) {
      result.diagnostics.push_back(
          {index.files[ref.from_file]->path(), ref.line, kLayeringPass,
           "layer '" + manifest.layers[from].name + "' must not include layer '" +
               manifest.layers[to].name + "' (#include \"" + ref.target +
               "\"); declare the edge in tools/layering.json or invert the dependency",
           false, kLayeringPass});
    } else if (from != to) {
      used_allows.insert(manifest.layers[from].name + "->" + manifest.layers[to].name);
    }
  }

  // Unused allow edges: notes, not violations — the manifest should shrink
  // when the architecture does, but an over-broad allow is not itself a bug.
  for (const LayerSpec& spec : manifest.layers) {
    for (const std::string& target : spec.allow) {
      if (target == "*") continue;
      if (used_allows.count(spec.name + "->" + target) == 0) {
        result.notes.push_back("allow edge " + spec.name + " -> " + target +
                               " is declared but no include uses it");
      }
    }
  }

  // File-level include cycles (DFS back-edge detection over resolved
  // edges). A cycle is reported once, anchored at its lexicographically
  // smallest file, with the full path spelled out.
  std::vector<std::vector<std::pair<std::size_t, const IncludeRef*>>> adjacency(
      index.files.size());
  for (const IncludeRef& ref : index.includes) {
    if (ref.to_file != ProjectIndex::npos) {
      adjacency[ref.from_file].emplace_back(ref.to_file, &ref);
    }
  }
  std::vector<int> color(index.files.size(), 0);
  std::set<std::string> reported_cycles;
  for (std::size_t root = 0; root < index.files.size(); ++root) {
    if (color[root] != 0) continue;
    // Manual DFS: stack of (node, next-edge-index); path mirrors the stack.
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [node, edge] = stack.back();
      if (edge >= adjacency[node].size()) {
        color[node] = 2;
        stack.pop_back();
        continue;
      }
      const auto [next, ref] = adjacency[node][edge++];
      if (color[next] == 1) {
        // Back edge: the cycle is the stack suffix starting at `next`.
        std::vector<std::size_t> cycle;
        bool in_cycle = false;
        for (const auto& [n, ignored] : stack) {
          if (n == next) in_cycle = true;
          if (in_cycle) cycle.push_back(n);
        }
        // Canonical form: rotate to start at the smallest path.
        std::size_t pivot = 0;
        for (std::size_t k = 1; k < cycle.size(); ++k) {
          if (index.files[cycle[k]]->path() < index.files[cycle[pivot]]->path()) pivot = k;
        }
        std::rotate(cycle.begin(), cycle.begin() + static_cast<std::ptrdiff_t>(pivot),
                    cycle.end());
        std::string description;
        for (const std::size_t n : cycle) {
          if (!description.empty()) description += " -> ";
          description += index.files[n]->path();
        }
        description += " -> " + index.files[cycle.front()]->path();
        if (reported_cycles.insert(description).second) {
          result.diagnostics.push_back({index.files[cycle.front()]->path(), ref->line,
                                        kLayeringPass, "include cycle: " + description, false,
                                        kLayeringPass});
        }
        continue;
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.emplace_back(next, 0);
      }
    }
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return result;
}

std::string layering_dot(const ProjectIndex& index, const LayeringManifest& manifest) {
  const LayerGraph graph = build_layer_graph(index, manifest);
  std::ostringstream out;
  out << "digraph layering {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (const LayerSpec& spec : manifest.layers) {
    out << "  \"" << spec.name << "\";\n";
  }
  std::set<std::string> observed;
  for (const auto& [edge, ref] : graph.edges) {
    const auto [from, to] = edge;
    if (from == to) continue;
    const std::string from_name = manifest.layers[from].name;
    const std::string to_name = manifest.layers[to].name;
    observed.insert(from_name + "->" + to_name);
    const bool legal = edge_allowed(manifest, from, to);
    out << "  \"" << from_name << "\" -> \"" << to_name << "\"";
    if (!legal) {
      out << " [color=red, penwidth=2, label=\"ILLEGAL\"]";
    }
    out << ";\n";
  }
  for (const LayerSpec& spec : manifest.layers) {
    for (const std::string& target : spec.allow) {
      if (target == "*") continue;
      if (observed.count(spec.name + "->" + target) == 0) {
        out << "  \"" << spec.name << "\" -> \"" << target
            << "\" [style=dashed, color=gray, label=\"unused allow\"];\n";
      }
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace cdsf::lint
