// include-layering pass: checks the resolved #include graph against the
// declared layer manifest (tools/layering.json) and reports illegal edges,
// unmatched files, and file-level include cycles.
//
// Manifest (schema "cdsf.layering/1"):
//   {
//     "schema": "cdsf.layering/1",
//     "layers": [
//       {"name": "util", "match": ["src/util"], "allow": []},
//       {"name": "sim",  "match": ["src/sim"],  "allow": ["util", "dls", ...]},
//       {"name": "harness", "match": ["tests", "bench"], "allow": ["*"]}
//     ]
//   }
//
// Matching: a file belongs to the first layer (manifest order) with a
// matching pattern. A pattern containing '/' matches when the normalized
// path contains "/<pattern>" or starts with "<pattern>"; a bare pattern
// matches as a whole directory segment anywhere in the path — both work
// with the absolute paths the build passes to cdsf_lint. Every scanned
// file must match some layer.
//
// Edges: layer L may include itself plus the layers in its `allow` list;
// "*" allows everything (harness layers). Illegal edges, unmatched files,
// and include cycles are violations; `allow` entries no observed edge uses
// are reported as notes so the manifest cannot drift loose over time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/rules.hpp"

namespace cdsf::lint {

/// Pass id used in diagnostics and allow(...) suppressions.
inline constexpr const char* kLayeringPass = "include-layering";
/// Schema tag the manifest file must carry.
inline constexpr const char* kLayeringSchema = "cdsf.layering/1";

struct LayerSpec {
  std::string name;
  std::vector<std::string> match;
  std::vector<std::string> allow;
};

struct LayeringManifest {
  std::vector<LayerSpec> layers;

  /// Parses and validates manifest JSON text. Throws std::runtime_error on
  /// malformed JSON, schema mismatch, duplicate/unknown layer names, or a
  /// cyclic allow graph (the manifest itself must order the architecture).
  static LayeringManifest parse(const std::string& json_text);
  /// Reads `path` and parses it. Throws std::runtime_error when unreadable.
  static LayeringManifest load(const std::string& path);

  /// Index of the first layer matching `path`, or npos when unmatched.
  [[nodiscard]] std::size_t layer_of(std::string_view path) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

struct LayeringResult {
  std::vector<Diagnostic> diagnostics;
  std::vector<std::string> notes;      ///< e.g. unused allow edges.
  std::size_t edges_checked = 0;       ///< Resolved in-tree include edges.
  std::size_t files_unmatched = 0;
};

/// Checks every resolved include edge and hunts include cycles.
[[nodiscard]] LayeringResult check_layering(const ProjectIndex& index,
                                            const LayeringManifest& manifest);

/// Graphviz DOT rendering of the layer-level include graph: one node per
/// layer, observed edges solid (illegal ones red), declared-but-unused
/// allow edges dashed gray.
[[nodiscard]] std::string layering_dot(const ProjectIndex& index,
                                       const LayeringManifest& manifest);

}  // namespace cdsf::lint
