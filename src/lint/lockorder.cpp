#include "lint/lockorder.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/text.hpp"

namespace cdsf::lint {

namespace {

/// Directory part of `path` ("src/obs/metrics.cpp" → "src/obs").
std::string dir_of(std::string_view path) {
  const std::string normalized = normalize_path(path);
  const std::size_t slash = normalized.rfind('/');
  return slash == std::string::npos ? std::string() : normalized.substr(0, slash);
}

struct Acquisition {
  std::string key;      ///< "<dir>:<mutex name>" — the lock's identity.
  std::string name;     ///< Mutex name as written.
  const LockSite* site;
  int depth;            ///< Brace depth at the declaration.
  bool shared;          ///< shared_lock (re-entrant across readers).
  bool recursive;       ///< Declared recursive_mutex somewhere.
};

struct EdgeInfo {
  const LockSite* held_site;
  const LockSite* acquired_site;
  std::string held_name;
  std::string acquired_name;
};

}  // namespace

LockOrderResult check_lock_order(const ProjectIndex& index) {
  LockOrderResult result;

  std::set<std::string, std::less<>> recursive_names;
  for (const MutexDecl& decl : index.mutexes) {
    if (decl.recursive) recursive_names.insert(decl.name);
  }

  // Group sites by function, ordered by offset so the scope replay below
  // sees acquisitions in textual order.
  std::map<std::size_t, std::vector<const LockSite*>> by_function;
  for (const LockSite& site : index.locks) {
    if (site.function == ProjectIndex::npos) continue;
    ++result.sites;
    by_function[site.function].push_back(&site);
  }
  for (auto& [function, sites] : by_function) {
    std::sort(sites.begin(), sites.end(),
              [](const LockSite* a, const LockSite* b) { return a->offset < b->offset; });
  }

  // (held-key, acquired-key) → representative edge, collected globally.
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges;

  for (const auto& [function, sites] : by_function) {
    const FunctionDef& def = index.functions[function];
    const SourceFile& file = *index.files[def.file];
    const std::string_view text = file.scrubbed();
    const std::string dir = dir_of(file.path());

    std::vector<Acquisition> held;
    std::size_t next_site = 0;
    int depth = 0;
    for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
      // Release guards whose block closed before this point.
      if (text[i] == '{') ++depth;
      if (text[i] == '}') {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
      }
      if (next_site >= sites.size() || sites[next_site]->offset != i) continue;
      const LockSite* site = sites[next_site++];
      const bool shared = site->guard == "shared_lock";
      for (const std::string& name : site->mutexes) {
        const std::string key = dir + ":" + name;
        // Self-reacquisition: the same lock is already held on this scope
        // chain and at least one of the two grabs is exclusive.
        for (const Acquisition& a : held) {
          if (a.key != key) continue;
          if (a.recursive) continue;
          if (a.shared && shared) continue;
          result.diagnostics.push_back(
              {file.path(), site->line, kLockOrderPass,
               "mutex '" + name + "' is re-acquired while already held (first acquired at " +
                   file.path() + ":" + std::to_string(a.site->line) +
                   "); this self-deadlocks on a non-recursive mutex",
               false, kLockOrderPass});
          break;
        }
        // Ordering edges: every currently-held lock precedes this one. A
        // multi-mutex scoped_lock acquires atomically, so mutexes of one
        // site never order against each other.
        for (const Acquisition& a : held) {
          if (a.key == key || a.site == site) continue;
          const auto edge_key = std::make_pair(a.key, key);
          if (edges.count(edge_key) == 0) {
            edges.emplace(edge_key, EdgeInfo{a.site, site, a.name, name});
          }
        }
        held.push_back({key, name, site, depth, shared,
                        recursive_names.count(name) != 0});
      }
    }
  }
  result.edges = edges.size();

  // Inversions: both orientations of a pair present anywhere in the graph.
  // Report once per unordered pair, anchored at the orientation whose key
  // pair sorts second (deterministic and independent of map iteration).
  for (const auto& [edge_key, info] : edges) {
    const auto reverse_key = std::make_pair(edge_key.second, edge_key.first);
    if (edge_key < reverse_key) continue;  // handled from the other side
    const auto reverse = edges.find(reverse_key);
    if (reverse == edges.end()) continue;
    const EdgeInfo& first = reverse->second;  // the canonical (smaller) orientation
    const SourceFile& site_file = *index.files[info.acquired_site->file];
    const SourceFile& other_file = *index.files[first.acquired_site->file];
    result.diagnostics.push_back(
        {site_file.path(), info.acquired_site->line, kLockOrderPass,
         "lock-order inversion: '" + info.held_name + "' then '" + info.acquired_name +
             "' here, but '" + first.held_name + "' then '" + first.acquired_name + "' at " +
             other_file.path() + ":" + std::to_string(first.acquired_site->line) +
             "; two threads taking both paths can deadlock",
         false, kLockOrderPass});
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return result;
}

}  // namespace cdsf::lint
