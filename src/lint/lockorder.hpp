// lock-order pass: builds the global lock-acquisition graph from the
// indexed RAII guard sites and flags inconsistent orderings.
//
// Within each function body the pass replays brace scopes: a guard is held
// from its declaration to the end of its enclosing block. Acquiring B
// while A is held adds the edge A→B to one global graph (merged across
// every function in the scan set). Two kinds of findings:
//
//   - inversion: both A→B and B→A exist anywhere in the project — two
//     threads taking the two paths can deadlock. Reported once per mutex
//     pair, anchored at the second ordering's acquisition site, with the
//     first ordering's site named in the message.
//   - self-reacquisition: acquiring a non-recursive mutex that is already
//     held in the same scope chain (shared_lock-over-shared_lock on a
//     shared mutex is exempt — shared mode is re-entrant across threads).
//
// Mutex identity is (directory of the acquisition site, member name):
// lexical indexing cannot see types, and same-named members in different
// subsystems (obs/ vs svc/) are distinct locks, while a header/impl pair
// in one directory is the same lock. The analysis is intra-function per
// acquisition chain — it does not follow calls made while a lock is held
// (docs/static_analysis.md states the approximation).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/rules.hpp"

namespace cdsf::lint {

/// Pass id used in diagnostics and allow(...) suppressions.
inline constexpr const char* kLockOrderPass = "lock-order";

struct LockOrderResult {
  std::vector<Diagnostic> diagnostics;
  std::size_t sites = 0;  ///< Guard acquisitions attributed to a function.
  std::size_t edges = 0;  ///< Distinct held→acquired pairs in the graph.
};

[[nodiscard]] LockOrderResult check_lock_order(const ProjectIndex& index);

}  // namespace cdsf::lint
