#include "lint/registry_check.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "lint/text.hpp"
#include "obs/json.hpp"

namespace cdsf::lint {

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// 1-based line of the first occurrence of `needle` in `text` (1 if absent,
/// so diagnostics on a malformed file still point somewhere sensible).
std::size_t line_of_first(std::string_view text, std::string_view needle) {
  const std::size_t pos = text.find(needle);
  if (pos == std::string_view::npos) return 1;
  return static_cast<std::size_t>(std::count(text.begin(), text.begin() + pos, '\n')) + 1;
}

bool valid_metric_name(std::string_view name) {
  static constexpr std::array<std::string_view, 3> kPrefixes = {"sim.", "cdsf.", "obs."};
  std::string_view rest;
  for (const std::string_view prefix : kPrefixes) {
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      rest = name.substr(prefix.size());
      break;
    }
  }
  if (rest.empty()) return false;
  return std::all_of(rest.begin(), rest.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
  });
}

bool parse_schema_tag(std::string_view tag, std::string& base, int& version) {
  const std::size_t slash = tag.rfind('/');
  if (slash == std::string_view::npos || slash + 1 >= tag.size()) return false;
  int v = 0;
  for (std::size_t i = slash + 1; i < tag.size(); ++i) {
    if (tag[i] < '0' || tag[i] > '9') return false;
    v = v * 10 + (tag[i] - '0');
  }
  base = std::string(tag.substr(0, slash));
  version = v;
  return true;
}

/// Backticked first-column entries of markdown table rows, split into
/// schema tags (contain '/') and metric names.
void parse_doc_tables(std::string_view text, std::set<std::string>& doc_schemas,
                      std::set<std::string>& doc_metrics) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t line_end = text.find('\n', pos);
    if (line_end == std::string_view::npos) line_end = text.size();
    const std::string_view line = text.substr(pos, line_end - pos);
    pos = line_end + 1;
    // Rows look like: | `sim.makespan` | counter | ... |
    std::size_t cursor = 0;
    while (cursor < line.size() && (line[cursor] == ' ' || line[cursor] == '\t')) ++cursor;
    if (cursor >= line.size() || line[cursor] != '|') continue;
    cursor = line.find('`', cursor);
    if (cursor == std::string_view::npos) continue;
    const std::size_t close = line.find('`', cursor + 1);
    if (close == std::string_view::npos) continue;
    const std::string_view entry = line.substr(cursor + 1, close - cursor - 1);
    std::string base;
    int version = 0;
    if (entry.rfind("cdsf.", 0) == 0 && entry.find('/') != std::string_view::npos &&
        parse_schema_tag(entry, base, version)) {
      doc_schemas.emplace(entry);
    } else if (valid_metric_name(entry)) {
      doc_metrics.emplace(entry);
    }
  }
}

struct CodeEntry {
  std::size_t file = 0;
  std::size_t line = 0;
};

}  // namespace

RegistryInput load_registry_input(const std::string& registry_path,
                                  const std::string& doc_path) {
  RegistryInput input;
  if (!registry_path.empty()) {
    input.registry_path = registry_path;
    input.registry_text = read_file(registry_path);
  }
  if (!doc_path.empty()) {
    input.doc_path = doc_path;
    input.doc_text = read_file(doc_path);
  }
  return input;
}

RegistryResult check_registry(const ProjectIndex& index, const RegistryInput& input) {
  RegistryResult result;

  // --- code side (tests excluded: throwaway names, local registries) ----
  std::map<std::string, CodeEntry> code_schemas;  // tag → first emit site
  std::map<std::string, CodeEntry> code_metrics;  // name → first emit site
  for (const SchemaLiteral& schema : index.schemas) {
    if (has_segment(index.files[schema.file]->path(), "tests")) continue;
    code_schemas.emplace(schema.tag, CodeEntry{schema.file, schema.line});
  }
  for (const MetricLiteral& metric : index.metrics) {
    if (has_segment(index.files[metric.file]->path(), "tests")) continue;
    if (!valid_metric_name(metric.name)) continue;  // metric-name rule's turf
    code_metrics.emplace(metric.name, CodeEntry{metric.file, metric.line});
  }
  result.code_schemas = code_schemas.size();
  result.code_metrics = code_metrics.size();

  // --- registry side ----------------------------------------------------
  std::set<std::string> registry_schemas;
  std::set<std::string> registry_metrics;
  if (!input.registry_path.empty()) {
    obs::Json doc;
    try {
      doc = obs::Json::parse(input.registry_text);
    } catch (const std::exception& e) {
      throw std::runtime_error("obs registry " + input.registry_path + ": malformed JSON: " +
                               e.what());
    }
    const obs::Json* schema = doc.find("schema");
    if (schema == nullptr || schema->as_string() != kObsRegistrySchema) {
      throw std::runtime_error("obs registry " + input.registry_path + ": expected schema " +
                               kObsRegistrySchema);
    }
    if (const obs::Json* schemas = doc.find("schemas"); schemas != nullptr) {
      for (const obs::Json& entry : schemas->items()) {
        registry_schemas.insert(entry.as_string());
      }
    }
    if (const obs::Json* metrics = doc.find("metrics"); metrics != nullptr) {
      for (const obs::Json& entry : metrics->items()) {
        registry_metrics.insert(entry.as_string());
      }
    }
  }

  // --- doc side ---------------------------------------------------------
  std::set<std::string> doc_schemas;
  std::set<std::string> doc_metrics;
  if (!input.doc_path.empty()) {
    parse_doc_tables(input.doc_text, doc_schemas, doc_metrics);
  }

  const auto emit = [&](std::string file, std::size_t line, std::string message) {
    result.diagnostics.push_back(
        {std::move(file), line, kRegistryPass, std::move(message), false, kRegistryPass});
  };

  // Version-skew detection wants base → version maps for each side.
  const auto base_versions = [](const std::set<std::string>& tags) {
    std::map<std::string, std::set<int>> out;
    for (const std::string& tag : tags) {
      std::string base;
      int version = 0;
      if (parse_schema_tag(tag, base, version)) out[base].insert(version);
    }
    return out;
  };
  const auto registry_bases = base_versions(registry_schemas);
  const auto doc_bases = base_versions(doc_schemas);

  // --- code → registry/doc ---------------------------------------------
  for (const auto& [tag, site] : code_schemas) {
    const std::string& path = index.files[site.file]->path();
    std::string base;
    int version = 0;
    parse_schema_tag(tag, base, version);
    if (!input.registry_path.empty() && registry_schemas.count(tag) == 0) {
      const auto it = registry_bases.find(base);
      if (it != registry_bases.end()) {
        emit(path, site.line,
             "schema version skew: code emits \"" + tag + "\" but " + input.registry_path +
                 " registers version " + std::to_string(*it->second.rbegin()) +
                 "; bump both sides together");
      } else {
        emit(path, site.line, "schema \"" + tag + "\" is not registered in " +
                                  input.registry_path + "; add it to \"schemas\"");
      }
    }
    if (!input.doc_path.empty() && doc_schemas.count(tag) == 0) {
      const auto it = doc_bases.find(base);
      if (it != doc_bases.end()) {
        emit(path, site.line,
             "schema version skew: code emits \"" + tag + "\" but " + input.doc_path +
                 " documents version " + std::to_string(*it->second.rbegin()) +
                 "; update the schema table");
      } else {
        emit(path, site.line, "schema \"" + tag + "\" is not documented in " + input.doc_path +
                                  "; add a schema-table row");
      }
    }
  }
  for (const auto& [name, site] : code_metrics) {
    const std::string& path = index.files[site.file]->path();
    if (!input.registry_path.empty() && registry_metrics.count(name) == 0) {
      emit(path, site.line, "metric \"" + name + "\" is not registered in " +
                                input.registry_path + "; add it to \"metrics\"");
    }
    if (!input.doc_path.empty() && doc_metrics.count(name) == 0) {
      emit(path, site.line, "metric \"" + name + "\" is not documented in " + input.doc_path +
                                "; add a metric-table row");
    }
  }

  // --- registry/doc → code (orphans) ------------------------------------
  // A version mismatch on a base the code does emit is already reported as
  // skew above; orphan findings cover bases with no emitter at all.
  std::set<std::string> code_schema_bases;
  for (const auto& [tag, site] : code_schemas) {
    std::string base;
    int version = 0;
    if (parse_schema_tag(tag, base, version)) code_schema_bases.insert(base);
  }
  const auto base_of = [](const std::string& tag) {
    std::string base;
    int version = 0;
    parse_schema_tag(tag, base, version);
    return base;
  };
  for (const std::string& tag : registry_schemas) {
    if (code_schemas.count(tag) != 0 || code_schema_bases.count(base_of(tag)) != 0) continue;
    emit(input.registry_path, line_of_first(input.registry_text, "\"" + tag + "\""),
         "registry schema \"" + tag + "\" has no emitter in the scanned sources; remove it or "
         "restore the emitter");
  }
  for (const std::string& name : registry_metrics) {
    if (code_metrics.count(name) != 0) continue;
    emit(input.registry_path, line_of_first(input.registry_text, "\"" + name + "\""),
         "registry metric \"" + name + "\" has no emitter in the scanned sources; remove it "
         "or restore the emitter");
  }
  for (const std::string& tag : doc_schemas) {
    if (code_schemas.count(tag) != 0 || code_schema_bases.count(base_of(tag)) != 0) continue;
    emit(input.doc_path, line_of_first(input.doc_text, "`" + tag + "`"),
         "documented schema \"" + tag + "\" has no emitter in the scanned sources; drop the "
         "row or restore the emitter");
  }
  for (const std::string& name : doc_metrics) {
    if (code_metrics.count(name) != 0) continue;
    emit(input.doc_path, line_of_first(input.doc_text, "`" + name + "`"),
         "documented metric \"" + name + "\" has no emitter in the scanned sources; drop the "
         "row or restore the emitter");
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return result;
}

}  // namespace cdsf::lint
