// registry-sync pass: three-way diff between the schema tags and metric
// names the code emits, the checked-in registry (tools/obs_registry.json),
// and the tables in docs/observability.md.
//
// Registry (schema "cdsf.obs_registry/1"):
//   {
//     "schema": "cdsf.obs_registry/1",
//     "schemas": ["cdsf.run_report/1", ...],
//     "metrics": ["sim.makespan", ...]
//   }
//
// Code side: full-literal "cdsf.<name>/<version>" strings and registry
// metric-name literals from the project index, excluding tests/ (unit
// tests mint throwaway names; the contract governs production series).
// Doc side: the backticked first column of the markdown tables.
//
// Findings:
//   - undocumented: the code emits an entry absent from the registry or
//     the doc tables (anchored at the emitting line);
//   - orphaned: the registry or doc lists an entry nothing emits (anchored
//     at its line in the registry/doc file);
//   - version skew: the same schema base appears with different versions
//     in code vs registry/doc (anchored at the emitting line).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/rules.hpp"

namespace cdsf::lint {

/// Pass id used in diagnostics and allow(...) suppressions.
inline constexpr const char* kRegistryPass = "registry-sync";
/// Schema tag the registry file must carry.
inline constexpr const char* kObsRegistrySchema = "cdsf.obs_registry/1";

struct RegistryInput {
  std::string registry_path;  ///< tools/obs_registry.json (empty = skip side).
  std::string registry_text;
  std::string doc_path;       ///< docs/observability.md (empty = skip side).
  std::string doc_text;
};

/// Reads the two input files into a RegistryInput. A missing file throws
/// std::runtime_error; an empty path skips that side of the diff.
[[nodiscard]] RegistryInput load_registry_input(const std::string& registry_path,
                                                const std::string& doc_path);

struct RegistryResult {
  std::vector<Diagnostic> diagnostics;
  std::size_t code_schemas = 0;   ///< Distinct schema tags emitted by code.
  std::size_t code_metrics = 0;   ///< Distinct metric names emitted by code.
};

[[nodiscard]] RegistryResult check_registry(const ProjectIndex& index,
                                            const RegistryInput& input);

}  // namespace cdsf::lint
