#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "lint/text.hpp"

namespace cdsf::lint {

namespace {

// ---------------------------------------------------------------------------
// rng-source

class RngSourceRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "rng-source"; }
  [[nodiscard]] std::string_view summary() const override {
    return "raw C/std random sources outside util/rng.hpp break single-seed reproducibility";
  }
  void check(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    if (ends_with(normalize_path(file.path()), "util/rng.hpp")) return;
    const std::string_view text = file.scrubbed();
    // Call-form tokens: flag only when invoked, so a member or local named
    // e.g. `rand_limit` never matches. Token lists live in lint/text.hpp,
    // shared with the determinism-taint pass.
    for (const std::string_view token : kRngCallTokens) {
      for (std::size_t pos = find_word(text, token); pos != std::string_view::npos;
           pos = find_word(text, token, pos + 1)) {
        const std::size_t after = skip_ws(text, pos + token.size());
        if (after < text.size() && text[after] == '(') {
          out.push_back({file.path(), file.line_of(pos), std::string(id()),
                         std::string(token) +
                             "() is unseeded; draw from util::RngStream (util/rng.hpp) instead",
                         false, {}});
        }
      }
    }
    // Type tokens: any mention is a violation — constructing a raw engine
    // or an entropy source bypasses the SplitMix64 seed fan-out.
    for (const std::string_view token : kRngTypeTokens) {
      for (std::size_t pos = find_word(text, token); pos != std::string_view::npos;
           pos = find_word(text, token, pos + 1)) {
        out.push_back({file.path(), file.line_of(pos), std::string(id()),
                       "std::" + std::string(token) +
                           " bypasses the seed fan-out; use util::RngStream / "
                           "util::SeedSequence (util/rng.hpp)",
                       false, {}});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// wall-clock

/// The wall-clock token scan shared by WallClockRule (sim/dls/cdsf) and
/// SvcWallClockRule (svc/): one token list, one C-call heuristic, so the
/// two rules cannot drift apart on what counts as a host-clock read.
/// `remedy` names where time must come from instead.
void scan_wall_clock_tokens(const SourceFile& file, std::string_view rule_id,
                            std::string_view remedy, std::vector<Diagnostic>& out) {
  const std::string_view text = file.scrubbed();
  for (const std::string_view token : kWallClockTokens) {
    for (std::size_t pos = find_word(text, token); pos != std::string_view::npos;
         pos = find_word(text, token, pos + 1)) {
      out.push_back({file.path(), file.line_of(pos), std::string(rule_id),
                     std::string(token) + " reads the host clock; " + std::string(remedy),
                     false, {}});
    }
  }
  // C `time(...)` / `clock(...)` calls: member calls (obj.time(...),
  // obj->clock(...)) are someone's API, not the libc clock, and a preceding
  // identifier means a declaration — is_c_call_form (lint/text.hpp) owns
  // the heuristic, shared with the determinism-taint pass.
  for (const std::string_view token : kWallClockCCalls) {
    for (std::size_t pos = find_word(text, token); pos != std::string_view::npos;
         pos = find_word(text, token, pos + 1)) {
      if (!is_c_call_form(text, token, pos)) continue;
      out.push_back({file.path(), file.line_of(pos), std::string(rule_id),
                     std::string(token) + "() reads the host clock; " + std::string(remedy),
                     false, {}});
    }
  }
}

class WallClockRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "wall-clock"; }
  [[nodiscard]] std::string_view summary() const override {
    return "wall/monotonic clock reads in sim/, dls/, cdsf/ make deterministic paths time-dependent";
  }
  void check(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    if (!in_deterministic_path(file.path())) return;
    scan_wall_clock_tokens(file, id(),
                           "deterministic paths must derive time from "
                           "the simulation clock or an explicit parameter",
                           out);
  }
};

// ---------------------------------------------------------------------------
// svc-wall-clock

class SvcWallClockRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "svc-wall-clock"; }
  [[nodiscard]] std::string_view summary() const override {
    return "the scheduling service (svc/) is virtual-time only; host-clock reads belong "
           "nowhere but svc/virtual_time.hpp";
  }
  void check(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    if (!has_segment(file.path(), "svc")) return;
    // The single sanctioned time source: everything else in svc/ must take
    // time from the VirtualClock it defines.
    if (ends_with(normalize_path(file.path()), "svc/virtual_time.hpp")) return;
    scan_wall_clock_tokens(file, id(),
                           "the service replays byte-identically from a journal, so time "
                           "must come from svc/virtual_time.hpp (VirtualClock)",
                           out);
  }
};

// ---------------------------------------------------------------------------
// unordered-iteration

class UnorderedIterationRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "unordered-iteration"; }
  [[nodiscard]] std::string_view summary() const override {
    return "iterating an unordered container yields nondeterministic order in reports/traces/reductions";
  }
  void check(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    const std::string_view text = file.scrubbed();
    // Pass 1: names declared in this file with an unordered container type.
    static constexpr std::array<std::string_view, 4> kContainers = {
        "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
    std::vector<std::string> names;
    for (const std::string_view container : kContainers) {
      for (std::size_t pos = find_word(text, container); pos != std::string_view::npos;
           pos = find_word(text, container, pos + 1)) {
        std::size_t cursor = skip_ws(text, pos + container.size());
        if (cursor >= text.size() || text[cursor] != '<') continue;
        cursor = match_bracket(text, cursor);
        if (cursor == std::string_view::npos) continue;
        cursor = skip_ws(text, cursor);
        while (cursor < text.size() && (text[cursor] == '*' || text[cursor] == '&')) {
          cursor = skip_ws(text, cursor + 1);
        }
        std::size_t name_end = cursor;
        while (name_end < text.size() && is_ident_char(text[name_end])) ++name_end;
        if (name_end > cursor) names.emplace_back(text.substr(cursor, name_end - cursor));
      }
    }
    if (names.empty()) return;
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());

    auto flag = [&](std::size_t pos, const std::string& name) {
      out.push_back({file.path(), file.line_of(pos), std::string(id()),
                     "iteration over unordered container '" + name +
                         "' is nondeterministic; use std::map/std::set or copy + sort "
                         "before iterating",
                     false, {}});
    };
    // Pass 2a: range-for whose range expression mentions a tracked name.
    for (std::size_t pos = find_word(text, "for"); pos != std::string_view::npos;
         pos = find_word(text, "for", pos + 1)) {
      const std::size_t open = skip_ws(text, pos + 3);
      if (open >= text.size() || text[open] != '(') continue;
      const std::size_t close = match_bracket(text, open);
      if (close == std::string_view::npos) continue;
      const std::string_view header = text.substr(open, close - open);
      std::size_t colon = std::string_view::npos;
      for (std::size_t i = 1; i + 1 < header.size(); ++i) {
        if (header[i] == ':' && header[i - 1] != ':' && header[i + 1] != ':') {
          colon = i;
          break;
        }
      }
      if (colon == std::string_view::npos) continue;
      const std::string_view range = header.substr(colon + 1);
      for (const std::string& name : names) {
        if (find_word(range, name) != std::string_view::npos) {
          flag(pos, name);
          break;
        }
      }
    }
    // Pass 2b: explicit iterator walks. `.begin()` is the iteration signal;
    // `.end()` alone is the `find() != end()` lookup idiom and stays legal.
    static constexpr std::array<std::string_view, 4> kIterFns = {"begin", "cbegin", "rbegin",
                                                                 "crbegin"};
    for (const std::string& name : names) {
      for (std::size_t pos = find_word(text, name); pos != std::string_view::npos;
           pos = find_word(text, name, pos + 1)) {
        std::size_t cursor = skip_ws(text, pos + name.size());
        if (cursor >= text.size() || text[cursor] != '.') continue;
        cursor = skip_ws(text, cursor + 1);
        for (const std::string_view fn : kIterFns) {
          if (text.compare(cursor, fn.size(), fn) == 0) {
            const std::size_t after = skip_ws(text, cursor + fn.size());
            if (after < text.size() && text[after] == '(' &&
                !is_ident_char(text[cursor + fn.size()])) {
              flag(pos, name);
            }
            break;
          }
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// bare-mutex-lock

class BareMutexLockRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "bare-mutex-lock"; }
  [[nodiscard]] std::string_view summary() const override {
    return "bare lock()/unlock() calls leak on exceptions; use std::scoped_lock / lock_guard";
  }
  void check(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    const std::string_view text = file.scrubbed();
    static constexpr std::array<std::string_view, 3> kMembers = {"lock", "unlock", "try_lock"};
    for (const std::string_view member : kMembers) {
      for (std::size_t pos = find_word(text, member); pos != std::string_view::npos;
           pos = find_word(text, member, pos + 1)) {
        const std::size_t after = skip_ws(text, pos + member.size());
        if (after >= text.size() || text[after] != '(') continue;
        const std::size_t before = prev_non_ws(text, pos);
        const bool member_call =
            before != std::string_view::npos &&
            (text[before] == '.' ||
             (text[before] == '>' && before > 0 && text[before - 1] == '-'));
        if (!member_call) continue;
        // weak_ptr::lock() is the idiomatic promotion, not a mutex grab:
        // exempt receivers whose name mentions ptr/weak.
        const std::size_t recv_start = before > 0 && text[before] == '>' ? before - 1 : before;
        std::size_t recv = recv_start;
        while (recv > 0 && is_ident_char(text[recv - 1])) --recv;
        const std::string_view receiver = text.substr(recv, recv_start - recv);
        if (receiver.find("ptr") != std::string_view::npos ||
            receiver.find("weak") != std::string_view::npos) {
          continue;
        }
        out.push_back({file.path(), file.line_of(pos), std::string(id()),
                       "bare ." + std::string(member) +
                           "() is not exception-safe; hold mutexes through std::scoped_lock, "
                           "std::lock_guard, or std::unique_lock",
                       false, {}});
      }
    }
    for (const std::string_view fn : {std::string_view("pthread_mutex_lock"),
                                      std::string_view("pthread_mutex_unlock")}) {
      for (std::size_t pos = find_word(text, fn); pos != std::string_view::npos;
           pos = find_word(text, fn, pos + 1)) {
        out.push_back({file.path(), file.line_of(pos), std::string(id()),
                       std::string(fn) + " bypasses RAII; use std::mutex with std::scoped_lock",
                       false, {}});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// report-schema-tag

class ReportSchemaTagRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "report-schema-tag"; }
  [[nodiscard]] std::string_view summary() const override {
    return "every Json make_*report() in src/obs/ must stamp a \"schema\" key on its document";
  }
  void check(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    if (!has_segment(file.path(), "obs")) return;
    const std::string_view text = file.scrubbed();
    for (std::size_t pos = text.find("make_"); pos != std::string::npos;
         pos = text.find("make_", pos + 1)) {
      if (pos > 0 && is_ident_char(text[pos - 1])) continue;
      std::size_t name_end = pos;
      while (name_end < text.size() && is_ident_char(text[name_end])) ++name_end;
      const std::string_view name = text.substr(pos, name_end - pos);
      if (name.find("report") == std::string_view::npos) continue;
      // Require a Json return type right before the name (obs::Json included,
      // as `Json` is then the preceding identifier token as well).
      const std::size_t before = prev_non_ws(text, pos);
      if (before == std::string_view::npos || before < 3 ||
          text.compare(before - 3, 4, "Json") != 0 ||
          (before >= 4 && is_ident_char(text[before - 4]))) {
        continue;
      }
      std::size_t cursor = skip_ws(text, name_end);
      if (cursor >= text.size() || text[cursor] != '(') continue;
      cursor = match_bracket(text, cursor);
      if (cursor == std::string_view::npos) continue;
      cursor = skip_ws(text, cursor);
      if (cursor >= text.size() || text[cursor] != '{') continue;  // declaration only
      const std::size_t body_end = match_bracket(text, cursor);
      if (body_end == std::string_view::npos) continue;
      // Literal contents are blanked in the scrubbed view; the raw view is
      // offset-aligned, so read the body there to find set("schema").
      const std::string_view body =
          std::string_view(file.raw()).substr(cursor, body_end - cursor);
      if (body.find("set(\"schema\"") == std::string_view::npos) {
        out.push_back({file.path(), file.line_of(pos), std::string(id()),
                       std::string(name) +
                           " builds a report document without set(\"schema\", ...); consumers "
                           "cannot version-gate it",
                       false, {}});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// metric-name

class MetricNameRule final : public Rule {
 public:
  [[nodiscard]] std::string_view id() const override { return "metric-name"; }
  [[nodiscard]] std::string_view summary() const override {
    return "registry metric name literals must match ^(sim|cdsf|obs)\\.[a-z0-9_.]+$ so "
           "exported series group by subsystem";
  }
  void check(const SourceFile& file, std::vector<Diagnostic>& out) const override {
    // Unit tests build throwaway local registries with deliberately tiny
    // names ("c", "h"); the convention governs production series only.
    if (has_segment(file.path(), "tests")) return;
    const std::string_view text = file.scrubbed();
    // Registry mutators whose first argument is the metric name. A
    // non-literal first argument means either a different API (Batch::add,
    // StreamingSummary::add) or a computed name the lexer cannot judge.
    static constexpr std::array<std::string_view, 4> kMembers = {"add", "observe", "set_gauge",
                                                                 "set_histogram_bounds"};
    for (const std::string_view member : kMembers) {
      for (std::size_t pos = find_word(text, member); pos != std::string_view::npos;
           pos = find_word(text, member, pos + 1)) {
        const std::size_t open = skip_ws(text, pos + member.size());
        if (open >= text.size() || text[open] != '(') continue;
        const std::size_t before = prev_non_ws(text, pos);
        const bool member_call =
            before != std::string_view::npos &&
            (text[before] == '.' ||
             (text[before] == '>' && before > 0 && text[before - 1] == '-'));
        if (!member_call) continue;
        check_name_at(file, skip_ws(text, open + 1), out);
      }
    }
    // ScopedTimer carries its metric name as the first string literal of
    // the constructor argument list (the registry reference precedes it).
    static constexpr std::string_view kTimer = "ScopedTimer";
    for (std::size_t pos = find_word(text, kTimer); pos != std::string_view::npos;
         pos = find_word(text, kTimer, pos + 1)) {
      std::size_t open = skip_ws(text, pos + kTimer.size());
      // A declaration (`ScopedTimer t(...)`) puts the variable name between
      // the type and the argument list; skip it to reach the open paren.
      if (open < text.size() && is_ident_char(text[open])) {
        std::size_t name_end = open;
        while (name_end < text.size() && is_ident_char(text[name_end])) ++name_end;
        open = skip_ws(text, name_end);
      }
      if (open >= text.size() || text[open] != '(') continue;
      const std::size_t close = match_bracket(text, open);
      if (close == std::string_view::npos) continue;
      const std::size_t quote = text.find('"', open);
      if (quote < close) check_name_at(file, quote, out);
    }
  }

 private:
  /// Validates the string literal starting at scrubbed offset `pos` (if
  /// any): ^(sim|cdsf|obs)\.[a-z0-9_.]+$ .
  void check_name_at(const SourceFile& file, std::size_t pos,
                     std::vector<Diagnostic>& out) const {
    const std::string_view text = file.scrubbed();
    if (pos >= text.size() || text[pos] != '"') return;  // not a literal name
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string_view::npos) return;
    // Literal contents are blanked in the scrubbed view; the raw view is
    // offset-aligned, so the actual name lives there.
    const std::string_view name =
        std::string_view(file.raw()).substr(pos + 1, end - pos - 1);
    if (valid_metric_name(name)) return;
    out.push_back({file.path(), file.line_of(pos), std::string(id()),
                   "metric name \"" + std::string(name) +
                       "\" must match ^(sim|cdsf|obs)\\.[a-z0-9_.]+$ (subsystem prefix, "
                       "lowercase dotted path)",
                   false, {}});
  }

  static bool valid_metric_name(std::string_view name) {
    static constexpr std::array<std::string_view, 3> kPrefixes = {"sim.", "cdsf.", "obs."};
    std::string_view rest;
    for (const std::string_view prefix : kPrefixes) {
      if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
        rest = name.substr(prefix.size());
        break;
      }
    }
    if (rest.empty()) return false;
    return std::all_of(rest.begin(), rest.end(), [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' || c == '.';
    });
  }
};

}  // namespace

bool in_deterministic_path(std::string_view path) {
  return has_segment(path, "sim") || has_segment(path, "dls") || has_segment(path, "cdsf");
}

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<RngSourceRule>());
  rules.push_back(std::make_unique<WallClockRule>());
  rules.push_back(std::make_unique<SvcWallClockRule>());
  rules.push_back(std::make_unique<UnorderedIterationRule>());
  rules.push_back(std::make_unique<BareMutexLockRule>());
  rules.push_back(std::make_unique<ReportSchemaTagRule>());
  rules.push_back(std::make_unique<MetricNameRule>());
  return rules;
}

}  // namespace cdsf::lint
