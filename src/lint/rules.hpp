// Rule interface and the built-in CDSF rule set for cdsf_lint.
//
// Rules are lexical: they pattern-match identifiers in the scrubbed view of
// a SourceFile (comments and literal contents blanked), so they are fast,
// dependency-free, and immune to matches inside strings or comments. They
// are deliberately conservative approximations of the real invariants —
// the escape hatch for a justified exception is a
// `// cdsf-lint: allow(<rule>)` suppression, which the engine counts and
// lists rather than hides.
//
// Built-in rules (ids are stable; docs/static_analysis.md documents each):
//   rng-source          — no rand()/srand()/std::random_device/raw std
//                         engines outside util/rng.hpp; all randomness
//                         must flow from util::RngStream / SeedSequence.
//   wall-clock          — no wall/monotonic clock reads in the
//                         deterministic subsystems (sim/, dls/, cdsf/).
//   unordered-iteration — no iteration over std::unordered_{map,set,...}
//                         declared in the same file; iteration order is
//                         nondeterministic and poisons reports, traces,
//                         and replicated-run reductions.
//   bare-mutex-lock     — no bare .lock()/.unlock() calls; use the RAII
//                         guards (std::scoped_lock & friends).
//   report-schema-tag   — every `Json make_*report(...)` in src/obs/ must
//                         stamp a "schema" key on the document it builds.
//   metric-name         — MetricsRegistry name literals (add/observe/
//                         set_gauge/set_histogram_bounds/ScopedTimer) must
//                         match ^(sim|cdsf|obs)\.[a-z0-9_.]+$ outside
//                         tests/, so exported series group by subsystem.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/source.hpp"

namespace cdsf::lint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
  /// Analysis pass that produced the finding ("rules" for the per-file
  /// rule set; project passes stamp their own id). The engine fills this
  /// in for rule diagnostics, so rules leave it empty.
  std::string pass;
};

class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable kebab-case id used in diagnostics and allow(...) comments.
  [[nodiscard]] virtual std::string_view id() const = 0;
  /// One-line human description for --list-rules.
  [[nodiscard]] virtual std::string_view summary() const = 0;
  /// Emits diagnostics for `file` (suppressions are applied by the engine).
  virtual void check(const SourceFile& file, std::vector<Diagnostic>& out) const = 0;
};

/// The full built-in rule set, in stable order.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> default_rules();

/// True when `path` lies in a deterministic subsystem (a /sim/, /dls/, or
/// /cdsf/ path segment) where wall-clock reads are forbidden.
[[nodiscard]] bool in_deterministic_path(std::string_view path);

}  // namespace cdsf::lint
