#include "lint/source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cdsf::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '-';
}

/// Parses `cdsf-lint: allow(...)` / `allow-file(...)` out of one comment
/// body. `comment_line` is where the comment starts; `own_line` means only
/// whitespace precedes the comment on that line, in which case a line-level
/// suppression targets the next line instead.
void parse_suppressions(std::string_view comment, std::size_t comment_line, bool own_line,
                        std::vector<Suppression>& out) {
  static constexpr std::string_view kMarker = "cdsf-lint:";
  std::size_t pos = comment.find(kMarker);
  while (pos != std::string_view::npos) {
    std::size_t cursor = pos + kMarker.size();
    while (cursor < comment.size() &&
           std::isspace(static_cast<unsigned char>(comment[cursor])) != 0) {
      ++cursor;
    }
    bool file_wide = false;
    static constexpr std::string_view kAllowFile = "allow-file(";
    static constexpr std::string_view kAllow = "allow(";
    if (comment.compare(cursor, kAllowFile.size(), kAllowFile) == 0) {
      file_wide = true;
      cursor += kAllowFile.size();
    } else if (comment.compare(cursor, kAllow.size(), kAllow) == 0) {
      cursor += kAllow.size();
    } else {
      pos = comment.find(kMarker, pos + kMarker.size());
      continue;
    }
    const std::size_t close = comment.find(')', cursor);
    if (close == std::string_view::npos) break;
    // Comma-separated rule ids inside the parentheses. An entry containing
    // anything but [ident chars, '-'] is a placeholder (docs write
    // `allow(<rule>)`) and is discarded, not stripped to a bogus id.
    std::string rule;
    bool valid = true;
    for (std::size_t i = cursor; i <= close; ++i) {
      const char c = i < close ? comment[i] : ',';
      if (c == ',') {
        if (valid && !rule.empty()) {
          Suppression s;
          s.rule = rule;
          s.line = comment_line;
          s.file_wide = file_wide;
          s.target_line = file_wide ? 0 : (own_line ? comment_line + 1 : comment_line);
          out.push_back(std::move(s));
        }
        rule.clear();
        valid = true;
      } else if (is_ident_char(c)) {
        rule += c;
      } else if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        valid = false;
      }
    }
    pos = comment.find(kMarker, close);
  }
}

/// True when the identifier token ending just before `pos` (the offset of
/// a quote) is one of the literal encoding prefixes, so `u8"x"`, `LR"(x)"`
/// etc. enter literal state while `1'000` digit separators and identifiers
/// like `FOO"bar"` (macro pastes) do not.
bool literal_prefix_before(const std::string& raw, std::size_t pos,
                           bool raw_string_prefixes) {
  std::size_t start = pos;
  while (start > 0 && is_ident_char(raw[start - 1])) --start;
  if (start == pos) return false;                       // no prefix at all
  if (start > 0 && is_ident_char(raw[start - 1])) return false;
  const std::string_view prefix = std::string_view(raw).substr(start, pos - start);
  if (raw_string_prefixes) {
    return prefix == "R" || prefix == "u8R" || prefix == "uR" || prefix == "UR" ||
           prefix == "LR";
  }
  return prefix == "u8" || prefix == "u" || prefix == "U" || prefix == "L";
}

}  // namespace

SourceFile SourceFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cdsf_lint: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return SourceFile(path, buffer.str());
}

SourceFile SourceFile::from_string(std::string path, std::string text) {
  return SourceFile(std::move(path), std::move(text));
}

SourceFile::SourceFile(std::string path, std::string text)
    : path_(std::move(path)), raw_(std::move(text)) {
  line_starts_.push_back(0);
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    if (raw_[i] == '\n') line_starts_.push_back(i + 1);
  }
  scrub();
}

std::size_t SourceFile::line_of(std::size_t offset) const {
  const auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<std::size_t>(it - line_starts_.begin());
}

bool SourceFile::suppressed(std::string_view rule, std::size_t line) const {
  for (const Suppression& s : suppressions_) {
    if (s.rule != rule) continue;
    if (s.file_wide || s.target_line == line || s.line == line) return true;
  }
  return false;
}

void SourceFile::scrub() {
  scrubbed_ = raw_;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;           // raw-string delimiter, e.g. )foo"
  std::size_t comment_start = 0;   // offset where the current comment began
  bool comment_own_line = false;

  auto only_ws_before = [&](std::size_t offset) {
    const std::size_t line_start = line_starts_[line_of(offset) - 1];
    for (std::size_t i = line_start; i < offset; ++i) {
      if (std::isspace(static_cast<unsigned char>(raw_[i])) == 0) return false;
    }
    return true;
  };
  auto finish_comment = [&](std::size_t end_offset) {
    parse_suppressions(std::string_view(raw_).substr(comment_start, end_offset - comment_start),
                       line_of(comment_start), comment_own_line, suppressions_);
  };

  for (std::size_t i = 0; i < raw_.size(); ++i) {
    const char c = raw_[i];
    const char next = i + 1 < raw_.size() ? raw_[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          comment_start = i;
          comment_own_line = only_ws_before(i);
          scrubbed_[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          comment_start = i;
          comment_own_line = only_ws_before(i);
          scrubbed_[i] = ' ';
        } else if (c == '"' && literal_prefix_before(raw_, i, /*raw_string_prefixes=*/true)) {
          // Raw string literal, any encoding prefix: [u8|u|U|L]R"delim(...)delim"
          std::size_t paren = i + 1;
          while (paren < raw_.size() && raw_[paren] != '(') ++paren;
          // push_back/append instead of operator+ or literal assignment:
          // GCC 12 at -O3 misattributes the temporary-string copies here as
          // overlapping memcpy (-Wrestrict).
          raw_delim.clear();
          raw_delim.push_back(')');
          raw_delim.append(raw_, i + 1, paren - (i + 1));
          raw_delim.push_back('"');
          state = State::kRawString;
          i = paren;  // keep prefix + opening paren visible
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !is_ident_char(raw_[i - 1]) ||
                                 literal_prefix_before(raw_, i, /*raw_string_prefixes=*/false))) {
          // Ident check keeps digit separators (1'000'000) out of char
          // state; the prefix check lets u8'x' / L'x' wide chars in.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          // A backslash (optionally with a CR) right before the newline is
          // a line splice: the comment continues on the next line.
          const bool spliced =
              (i >= 1 && raw_[i - 1] == '\\') ||
              (i >= 2 && raw_[i - 1] == '\r' && raw_[i - 2] == '\\');
          if (!spliced) {
            finish_comment(i);
            state = State::kCode;
          }
        } else {
          scrubbed_[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          finish_comment(i + 2);
          scrubbed_[i] = ' ';
          scrubbed_[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          scrubbed_[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          scrubbed_[i] = ' ';
          if (next != '\n') scrubbed_[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          scrubbed_[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          scrubbed_[i] = ' ';
          if (next != '\n') scrubbed_[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          scrubbed_[i] = ' ';
        }
        break;
      case State::kRawString:
        if (raw_.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;  // keep the closing )delim" visible
          state = State::kCode;
        } else if (c != '\n') {
          scrubbed_[i] = ' ';
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    finish_comment(raw_.size());
  }
}

}  // namespace cdsf::lint
