// Lexical front end for cdsf_lint.
//
// SourceFile loads one translation unit and produces a "scrubbed" copy of
// the text in which comment bodies and string/character-literal contents
// are replaced by spaces of the same length. Scrubbed and raw text are
// byte-for-byte aligned (identical offsets and line structure), so rules
// can pattern-match code in the scrubbed view and still read literal
// contents from the raw view at the same offset when they need to.
//
// Suppression comments are collected during the same pass:
//   // cdsf-lint: allow(<rule>, <rule>)   — suppresses on this line (or the
//                                           next line when the comment
//                                           stands alone on its line)
//   // cdsf-lint: allow-file(<rule>)      — suppresses for the whole file
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cdsf::lint {

/// One parsed `cdsf-lint: allow(...)` / `allow-file(...)` marker.
struct Suppression {
  std::string rule;        ///< Rule id named inside allow(...).
  std::size_t line = 0;    ///< 1-based line the comment starts on.
  std::size_t target_line = 0;  ///< Line the suppression applies to (0 when file-wide).
  bool file_wide = false;
};

class SourceFile {
 public:
  /// Reads `path` from disk. Throws std::runtime_error when unreadable.
  static SourceFile load(const std::string& path);
  /// Builds a SourceFile from an in-memory buffer (tests, fixtures).
  static SourceFile from_string(std::string path, std::string text);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  /// Raw text as read from disk.
  [[nodiscard]] const std::string& raw() const noexcept { return raw_; }
  /// Comment bodies and literal contents blanked; same length as raw().
  [[nodiscard]] const std::string& scrubbed() const noexcept { return scrubbed_; }
  [[nodiscard]] const std::vector<Suppression>& suppressions() const noexcept {
    return suppressions_;
  }

  /// 1-based line number of byte offset `offset` into raw()/scrubbed().
  [[nodiscard]] std::size_t line_of(std::size_t offset) const;

  /// True when `rule` is suppressed at `line` (line-level or file-wide).
  [[nodiscard]] bool suppressed(std::string_view rule, std::size_t line) const;

 private:
  SourceFile(std::string path, std::string text);
  void scrub();

  std::string path_;
  std::string raw_;
  std::string scrubbed_;
  std::vector<std::size_t> line_starts_;  // byte offset of each line start
  std::vector<Suppression> suppressions_;
};

}  // namespace cdsf::lint
