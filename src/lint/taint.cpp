#include "lint/taint.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/text.hpp"

namespace cdsf::lint {

namespace {

/// Rules whose file-wide allowance also exempts a file from seeding or
/// being flagged by the taint pass (the allowance already documents why
/// the file may touch the clock / RNG).
bool file_wide_exempt(const SourceFile& file) {
  for (const Suppression& s : file.suppressions()) {
    if (!s.file_wide) continue;
    if (s.rule == "wall-clock" || s.rule == "svc-wall-clock" || s.rule == "rng-source" ||
        s.rule == kTaintPass) {
      return true;
    }
  }
  return false;
}

bool trusted_file(const SourceFile& file) {
  const std::string path = normalize_path(file.path());
  if (ends_with(path, "util/rng.hpp")) return true;
  if (ends_with(path, "svc/virtual_time.hpp")) return true;
  if (has_segment(path, "obs")) return true;
  return file_wide_exempt(file);
}

/// Rule ids whose line-level suppression silences a seed at that line.
bool seed_suppressed(const SourceFile& file, std::size_t line) {
  return file.suppressed("wall-clock", line) || file.suppressed("svc-wall-clock", line) ||
         file.suppressed("rng-source", line) || file.suppressed(kTaintPass, line);
}

struct Seed {
  std::string token;    ///< The clock/RNG token hit.
  std::size_t line = 0;
};

/// First clock/RNG token hit inside [begin, end) of `file`'s scrubbed view,
/// honouring line-level suppressions of the underlying lexical rules.
bool find_seed_in_span(const SourceFile& file, std::size_t begin, std::size_t end, Seed& out) {
  const std::string_view body = std::string_view(file.scrubbed()).substr(0, end);
  bool found = false;
  std::size_t best_pos = 0;
  const auto consider = [&](std::size_t pos, std::string_view token) {
    const std::size_t line = file.line_of(pos);
    if (seed_suppressed(file, line)) return;
    if (!found || pos < best_pos) {
      // Track the earliest hit for a stable, informative message.
      found = true;
      best_pos = pos;
      out.token = std::string(token);
      out.line = line;
    }
  };
  for (const std::string_view token : kWallClockTokens) {
    for (std::size_t pos = find_word(body, token, begin); pos != std::string_view::npos;
         pos = find_word(body, token, pos + 1)) {
      consider(pos, token);
    }
  }
  for (const std::string_view token : kRngTypeTokens) {
    for (std::size_t pos = find_word(body, token, begin); pos != std::string_view::npos;
         pos = find_word(body, token, pos + 1)) {
      consider(pos, token);
    }
  }
  for (const std::string_view token : kWallClockCCalls) {
    for (std::size_t pos = find_word(body, token, begin); pos != std::string_view::npos;
         pos = find_word(body, token, pos + 1)) {
      if (is_c_call_form(body, token, pos)) consider(pos, token);
    }
  }
  for (const std::string_view token : kRngCallTokens) {
    for (std::size_t pos = find_word(body, token, begin); pos != std::string_view::npos;
         pos = find_word(body, token, pos + 1)) {
      if (is_c_call_form(body, token, pos)) consider(pos, token);
    }
  }
  return found;
}

bool in_src(std::string_view path) { return has_segment(path, "src"); }

/// True when the function's defining file lies in a subsystem whose
/// behaviour must be time- and entropy-independent.
bool in_flagged_subsystem(std::string_view path) {
  return in_deterministic_path(path) || has_segment(path, "svc");
}

}  // namespace

TaintResult check_determinism_taint(const ProjectIndex& index) {
  TaintResult result;
  const std::size_t function_count = index.functions.size();

  // 1. Seeds: functions whose own body touches the clock / raw RNG.
  std::vector<Seed> seed_info(function_count);
  std::vector<bool> is_seed(function_count, false);
  for (std::size_t fi = 0; fi < function_count; ++fi) {
    const FunctionDef& def = index.functions[fi];
    const SourceFile& file = *index.files[def.file];
    if (trusted_file(file)) continue;
    if (find_seed_in_span(file, def.body_begin, def.body_end, seed_info[fi])) {
      is_seed[fi] = true;
      ++result.seeds;
    }
  }

  // 2. Reverse call edges (callee → callers) with conservative resolution.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> callers(
      function_count);  // callee → (caller, call line)
  for (const CallRef& call : index.calls) {
    const auto it = index.functions_by_name.find(call.name);
    if (it == index.functions_by_name.end()) continue;
    const std::size_t caller_file = index.functions[call.caller].file;
    const std::string& caller_path = index.files[caller_file]->path();

    // Same-file definitions win outright.
    std::vector<std::size_t> candidates;
    for (const std::size_t fi : it->second) {
      if (index.functions[fi].file == caller_file) candidates.push_back(fi);
    }
    if (candidates.empty()) {
      // Library callers must not bind to harness helpers with the same
      // name; a caller under src/ only resolves into src/.
      const bool caller_in_src = in_src(caller_path);
      for (const std::size_t fi : it->second) {
        if (caller_in_src && !in_src(index.files[index.functions[fi].file]->path())) continue;
        candidates.push_back(fi);
      }
      // Cross-file resolution demands a unique definition; an ambiguous
      // name (overloads / unrelated same-named helpers) binds to nothing.
      if (candidates.size() != 1) continue;
    }
    for (const std::size_t callee : candidates) {
      if (callee == call.caller) continue;
      callers[callee].emplace_back(call.caller, call.line);
    }
  }

  // 3. BFS from the seeds along reverse edges, recording the discovery
  //    parent so each flagged function carries a concrete call chain.
  std::vector<std::size_t> parent(function_count, ProjectIndex::npos);
  std::vector<bool> tainted(function_count, false);
  std::deque<std::size_t> queue;
  // Deterministic frontier order: seeds by (path, line).
  std::vector<std::size_t> seeds;
  for (std::size_t fi = 0; fi < function_count; ++fi) {
    if (is_seed[fi]) seeds.push_back(fi);
  }
  std::sort(seeds.begin(), seeds.end(), [&](std::size_t a, std::size_t b) {
    const FunctionDef& fa = index.functions[a];
    const FunctionDef& fb = index.functions[b];
    const std::string& pa = index.files[fa.file]->path();
    const std::string& pb = index.files[fb.file]->path();
    if (pa != pb) return pa < pb;
    return fa.line < fb.line;
  });
  for (const std::size_t fi : seeds) {
    tainted[fi] = true;
    queue.push_back(fi);
  }
  while (!queue.empty()) {
    const std::size_t callee = queue.front();
    queue.pop_front();
    // Trusted callers absorb taint rather than propagate it: a clock read
    // wrapped by util/rng.hpp or virtual_time.hpp is the sanctioned path.
    for (const auto& [caller, line] : callers[callee]) {
      if (tainted[caller]) continue;
      if (trusted_file(*index.files[index.functions[caller].file])) continue;
      tainted[caller] = true;
      parent[caller] = callee;
      queue.push_back(caller);
    }
  }
  for (std::size_t fi = 0; fi < function_count; ++fi) {
    if (tainted[fi]) ++result.tainted;
  }

  // 4. Flag indirectly tainted functions in the deterministic subsystems.
  //    Direct seeds there are the lexical rules' findings already — the
  //    taint pass owns only what file-local matching cannot see.
  for (std::size_t fi = 0; fi < function_count; ++fi) {
    if (!tainted[fi] || is_seed[fi]) continue;
    const FunctionDef& def = index.functions[fi];
    const SourceFile& file = *index.files[def.file];
    if (!in_flagged_subsystem(file.path())) continue;
    if (trusted_file(file)) continue;
    // Reconstruct the chain down to the seed.
    std::string chain = def.display;
    std::size_t cursor = fi;
    std::size_t seed_fn = fi;
    while (parent[cursor] != ProjectIndex::npos) {
      cursor = parent[cursor];
      chain += " -> " + index.functions[cursor].display;
      seed_fn = cursor;
    }
    const FunctionDef& seed_def = index.functions[seed_fn];
    const Seed& seed = seed_info[seed_fn];
    result.diagnostics.push_back(
        {file.path(), def.line, kTaintPass,
         "'" + def.display + "' transitively reaches a host clock/RNG source: " + chain +
             " (" + index.files[seed_def.file]->path() + ":" + std::to_string(seed.line) +
             " uses " + seed.token + "); route time/randomness through the simulation "
             "clock, util::RngStream, or svc/virtual_time.hpp",
         false, kTaintPass});
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return result;
}

}  // namespace cdsf::lint
