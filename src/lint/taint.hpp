// determinism-taint pass: transitive propagation of host-clock / raw-RNG
// reads over the indexed call graph.
//
// The file-local wall-clock / rng-source rules catch a clock read *in* a
// deterministic subsystem; this pass catches the laundered version — a
// helper in util/ (or anywhere outside the deterministic tree) that reads
// the host clock and is then called from sim//dls//cdsf//svc/. Seeds are
// the same token sets the lexical rules use (lint/text.hpp, single source
// of truth); taint flows callee→caller over the name-resolved call graph
// and a diagnostic is emitted at the definition of every function in a
// deterministic subsystem that can reach a seed, with the full call chain
// in the message.
//
// Trusted sources never seed and are never flagged: util/rng.hpp (the
// seeded RNG fan-out), svc/virtual_time.hpp (the sanctioned clock), all of
// obs/ (timestamps are observability metadata, excluded from byte-compare
// scopes), and files that file-wide-allow the underlying lexical rule.
// Call resolution is conservative: same-file definitions win, src/ callers
// only bind to src/ definitions, and an ambiguous name (multiple unrelated
// definitions) resolves to nothing rather than guessing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/rules.hpp"

namespace cdsf::lint {

/// Pass id used in diagnostics and allow(...) suppressions.
inline constexpr const char* kTaintPass = "determinism-taint";

struct TaintResult {
  std::vector<Diagnostic> diagnostics;
  std::size_t seeds = 0;    ///< Functions directly touching clock/RNG.
  std::size_t tainted = 0;  ///< Functions reachable from a seed (any file).
};

[[nodiscard]] TaintResult check_determinism_taint(const ProjectIndex& index);

}  // namespace cdsf::lint
