// Shared lexical helpers for the lint rules and the project-wide indexer.
//
// Everything here operates on the *scrubbed* view of a SourceFile (comments
// and literal contents blanked, offsets preserved), so callers can match
// code tokens without tripping over prose or string contents, and can still
// read literal bodies from the raw view at the same offsets.
#pragma once

#include <array>
#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

namespace cdsf::lint {

[[nodiscard]] inline bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] inline std::string normalize_path(std::string_view path) {
  std::string out(path);
  for (char& c : out) {
    if (c == '\\') c = '/';
  }
  return out;
}

/// True when `path` contains `segment` as a whole directory component
/// (`/sim/` infix or `sim/` prefix).
[[nodiscard]] inline bool has_segment(std::string_view path, std::string_view segment) {
  const std::string normalized = normalize_path(path);
  // append() instead of operator+ (GCC 12 -O3 -Wrestrict false positive).
  std::string infix = "/";
  infix.append(segment).append("/");
  if (normalized.find(infix) != std::string::npos) return true;
  std::string prefix(segment);
  prefix.append("/");
  return normalized.rfind(prefix, 0) == 0;
}

[[nodiscard]] inline bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Offset of the next word-bounded occurrence of `word` in `text` at or
/// after `from`; npos when absent.
[[nodiscard]] inline std::size_t find_word(std::string_view text, std::string_view word,
                                           std::size_t from = 0) {
  std::size_t pos = text.find(word, from);
  while (pos != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return pos;
    pos = text.find(word, pos + 1);
  }
  return std::string_view::npos;
}

[[nodiscard]] inline std::size_t skip_ws(std::string_view text, std::size_t pos) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
  return pos;
}

/// Last non-whitespace offset strictly before `pos`; npos when none.
[[nodiscard]] inline std::size_t prev_non_ws(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) return pos;
  }
  return std::string_view::npos;
}

/// Offset just past the bracket-matched region opened by the bracket at
/// `open` ('(' / '<' / '{'); npos when unbalanced. '<' matching is a
/// heuristic good enough for template argument lists in declarations.
[[nodiscard]] inline std::size_t match_bracket(std::string_view text, std::size_t open) {
  const char open_char = text[open];
  const char close_char = open_char == '(' ? ')' : open_char == '<' ? '>' : '}';
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == open_char) {
      ++depth;
    } else if (c == close_char) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

/// Start offset of the identifier whose last character sits at `end`
/// (inclusive); `end + 1` when the character at `end` is not ident.
[[nodiscard]] inline std::size_t ident_start(std::string_view text, std::size_t end) {
  if (end >= text.size() || !is_ident_char(text[end])) return end + 1;
  std::size_t start = end;
  while (start > 0 && is_ident_char(text[start - 1])) --start;
  return start;
}

/// True when the non-whitespace token just before `pos` is `.` or `->`
/// (i.e. `pos` begins a member access).
[[nodiscard]] inline bool preceded_by_member_access(std::string_view text, std::size_t pos) {
  const std::size_t before = prev_non_ws(text, pos);
  return before != std::string_view::npos &&
         (text[before] == '.' ||
          (text[before] == '>' && before > 0 && text[before - 1] == '-'));
}

/// The single source of truth for what counts as a host-clock read: the
/// chrono clock types plus the POSIX/libc formatting-and-reading calls.
/// Shared by the wall-clock rules (sim/dls/cdsf and svc) and the
/// determinism-taint pass, so the scanners can never drift apart.
inline constexpr std::array<std::string_view, 11> kWallClockTokens = {
    "system_clock", "steady_clock", "high_resolution_clock", "file_clock",
    "utc_clock",    "gettimeofday", "clock_gettime",          "timespec_get",
    "localtime",    "gmtime",       "strftime"};

/// C clock reads that are only violations in call form (`time(...)`), since
/// the bare word also names members and locals.
inline constexpr std::array<std::string_view, 2> kWallClockCCalls = {"time", "clock"};

/// Unseeded C random sources, violations in call form only.
inline constexpr std::array<std::string_view, 4> kRngCallTokens = {"rand", "srand", "rand_r",
                                                                   "drand48"};

/// Raw std engine / entropy-source types; any mention bypasses the seeded
/// SplitMix64 fan-out in util/rng.hpp.
inline constexpr std::array<std::string_view, 9> kRngTypeTokens = {
    "random_device", "mt19937",  "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};

/// True when `pos` in scrubbed `text` is a C-call-form hit for `token`:
/// followed by '(', not a member call (`obj.time(...)`), and not a
/// declaration (`long time() const`) unless introduced by a statement
/// keyword (`return time(0)`).
[[nodiscard]] inline bool is_c_call_form(std::string_view text, std::string_view token,
                                         std::size_t pos) {
  const std::size_t after = skip_ws(text, pos + token.size());
  if (after >= text.size() || text[after] != '(') return false;
  const std::size_t before = prev_non_ws(text, pos);
  if (before == std::string_view::npos) return true;
  if (text[before] == '.' || (text[before] == '>' && before > 0 && text[before - 1] == '-')) {
    return false;
  }
  if (is_ident_char(text[before])) {
    const std::size_t start = ident_start(text, before);
    const std::string_view prev_token = text.substr(start, before + 1 - start);
    static constexpr std::array<std::string_view, 5> kCallKeywords = {
        "return", "co_return", "co_yield", "throw", "case"};
    for (const std::string_view keyword : kCallKeywords) {
      if (prev_token == keyword) return true;
    }
    return false;
  }
  return true;
}

}  // namespace cdsf::lint
