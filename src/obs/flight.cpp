#include "obs/flight.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace cdsf::obs {

const char* flight_event_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kChunkDispatched: return "chunk_dispatched";
    case FlightEventKind::kChunkAccepted: return "chunk_accepted";
    case FlightEventKind::kChunkLost: return "chunk_lost";
    case FlightEventKind::kChunkCancelled: return "chunk_cancelled";
    case FlightEventKind::kStragglerFlagged: return "straggler_flagged";
    case FlightEventKind::kBackupLaunched: return "backup_launched";
    case FlightEventKind::kBackupWon: return "backup_won";
    case FlightEventKind::kRetransmit: return "retransmit";
    case FlightEventKind::kDedupHit: return "dedup_hit";
    case FlightEventKind::kMessageCorrupted: return "message_corrupted";
    case FlightEventKind::kWorkerCrashed: return "worker_crashed";
    case FlightEventKind::kWorkerRecovered: return "worker_recovered";
    case FlightEventKind::kWorkerSuspected: return "worker_suspected";
    case FlightEventKind::kWorkerDeclaredDead: return "worker_declared_dead";
    case FlightEventKind::kWorkerReinstated: return "worker_reinstated";
    case FlightEventKind::kWorkerQuarantined: return "worker_quarantined";
    case FlightEventKind::kCanaryProbe: return "canary_probe";
    case FlightEventKind::kWorkerRestored: return "worker_restored";
    case FlightEventKind::kAuditLaunched: return "audit_launched";
    case FlightEventKind::kAuditMismatch: return "audit_mismatch";
    case FlightEventKind::kRiskEscalated: return "risk_escalated";
    case FlightEventKind::kRemapTriggered: return "remap_triggered";
    case FlightEventKind::kWalAppend: return "wal_append";
    case FlightEventKind::kCheckpoint: return "checkpoint";
    case FlightEventKind::kMasterCrashed: return "master_crashed";
    case FlightEventKind::kMasterRestarted: return "master_restarted";
    case FlightEventKind::kAdmissionRejected: return "admission_rejected";
    case FlightEventKind::kJobShed: return "job_shed";
    case FlightEventKind::kOverloadTierChanged: return "overload_tier_changed";
    case FlightEventKind::kRequestAdmitted: return "request_admitted";
    case FlightEventKind::kSolveHedged: return "solve_hedged";
    case FlightEventKind::kSolveTimeout: return "solve_timeout";
    case FlightEventKind::kDrainComplete: return "drain_complete";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t workers, std::size_t track_capacity,
                               bool enabled)
    : enabled_(enabled && track_capacity > 0) {
  if (!enabled_) return;
  capacity_ = track_capacity;
  tracks_.resize(workers + 1);
  // Deliberately uninitialized (make_unique would value-initialize): only
  // written slots are ever read, and zeroing ~tracks*capacity slots per run
  // would dominate the recorder's always-on budget.
  ring_ = std::unique_ptr<FlightEvent[]>(new FlightEvent[tracks_.size() * capacity_]);
}

void FlightRecorder::summarize(FlightRecord& record) const {
  record.workers.resize(tracks_.size());
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    const Track& track = tracks_[t];
    FlightWorkerSummary& summary = record.workers[t];
    summary.recorded = track.recorded;
    summary.dropped = track.dropped;
    summary.accepted = track.accepted;
    summary.lost = track.lost;
    summary.state = track.state;
    if (track.recorded > 0) {
      summary.last_event = flight_event_name(track.last_kind);
      summary.last_event_time = track.last_time;
    }
    record.total_recorded += track.recorded;
    record.total_dropped += track.dropped;
  }
}

FlightRecord FlightRecorder::finish() const {
  FlightRecord record;
  record.enabled = enabled_;
  if (!enabled_) return record;
  summarize(record);
  std::size_t total = 0;
  for (const Track& track : tracks_) total += track.size;
  record.events.reserve(total);
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    const Track& track = tracks_[t];
    const FlightEvent* ring = ring_.get() + t * capacity_;
    // Unroll the ring chronologically: oldest slot first. A full ring's
    // oldest entry sits at `next` (the slot about to be overwritten).
    const std::size_t start = track.size == capacity_ ? track.next : 0;
    for (std::size_t i = start; i < track.size; ++i) record.events.push_back(ring[i]);
    for (std::size_t i = 0; i < start; ++i) record.events.push_back(ring[i]);
  }
  // Tracks were concatenated in track order and each track is already
  // chronological, so a stable sort on time gives one deterministic merged
  // sequence: ties resolve by track index.
  std::stable_sort(record.events.begin(), record.events.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.time < y.time;
                   });
  return record;
}

FlightRecord FlightRecorder::finish_summary() const {
  FlightRecord record;
  record.enabled = enabled_;
  if (!enabled_) return record;
  summarize(record);
  return record;
}

Json flight_record_to_json(const FlightRecord& record, const FlightAnomaly& anomaly) {
  Json out = Json::object();
  out.set("schema", kFlightRecordSchema);
  Json anomaly_json = Json::object();
  anomaly_json.set("kind", anomaly.kind);
  anomaly_json.set("detail", anomaly.detail);
  anomaly_json.set("time", anomaly.time);
  out.set("anomaly", std::move(anomaly_json));
  out.set("total_recorded", static_cast<std::int64_t>(record.total_recorded));
  out.set("total_dropped", static_cast<std::int64_t>(record.total_dropped));
  Json workers = Json::array();
  for (std::size_t w = 0; w < record.workers.size(); ++w) {
    const FlightWorkerSummary& summary = record.workers[w];
    Json entry = Json::object();
    const bool master = w + 1 == record.workers.size();
    entry.set("worker", master ? Json("master") : Json(static_cast<std::int64_t>(w)));
    entry.set("state", summary.state);
    entry.set("recorded", static_cast<std::int64_t>(summary.recorded));
    entry.set("dropped", static_cast<std::int64_t>(summary.dropped));
    entry.set("accepted", static_cast<std::int64_t>(summary.accepted));
    entry.set("lost", static_cast<std::int64_t>(summary.lost));
    entry.set("last_event", summary.last_event);
    entry.set("last_event_time", summary.last_event_time);
    workers.push_back(std::move(entry));
  }
  out.set("workers", std::move(workers));
  Json events = Json::array();
  for (const FlightEvent& event : record.events) {
    Json entry = Json::object();
    entry.set("t", event.time);
    entry.set("worker", event.worker == kFlightMasterTrack
                            ? Json("master")
                            : Json(static_cast<std::int64_t>(event.worker)));
    entry.set("kind", flight_event_name(event.kind));
    entry.set("a", event.a);
    entry.set("b", event.b);
    events.push_back(std::move(entry));
  }
  out.set("events", std::move(events));
  return out;
}

bool flight_recording_enabled() {
  static const bool enabled = [] {
    const char* value = std::getenv("CDSF_FLIGHT");
    if (value == nullptr) return true;
    const std::string v(value);
    return !(v == "0" || v == "off" || v == "false");
  }();
  return enabled;
}

FlightSink& FlightSink::global() {
  static FlightSink sink;
  return sink;
}

void FlightSink::arm(std::string prefix, std::size_t max_dumps) {
  std::lock_guard lock(mutex_);
  prefix_ = std::move(prefix);
  max_dumps_ = max_dumps;
  dumped_ = 0;
}

void FlightSink::disarm() {
  std::lock_guard lock(mutex_);
  prefix_.clear();
  max_dumps_ = 0;
  dumped_ = 0;
}

bool FlightSink::armed() {
  std::lock_guard lock(mutex_);
  return !prefix_.empty() && dumped_ < max_dumps_;
}

std::string FlightSink::maybe_dump(const FlightRecord& record,
                                   const FlightAnomaly& anomaly) {
  if (!record.enabled) return {};
  std::lock_guard lock(mutex_);
  if (prefix_.empty() || dumped_ >= max_dumps_) return {};
  const std::string path = prefix_ + "_" + std::to_string(dumped_) + ".json";
  std::ofstream out(path);
  if (!out) return {};
  out << flight_record_to_json(record, anomaly).dump(1) << "\n";
  if (!out) return {};
  ++dumped_;
  return path;
}

}  // namespace cdsf::obs
