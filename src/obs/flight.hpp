// Flight recorder: an always-on, bounded, per-worker-track ring buffer of
// structured lifecycle events, merged into a deterministic postmortem when
// a run ends badly.
//
// Design constraints, in order:
//   1. Cheap enough to leave enabled by default inside both Stage II
//      executors: recording is a branch, a ring-slot write, and two
//      counter increments — no locking, no allocation after construction.
//      Each run owns its recorder (single writer), so "lock-free-enough"
//      is per-worker tracks merged once at the end of the run.
//   2. Deterministic output: tracks are appended in simulation order and
//      merged with a stable sort keyed on simulated time, so the merged
//      event sequence is byte-identical across thread counts and repeated
//      seeded runs.
//   3. Structurally inert: recording reads no RNG, no wall clock, and
//      never touches the run's event/trace output, so default-config runs
//      stay byte-identical with the recorder on.
//
// Postmortems are schema-tagged `cdsf.flight_record/1` JSON documents:
// the triggering anomaly, per-worker state machines (last known state,
// accept/loss counts, drop counts), and the merged tail of events. The
// process-global FlightSink decides whether a finished record is written
// anywhere; it ships unarmed so library and test code emits no files
// unless a CLI (or test) arms it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace cdsf::obs {

/// Schema tag carried by every postmortem dump.
inline constexpr const char* kFlightRecordSchema = "cdsf.flight_record/1";

/// Track index used for coordinator-side events (master receive loop,
/// WAL, checkpoint/restart) that have no single worker.
inline constexpr std::uint32_t kFlightMasterTrack = 0xFFFFFFFFu;

/// Structured event kinds. Names (see flight_event_name) are part of the
/// cdsf.flight_record/1 schema; append, don't renumber.
enum class FlightEventKind : std::uint8_t {
  kChunkDispatched,
  kChunkAccepted,
  kChunkLost,
  kChunkCancelled,
  kStragglerFlagged,
  kBackupLaunched,
  kBackupWon,
  kRetransmit,
  kDedupHit,
  kMessageCorrupted,
  kWorkerCrashed,
  kWorkerRecovered,
  kWorkerSuspected,
  kWorkerDeclaredDead,
  kWorkerReinstated,
  kWorkerQuarantined,
  kCanaryProbe,
  kWorkerRestored,
  kAuditLaunched,
  kAuditMismatch,
  kRiskEscalated,
  kRemapTriggered,
  kWalAppend,
  kCheckpoint,
  kMasterCrashed,
  kMasterRestarted,
  kAdmissionRejected,
  kJobShed,
  kOverloadTierChanged,
  kRequestAdmitted,
  kSolveHedged,
  kSolveTimeout,
  kDrainComplete,
};

/// Stable lowercase identifier for a kind ("chunk_accepted", ...).
[[nodiscard]] const char* flight_event_name(FlightEventKind kind);

/// One recorded event. `a` and `b` are kind-specific payloads (typically
/// chunk first-iteration and size; see the recording sites).
///
/// Deliberately trivially-default-constructible (no member initializers):
/// the recorder allocates its rings uninitialized and only ever reads
/// slots it has written, so ring construction is one allocation with no
/// memset — part of the always-on overhead budget. Value-initialize
/// (`FlightEvent{}`) when constructing one directly.
struct FlightEvent {
  FlightEventKind kind;     // see FlightEventKind
  double time;              // simulated seconds
  std::uint32_t worker;     // worker index or kFlightMasterTrack
  std::int64_t a;
  std::int64_t b;
};

/// Per-worker state machine derived from the recorded events.
struct FlightWorkerSummary {
  std::string state = "healthy";  // last lifecycle state observed
  std::uint64_t recorded = 0;     // events recorded on this track
  std::uint64_t dropped = 0;      // events evicted from the ring
  std::uint64_t accepted = 0;     // kChunkAccepted count (including evicted)
  std::uint64_t lost = 0;         // kChunkLost count (including evicted)
  std::string last_event;         // kind name of the newest event, "" if none
  double last_event_time = 0.0;
};

/// A finished, merged recording — stored on RunResult so postmortem
/// consumers (anomaly dump, chaos validation) can reach it after the run.
struct FlightRecord {
  bool enabled = false;
  std::vector<FlightEvent> events;  // merged, time-ordered tail
  std::vector<FlightWorkerSummary> workers;  // index == worker; last is master
  std::uint64_t total_recorded = 0;
  std::uint64_t total_dropped = 0;
};

/// What went wrong — attached to the postmortem dump.
struct FlightAnomaly {
  std::string kind;    // "deadline_miss" | "strand" | "master_restart" |
                       // "quarantine_trip" | "chaos_invariant" |
                       // "overload_shed"
  std::string detail;  // human-oriented one-liner
  double time = 0.0;   // simulated time of detection (makespan for post-run)
};

/// Serializes a finished record plus its triggering anomaly as a
/// cdsf.flight_record/1 document. Deterministic: field order is fixed and
/// events carry only simulated time.
[[nodiscard]] Json flight_record_to_json(const FlightRecord& record,
                                         const FlightAnomaly& anomaly);

/// Per-run recorder. Construct with the worker count; track `workers` is
/// the master/coordinator track. Recording is a no-op when disabled.
class FlightRecorder {
 public:
  FlightRecorder(std::size_t workers, std::size_t track_capacity, bool enabled);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Records one event on the owning worker's track (kFlightMasterTrack
  /// routes to the coordinator track). Drop-oldest on a full ring.
  void record(FlightEventKind kind, double time, std::uint32_t worker,
              std::int64_t a = 0, std::int64_t b = 0) {
    if (!enabled_) return;
    const std::size_t index =
        worker == kFlightMasterTrack ? tracks_.size() - 1
                                     : std::min<std::size_t>(worker, tracks_.size() - 1);
    Track& track = tracks_[index];
    FlightEvent& slot = ring_[index * capacity_ + track.next];
    if (track.size == capacity_) {
      ++track.dropped;
    } else {
      ++track.size;
    }
    slot.kind = kind;
    slot.time = time;
    slot.worker = worker;
    slot.a = a;
    slot.b = b;
    if (++track.next == capacity_) track.next = 0;
    ++track.recorded;
    if (kind == FlightEventKind::kChunkAccepted) ++track.accepted;
    if (kind == FlightEventKind::kChunkLost) ++track.lost;
    // Lifecycle state and the newest-event fields are tracked here rather
    // than derived in finish(): it keeps the no-anomaly finish O(tracks)
    // and (unlike a ring scan) survives drop-oldest eviction.
    if (const char* state = lifecycle_state_name(kind)) track.state = state;
    track.last_kind = kind;
    track.last_time = time;
  }

  /// Merges every track into a time-ordered record. The recorder can keep
  /// recording afterwards (finish copies), but normal use is record-once,
  /// finish-once at end of run.
  [[nodiscard]] FlightRecord finish() const;

  /// Counters and per-worker summaries only — no event copy, no merge
  /// sort. The cheap path for runs that ended well with no armed sink
  /// (nothing would ever read the merged events); `events` stays empty.
  [[nodiscard]] FlightRecord finish_summary() const;

 private:
  struct Track {
    std::size_t next = 0;  // next write slot
    std::size_t size = 0;  // occupied slots
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t accepted = 0;
    std::uint64_t lost = 0;
    const char* state = "healthy";  // last lifecycle transition observed
    FlightEventKind last_kind = FlightEventKind::kChunkDispatched;
    double last_time = 0.0;
  };

  /// "crashed"/"quarantined"/... for lifecycle kinds, nullptr otherwise.
  [[nodiscard]] static const char* lifecycle_state_name(FlightEventKind kind) noexcept {
    switch (kind) {
      case FlightEventKind::kWorkerCrashed: return "crashed";
      case FlightEventKind::kWorkerRecovered: return "recovered";
      case FlightEventKind::kWorkerSuspected: return "suspected";
      case FlightEventKind::kWorkerDeclaredDead: return "dead";
      case FlightEventKind::kWorkerReinstated: return "reinstated";
      case FlightEventKind::kWorkerQuarantined: return "quarantined";
      case FlightEventKind::kWorkerRestored: return "restored";
      default: return nullptr;
    }
  }

  /// Fills counters and worker summaries (everything but `events`).
  void summarize(FlightRecord& record) const;

  bool enabled_;
  std::size_t capacity_ = 0;
  std::vector<Track> tracks_;  // workers + 1 (master track last)
  // One flat uninitialized buffer, tracks_.size() * capacity_ slots; track
  // t owns [t * capacity_, (t + 1) * capacity_).
  std::unique_ptr<FlightEvent[]> ring_;
};

/// Process-wide kill switch read once from the CDSF_FLIGHT environment
/// variable: "0", "off", or "false" disable recording; anything else
/// (including unset) leaves it on. This is the overhead-bench lever.
[[nodiscard]] bool flight_recording_enabled();

/// Process-global postmortem writer. Unarmed by default: library code and
/// tests produce no files. A CLI arms it with a path prefix and a dump
/// budget; each anomalous run then writes `<prefix>_<n>.json` until the
/// budget is spent. Thread-safe (replicated runs finish concurrently).
class FlightSink {
 public:
  static FlightSink& global();

  /// Arms (or re-arms) the sink. max_dumps bounds files per arming.
  void arm(std::string prefix, std::size_t max_dumps);
  /// Disarms and resets the dump counter.
  void disarm();
  /// True when a dump would currently be written (armed with budget left).
  /// Run finalization uses this to skip the event merge entirely for clean
  /// runs nobody could dump.
  [[nodiscard]] bool armed();

  /// Writes a postmortem if armed, the record is enabled, and budget
  /// remains. Returns the path written, or "" when skipped.
  std::string maybe_dump(const FlightRecord& record, const FlightAnomaly& anomaly);

 private:
  std::mutex mutex_;
  std::string prefix_;
  std::size_t max_dumps_ = 0;
  std::size_t dumped_ = 0;
};

}  // namespace cdsf::obs
