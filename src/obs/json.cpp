#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cdsf::obs {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("Json: expected ") + want + ", have type #" +
                           std::to_string(static_cast<int>(got)));
}

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  // Shortest representation that round-trips to the same double.
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, end);
  (void)ec;
}

/// Recursive-descent parser over a string_view with offset-carrying errors.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("Json::parse: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the emitter only produces \u for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    const bool integral = token.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      std::int64_t value = 0;
      const auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && p == token.data() + token.size()) return Json(value);
      // Fall through to double on overflow.
    }
    double value = 0.0;
    const auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || p != token.data() + token.size()) fail("bad number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kInt) type_error("int", type_);
  return int_;
}

double Json::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ != Type::kDouble) type_error("double", type_);
  return double_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Json::Array& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Json::Object& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (Member& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("Json: missing key '" + std::string(key) + "'");
  }
  return *value;
}

const Json& Json::at(std::size_t index) const {
  const Array& arr = items();
  if (index >= arr.size()) throw std::runtime_error("Json: array index out of range");
  return arr[index];
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: append_number(out, double_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace cdsf::obs
