// Minimal JSON document: build, serialize, parse.
//
// Exists so the observability layer (run reports, metrics snapshots,
// Chrome/Perfetto traces) has no external dependency. Objects preserve
// insertion order, so emitted documents are deterministic and diffable;
// doubles serialize in shortest round-trip form (std::to_chars), so a
// value written and re-parsed compares bit-identical — the property the
// run-report round-trip tests rely on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace cdsf::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  Json(T value) : type_(Type::kInt), int_(static_cast<std::int64_t>(value)) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;  // kInt only
  [[nodiscard]] double as_double() const;     // kInt or kDouble
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;      // kArray
  [[nodiscard]] const Object& members() const;   // kObject

  /// Array building: appends (converts a null value to an array first).
  Json& push_back(Json value);
  /// Object building: insert-or-replace, preserving first-insertion order
  /// (converts a null value to an object first).
  Json& set(std::string key, Json value);
  /// Object access: pointer to the member value or nullptr.
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Object access: throws std::runtime_error when the key is missing.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Array access with bounds check.
  [[nodiscard]] const Json& at(std::size_t index) const;
  /// Element count of an array or object; 0 otherwise.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Serializes the document. indent < 0 => compact single line;
  /// indent >= 0 => pretty-printed with that many spaces per level.
  /// Non-finite doubles serialize as null (JSON has no inf/nan).
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws std::invalid_argument with the byte offset on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace cdsf::obs
