#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <stdexcept>

namespace cdsf::obs {

struct MetricsRegistry::Counter {
  std::atomic<std::int64_t> value{0};
};

struct MetricsRegistry::Gauge {
  std::atomic<double> value{0.0};
};

struct MetricsRegistry::Histogram {
  // All under one mutex: observations happen per simulated run (not per
  // chunk), so contention is negligible and the snapshot stays internally
  // consistent (count always equals the bucket sum).
  mutable std::mutex mutex;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void clear_data() {
    std::fill(counts.begin(), counts.end(), 0);
    count = 0;
    sum = 0.0;
    min = std::numeric_limits<double>::infinity();
    max = -std::numeric_limits<double>::infinity();
  }
};

std::vector<double> default_histogram_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-3; decade < 1e7; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  return bounds;
}

MetricsRegistry::MetricsRegistry(bool enabled) : enabled_(enabled) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry(false);
  return registry;
}

MetricsRegistry::Counter& MetricsRegistry::counter_slot(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge_slot(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram_slot(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return *it->second;
  }
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    slot->bounds = default_histogram_bounds();
    slot->counts.assign(slot->bounds.size() + 1, 0);
  }
  return *slot;
}

void MetricsRegistry::add(std::string_view counter, std::int64_t delta) {
  if (!enabled()) return;
  counter_slot(counter).value.fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::set_gauge(std::string_view gauge, double value) {
  if (!enabled()) return;
  gauge_slot(gauge).value.store(value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(std::string_view histogram, double value) {
  if (!enabled()) return;
  Histogram& h = histogram_slot(histogram);
  std::lock_guard lock(h.mutex);
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(h.bounds.begin(), h.bounds.end(), value) - h.bounds.begin());
  h.counts[bucket] += 1;
  h.count += 1;
  h.sum += value;
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
}

void MetricsRegistry::set_histogram_bounds(std::string_view histogram,
                                           std::vector<double> bounds) {
  if (bounds.empty()) {
    throw std::invalid_argument("set_histogram_bounds: at least one bound required");
  }
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i] > bounds[i - 1])) {
      throw std::invalid_argument("set_histogram_bounds: bounds must be strictly ascending");
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[std::string(histogram)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  std::lock_guard data_lock(slot->mutex);
  slot->bounds = std::move(bounds);
  slot->counts.assign(slot->bounds.size() + 1, 0);
  slot->count = 0;
  slot->sum = 0.0;
  slot->min = std::numeric_limits<double>::infinity();
  slot->max = -std::numeric_limits<double>::infinity();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::shared_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value.load(std::memory_order_relaxed);
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value.load(std::memory_order_relaxed);
  }
  for (const auto& [name, histogram] : histograms_) {
    std::lock_guard data_lock(histogram->mutex);
    HistogramSnapshot h;
    h.bounds = histogram->bounds;
    h.counts = histogram->counts;
    h.count = histogram->count;
    h.sum = histogram->sum;
    h.min = histogram->count > 0 ? histogram->min : 0.0;
    h.max = histogram->count > 0 ? histogram->max : 0.0;
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::unique_lock lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->value.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : histograms_) {
    std::lock_guard data_lock(histogram->mutex);
    histogram->clear_data();
  }
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count]; ceil so q = 0.5 of 2 samples picks the 1st.
  const double rank = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Bucket edges: the overflow bucket tops out at the observed max, and
    // the first occupied edge is pulled in to the observed min.
    double lo = i == 0 ? min : bounds[i - 1];
    double hi = i < bounds.size() ? bounds[i] : max;
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (!(hi > lo)) return std::clamp(lo, min, max);
    const double fraction = (rank - below) / static_cast<double>(counts[i]);
    return std::clamp(lo + fraction * (hi - lo), min, max);
  }
  return max;
}

Json MetricsSnapshot::to_json() const {
  Json out = Json::object();
  Json counters_json = Json::object();
  for (const auto& [name, value] : counters) counters_json.set(name, value);
  Json gauges_json = Json::object();
  for (const auto& [name, value] : gauges) gauges_json.set(name, value);
  Json histograms_json = Json::object();
  for (const auto& [name, h] : histograms) {
    Json entry = Json::object();
    entry.set("count", static_cast<std::int64_t>(h.count));
    entry.set("sum", h.sum);
    entry.set("min", h.min);
    entry.set("max", h.max);
    entry.set("p50", h.quantile(0.50));
    entry.set("p95", h.quantile(0.95));
    entry.set("p99", h.quantile(0.99));
    Json bounds = Json::array();
    for (double b : h.bounds) bounds.push_back(b);
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) counts.push_back(static_cast<std::int64_t>(c));
    entry.set("bounds", std::move(bounds));
    entry.set("counts", std::move(counts));
    histograms_json.set(name, std::move(entry));
  }
  out.set("counters", std::move(counters_json));
  out.set("gauges", std::move(gauges_json));
  out.set("histograms", std::move(histograms_json));
  return out;
}

ScopedTimer::ScopedTimer(MetricsRegistry& registry, std::string name)
    : registry_(registry.enabled() ? &registry : nullptr), name_(std::move(name)) {
  if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (registry_ == nullptr) return;
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start_;
  registry_->observe(name_, elapsed.count());
}

}  // namespace cdsf::obs
