// Thread-safe metrics registry: named counters, gauges, fixed-bucket
// histograms, and scoped wall-clock timers, with snapshot/reset semantics.
//
// Every mutation first checks an atomic enabled flag, so an instrumented
// hot path costs one relaxed load and a predicted branch when metrics are
// off — the registry ships disabled and is switched on by the CLI/bench
// layers that actually consume the snapshot. The process-global instance
// (MetricsRegistry::global()) is what the library instrumentation points
// write to; tests construct private registries.
//
// Metric names are dot-separated lowercase ("sim.chunks_lost"); the full
// catalog lives in docs/observability.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace cdsf::obs {

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  /// Finite upper bucket bounds (ascending); counts has one extra final
  /// bucket for values above the last bound.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;

  /// Bucket-interpolated quantile estimate for q in [0, 1]: walks the
  /// cumulative bucket counts to the target rank and interpolates linearly
  /// inside the bucket, clamped to the observed [min, max]. Returns 0 when
  /// the histogram is empty. Exact when a bucket holds one value; otherwise
  /// accurate to the bucket width (the 1-2-5 default ladder).
  [[nodiscard]] double quantile(double q) const;
};

/// Point-in-time copy of a whole registry (std::map => deterministic
/// iteration order in serialized output).
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] Json to_json() const;
};

/// Default histogram bucket bounds: 1, 2, 5 decades from 1e-3 to 1e6 —
/// wide enough for both wall-clock seconds and simulated makespans.
[[nodiscard]] std::vector<double> default_histogram_bounds();

class MetricsRegistry {
 public:
  // Out of line: Counter/Gauge/Histogram are opaque here, and both the
  // constructor (exception cleanup) and the destructor need the map
  // element destructors, which require complete types.
  explicit MetricsRegistry(bool enabled = true);
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry the library instrumentation writes to.
  /// Starts DISABLED so unobserved runs pay (almost) nothing.
  static MetricsRegistry& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Adds `delta` to a counter (created at zero on first use).
  void add(std::string_view counter, std::int64_t delta = 1);
  /// Sets a gauge to `value` (last write wins).
  void set_gauge(std::string_view gauge, double value);
  /// Records `value` into a histogram (created with the default bounds on
  /// first use).
  void observe(std::string_view histogram, double value);
  /// Creates (or re-buckets, discarding recorded data) a histogram with
  /// explicit bounds. Throws std::invalid_argument unless strictly
  /// ascending and non-empty.
  void set_histogram_bounds(std::string_view histogram, std::vector<double> bounds);

  /// Consistent point-in-time copy of every metric.
  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zeroes every counter/gauge/histogram; keeps registrations (including
  /// custom histogram bounds) so instrument names remain stable.
  void reset();

 private:
  struct Counter;
  struct Gauge;
  struct Histogram;

  Counter& counter_slot(std::string_view name);
  Gauge& gauge_slot(std::string_view name);
  Histogram& histogram_slot(std::string_view name);

  std::atomic<bool> enabled_;
  mutable std::shared_mutex mutex_;  // guards the maps, not the values
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records the wall-clock seconds between construction and destruction
/// into `registry`'s histogram `name`. A no-op when the registry is
/// disabled at construction time.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& registry, std::string name);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  MetricsRegistry* registry_;  // nullptr when disabled
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cdsf::obs
