#include "obs/openmetrics.hpp"

#include <cstdint>

namespace cdsf::obs {

namespace {

/// Shortest-round-trip rendering, shared with the JSON emitter so the
/// same value prints identically in both outputs.
std::string render(double value) { return Json(value).dump(); }

std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

void append_gauge(std::string& out, const std::string& name, double value) {
  out += "# TYPE " + name + " gauge\n";
  out += name + " " + render(value) + "\n";
}

}  // namespace

std::string to_openmetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = sanitize(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    append_gauge(out, sanitize(name), value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string metric = sanitize(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += i < h.counts.size() ? h.counts[i] : 0;
      out += metric + "_bucket{le=\"" + render(h.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += metric + "_sum " + render(h.sum) + "\n";
    out += metric + "_count " + std::to_string(h.count) + "\n";
    append_gauge(out, metric + "_p50", h.quantile(0.50));
    append_gauge(out, metric + "_p95", h.quantile(0.95));
    append_gauge(out, metric + "_p99", h.quantile(0.99));
  }
  out += "# EOF\n";
  return out;
}

MetricsSnapshot snapshot_from_json(const Json& doc) {
  MetricsSnapshot snap;
  for (const auto& [name, value] : doc.at("counters").members()) {
    snap.counters[name] = value.as_int();
  }
  for (const auto& [name, value] : doc.at("gauges").members()) {
    snap.gauges[name] = value.as_double();
  }
  for (const auto& [name, entry] : doc.at("histograms").members()) {
    HistogramSnapshot h;
    h.count = static_cast<std::uint64_t>(entry.at("count").as_int());
    h.sum = entry.at("sum").as_double();
    h.min = entry.at("min").as_double();
    h.max = entry.at("max").as_double();
    for (const Json& bound : entry.at("bounds").items()) {
      h.bounds.push_back(bound.as_double());
    }
    for (const Json& count : entry.at("counts").items()) {
      h.counts.push_back(static_cast<std::uint64_t>(count.as_int()));
    }
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

}  // namespace cdsf::obs
