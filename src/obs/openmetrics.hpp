// OpenMetrics / Prometheus text exposition for MetricsSnapshot.
//
// Serializes a snapshot to the OpenMetrics text format (the wire format a
// Prometheus scrape expects): counters as `<name>_total` with `# TYPE`
// metadata, gauges plain, histograms as cumulative `_bucket{le="..."}`
// series plus `_sum`/`_count`, and the bucket-interpolated p50/p95/p99
// estimates as companion gauges (`<name>_p50`, ...) — OpenMetrics forbids
// mixing summary quantiles into a histogram family. Dots in registry
// names become underscores (`sim.chunks` -> `sim_chunks`). Output is
// deterministic: snapshot maps are ordered and doubles render in
// shortest round-trip form.
//
// snapshot_from_json() is the inverse of MetricsSnapshot::to_json(), so
// a metrics block embedded in a run report can be re-exported without
// re-running anything (`cdsf metrics --from-report`).
#pragma once

#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace cdsf::obs {

/// OpenMetrics text exposition of the snapshot, terminated by `# EOF`.
[[nodiscard]] std::string to_openmetrics(const MetricsSnapshot& snapshot);

/// Rebuilds a snapshot from a MetricsSnapshot::to_json() document.
/// Throws std::runtime_error / std::invalid_argument on shape mismatches.
[[nodiscard]] MetricsSnapshot snapshot_from_json(const Json& doc);

}  // namespace cdsf::obs
