#include "obs/profile.hpp"

namespace cdsf::obs {

namespace {

// Innermost active timer on this thread; nested timers report their
// elapsed time to the parent so it can subtract covered time.
thread_local PhaseTimer* t_current = nullptr;

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kPmfConvolution: return "pmf_convolution";
    case Phase::kPmfCompaction: return "pmf_compaction";
    case Phase::kRaEnumeration: return "ra_enumeration";
    case Phase::kMonteCarlo: return "monte_carlo";
  }
  return "unknown";
}

PhaseProfiler& PhaseProfiler::global() {
  static PhaseProfiler profiler;
  return profiler;
}

Json PhaseProfiler::to_json() const {
  std::int64_t total_ns = 0;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    total_ns += self_ns(static_cast<Phase>(p));
  }
  if (total_ns <= 0) return Json();
  Json phases = Json::object();
  Phase dominant = Phase::kPmfConvolution;
  std::int64_t dominant_ns = -1;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    const Phase phase = static_cast<Phase>(p);
    const std::int64_t ns = self_ns(phase);
    if (ns > dominant_ns) {
      dominant = phase;
      dominant_ns = ns;
    }
    Json entry = Json::object();
    entry.set("seconds", static_cast<double>(ns) * 1e-9);
    entry.set("calls", calls(phase));
    entry.set("share", static_cast<double>(ns) / static_cast<double>(total_ns));
    phases.set(phase_name(phase), std::move(entry));
  }
  Json out = Json::object();
  out.set("total_seconds", static_cast<double>(total_ns) * 1e-9);
  out.set("dominant", phase_name(dominant));
  out.set("phases", std::move(phases));
  return out;
}

PhaseTimer::PhaseTimer(Phase phase)
    : phase_(phase), active_(PhaseProfiler::global().enabled()) {
  if (!active_) return;
  parent_ = t_current;
  t_current = this;
  start_ = std::chrono::steady_clock::now();
}

PhaseTimer::~PhaseTimer() {
  if (!active_) return;
  const std::int64_t elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count();
  t_current = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += elapsed_ns;
  PhaseProfiler::global().accumulate(
      phase_, elapsed_ns > child_ns_ ? elapsed_ns - child_ns_ : 0);
}

}  // namespace cdsf::obs
