// Stage I self-profiler: scoped phase timers with self-time attribution.
//
// The Stage I pipeline spends its time in four nested phases — PMF
// convolution, pulse compaction (called from inside convolution), RA
// enumeration (which drives convolution), and Monte-Carlo replication.
// Plain scoped timers double-count nested work, so PhaseTimer keeps a
// thread-local stack: a timer charges its own phase only with the time
// not covered by timers nested inside it. The per-phase totals therefore
// sum to wall time and directly name the hot phase.
//
// The profiler is process-global and ships disabled (one relaxed atomic
// load per timer when off), mirroring MetricsRegistry: CLI entry points
// that emit reports switch it on. Accumulation is relaxed-atomic, so
// concurrent Stage I solves aggregate safely; the snapshot is a best-
// effort sum, which is all a profile needs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/json.hpp"

namespace cdsf::obs {

/// Stage I phases, in pipeline order.
enum class Phase : std::uint8_t {
  kPmfConvolution,
  kPmfCompaction,
  kRaEnumeration,
  kMonteCarlo,
};
inline constexpr std::size_t kPhaseCount = 4;

/// Stable lowercase identifier ("pmf_convolution", ...).
[[nodiscard]] const char* phase_name(Phase phase);

class PhaseProfiler {
 public:
  static PhaseProfiler& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Adds one timed interval's self time to `phase`.
  void accumulate(Phase phase, std::int64_t self_ns) noexcept {
    auto& slot = slots_[static_cast<std::size_t>(phase)];
    slot.self_ns.fetch_add(self_ns, std::memory_order_relaxed);
    slot.calls.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t self_ns(Phase phase) const noexcept {
    return slots_[static_cast<std::size_t>(phase)].self_ns.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t calls(Phase phase) const noexcept {
    return slots_[static_cast<std::size_t>(phase)].calls.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    for (auto& slot : slots_) {
      slot.self_ns.store(0, std::memory_order_relaxed);
      slot.calls.store(0, std::memory_order_relaxed);
    }
  }

  /// Phase breakdown for cdsf.scenario_report: per-phase self seconds,
  /// call counts, share of the profiled total, plus the dominant phase.
  /// Returns a null Json when nothing was recorded.
  [[nodiscard]] Json to_json() const;

 private:
  struct Slot {
    std::atomic<std::int64_t> self_ns{0};
    std::atomic<std::int64_t> calls{0};
  };

  std::atomic<bool> enabled_{false};
  Slot slots_[kPhaseCount];
};

/// RAII phase timer. Inert (no clock read) when the profiler is disabled
/// at construction. Nesting-aware: elapsed time inside a nested timer is
/// charged to the nested phase only.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase phase);
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer();

 private:
  Phase phase_;
  bool active_;
  PhaseTimer* parent_ = nullptr;
  std::int64_t child_ns_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cdsf::obs
