#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace cdsf::obs {

Json to_json(const stats::ConfidenceInterval& ci) {
  Json doc = Json::object();
  doc.set("lower", ci.lower);
  doc.set("upper", ci.upper);
  return doc;
}

Json to_json(const sim::FaultStats& faults) {
  Json doc = Json::object();
  doc.set("workers_crashed", faults.workers_crashed);
  doc.set("workers_recovered", faults.workers_recovered);
  doc.set("chunks_lost", faults.chunks_lost);
  doc.set("iterations_reexecuted", faults.iterations_reexecuted);
  doc.set("wasted_work", faults.wasted_work);
  doc.set("detection_latency_total", faults.detection_latency_total);
  doc.set("max_detection_latency", faults.max_detection_latency);
  doc.set("false_suspicions", faults.false_suspicions);
  return doc;
}

Json to_json(const sim::SpeculationStats& speculation) {
  Json doc = Json::object();
  doc.set("stragglers_flagged", speculation.stragglers_flagged);
  doc.set("backups_launched", speculation.backups_launched);
  doc.set("backups_won", speculation.backups_won);
  doc.set("backups_cancelled", speculation.backups_cancelled);
  doc.set("backups_lost", speculation.backups_lost);
  doc.set("primaries_cancelled", speculation.primaries_cancelled);
  doc.set("cancelled_work", speculation.cancelled_work);
  doc.set("risk_escalations", speculation.risk_escalations);
  return doc;
}

Json to_json(const sim::ChannelStats& channel) {
  Json doc = Json::object();
  doc.set("messages_sent", channel.messages_sent);
  doc.set("drops", channel.drops);
  doc.set("burst_drops", channel.burst_drops);
  doc.set("duplicates", channel.duplicates);
  doc.set("reorders", channel.reorders);
  doc.set("retransmits", channel.retransmits);
  doc.set("dedup_hits", channel.dedup_hits);
  doc.set("acks_sent", channel.acks_sent);
  doc.set("retransmits_abandoned", channel.retransmits_abandoned);
  // Payload-corruption counters only when the corruption axis fired, so
  // corruption-free channel blocks keep their pre-integrity shape.
  if (channel.corrupted > 0 || channel.corrupt_discarded > 0) {
    doc.set("corrupted", channel.corrupted);
    doc.set("corrupt_discarded", channel.corrupt_discarded);
  }
  return doc;
}

Json to_json(const sim::QuarantineStats& quarantine) {
  Json doc = Json::object();
  doc.set("fail_slow_trips", quarantine.fail_slow_trips);
  doc.set("audit_trips", quarantine.audit_trips);
  doc.set("quarantines", quarantine.quarantines);
  doc.set("reinstatements", quarantine.reinstatements);
  doc.set("probes_launched", quarantine.probes_launched);
  doc.set("probes_healthy", quarantine.probes_healthy);
  doc.set("quarantined_time", quarantine.quarantined_time);
  doc.set("audits_launched", quarantine.audits_launched);
  doc.set("audits_matched", quarantine.audits_matched);
  doc.set("audit_mismatches", quarantine.audit_mismatches);
  doc.set("audits_abandoned", quarantine.audits_abandoned);
  doc.set("corrupt_chunks_recorded", quarantine.corrupt_chunks_recorded);
  return doc;
}

Json to_json(const sim::CheckpointStats& checkpoint) {
  Json doc = Json::object();
  doc.set("wal_records", checkpoint.wal_records);
  doc.set("snapshots", checkpoint.snapshots);
  doc.set("master_restarts", checkpoint.master_restarts);
  doc.set("restart_ranges_redispatched", checkpoint.restart_ranges_redispatched);
  doc.set("restart_chunks_preserved", checkpoint.restart_chunks_preserved);
  doc.set("restart_completions_replayed", checkpoint.restart_completions_replayed);
  return doc;
}

namespace {

/// Speculation blocks appear only when there was speculation activity, so
/// non-speculative reports keep the pre-speculation shape.
bool speculation_active(const sim::SpeculationStats& s) {
  return s.stragglers_flagged > 0 || s.backups_launched > 0 || s.risk_escalations > 0;
}

/// Per-kind WAL record counts — a compact summary, not the full log (the
/// full log goes to SimConfig::MasterCheckpoint::json_path).
Json wal_summary(const std::vector<sim::WalRecord>& wal) {
  std::uint64_t assigns = 0, acks = 0, completes = 0, snapshots = 0, restarts = 0;
  for (const sim::WalRecord& record : wal) {
    switch (record.kind) {
      case sim::WalRecord::Kind::kAssign: ++assigns; break;
      case sim::WalRecord::Kind::kAck: ++acks; break;
      case sim::WalRecord::Kind::kComplete: ++completes; break;
      case sim::WalRecord::Kind::kSnapshot: ++snapshots; break;
      case sim::WalRecord::Kind::kRestart: ++restarts; break;
    }
  }
  Json doc = Json::object();
  doc.set("records", wal.size());
  doc.set("assigns", assigns);
  doc.set("acks", acks);
  doc.set("completes", completes);
  doc.set("snapshots", snapshots);
  doc.set("restarts", restarts);
  return doc;
}

}  // namespace

Json to_json(const sim::WorkerStats& worker) {
  Json doc = Json::object();
  doc.set("chunks", worker.chunks);
  doc.set("iterations", worker.iterations);
  doc.set("busy_time", worker.busy_time);
  doc.set("overhead_time", worker.overhead_time);
  doc.set("finish_time", worker.finish_time);
  return doc;
}

Json to_json(const sim::RunResult& run) {
  Json doc = Json::object();
  doc.set("makespan", run.makespan);
  doc.set("serial_end", run.serial_end);
  doc.set("finish_time_cov", run.finish_time_cov());

  Json chunks = Json::object();
  chunks.set("count", run.total_chunks);
  if (!run.trace.empty()) {
    std::int64_t min_size = std::numeric_limits<std::int64_t>::max();
    std::int64_t max_size = 0;
    std::int64_t total = 0;
    std::uint64_t lost = 0;
    for (const sim::ChunkTraceEntry& chunk : run.trace) {
      min_size = std::min(min_size, chunk.iterations);
      max_size = std::max(max_size, chunk.iterations);
      total += chunk.iterations;
      if (chunk.lost) ++lost;
    }
    chunks.set("min_size", min_size);
    chunks.set("max_size", max_size);
    chunks.set("mean_size",
               static_cast<double>(total) / static_cast<double>(run.trace.size()));
    chunks.set("lost", lost);
  }
  doc.set("chunks", std::move(chunks));

  Json workers = Json::array();
  for (const sim::WorkerStats& worker : run.workers) workers.push_back(to_json(worker));
  doc.set("workers", std::move(workers));
  doc.set("faults", to_json(run.faults));
  if (speculation_active(run.speculation)) {
    doc.set("speculation", to_json(run.speculation));
  }
  // Hardened-channel / checkpoint blocks only when the machinery ran, so
  // clean runs (and their goldens) keep the legacy shape.
  if (run.channel.active()) doc.set("channel", to_json(run.channel));
  if (run.checkpoint.active()) {
    doc.set("checkpoint", to_json(run.checkpoint));
    if (!run.wal.empty()) doc.set("wal", wal_summary(run.wal));
  }
  if (run.quarantine.active()) doc.set("quarantine", to_json(run.quarantine));
  return doc;
}

Json to_json(const sim::ReplicationSummary& summary, double deadline) {
  Json doc = Json::object();
  doc.set("replications", summary.replications);
  doc.set("mean_makespan", summary.mean_makespan);
  doc.set("median_makespan", summary.median_makespan);
  doc.set("stddev_makespan", summary.stddev_makespan);
  doc.set("min_makespan", summary.min_makespan);
  doc.set("max_makespan", summary.max_makespan);
  doc.set("deadline_hit_rate", summary.deadline_hit_rate);
  doc.set("mean_ci", to_json(summary.mean_ci));
  doc.set("hit_rate_ci", to_json(summary.hit_rate_ci));
  if (std::isfinite(deadline)) {
    doc.set("deadline", deadline);
    doc.set("deadline_slack", deadline - summary.median_makespan);
  }
  doc.set("faults_total", to_json(summary.faults_total));
  if (speculation_active(summary.speculation_total)) {
    doc.set("speculation_total", to_json(summary.speculation_total));
  }
  if (summary.channel_total.active()) {
    doc.set("channel_total", to_json(summary.channel_total));
  }
  if (summary.checkpoint_total.active()) {
    doc.set("checkpoint_total", to_json(summary.checkpoint_total));
  }
  if (summary.quarantine_total.active()) {
    doc.set("quarantine_total", to_json(summary.quarantine_total));
  }
  return doc;
}

Json to_json(const ra::GroupAssignment& group, const sysmodel::Platform& platform) {
  Json doc = Json::object();
  doc.set("processor_type", group.processor_type);
  doc.set("type_name", platform.type(group.processor_type).name);
  doc.set("processors", group.processors);
  return doc;
}

Json to_json(const ra::Allocation& allocation, const sysmodel::Platform& platform) {
  Json doc = Json::array();
  for (const ra::GroupAssignment& group : allocation.groups()) {
    doc.push_back(to_json(group, platform));
  }
  return doc;
}

Json to_json(const core::StageOneResult& stage_one, const sysmodel::Platform& platform) {
  Json doc = Json::object();
  doc.set("heuristic", stage_one.heuristic_name);
  doc.set("phi1", stage_one.phi1);
  doc.set("allocation", to_json(stage_one.allocation, platform));
  Json expected = Json::array();
  for (double t : stage_one.expected_times) expected.push_back(t);
  doc.set("expected_times", std::move(expected));
  Json probabilities = Json::array();
  for (double p : stage_one.app_probabilities) probabilities.push_back(p);
  doc.set("app_probabilities", std::move(probabilities));
  return doc;
}

Json to_json(const core::RobustnessReport& report) {
  Json doc = Json::object();
  doc.set("rho1", report.rho1);
  doc.set("rho2", report.rho2);
  doc.set("rho2_case", report.rho2_case);
  return doc;
}

Json to_json(const core::StageTwoResult& stage_two, double deadline) {
  Json doc = Json::object();
  doc.set("case", stage_two.case_name);
  doc.set("all_meet_deadline", stage_two.all_meet_deadline);
  doc.set("system_makespan", stage_two.system_makespan);
  Json applications = Json::array();
  for (std::size_t app = 0; app < stage_two.outcomes.size(); ++app) {
    Json entry = Json::object();
    entry.set("application", app);
    entry.set("best_technique",
              app < stage_two.best_technique.size() ? stage_two.best_technique[app] : -1);
    Json techniques = Json::array();
    for (const core::AppTechniqueOutcome& outcome : stage_two.outcomes[app]) {
      Json record = Json::object();
      record.set("technique", dls::technique_name(outcome.technique));
      record.set("meets_deadline", outcome.meets_deadline);
      record.set("summary", to_json(outcome.summary, deadline));
      techniques.push_back(std::move(record));
    }
    entry.set("techniques", std::move(techniques));
    applications.push_back(std::move(entry));
  }
  doc.set("applications", std::move(applications));
  return doc;
}

Json metrics_json() { return MetricsRegistry::global().snapshot().to_json(); }

namespace {

/// Appends the global metrics snapshot under "metrics" when the registry
/// is collecting; a disabled registry leaves the report untouched.
void maybe_attach_metrics(Json& doc) {
  if (MetricsRegistry::global().enabled()) doc.set("metrics", metrics_json());
}

/// Appends the Stage I phase breakdown under "stage1_profile" when the
/// self-profiler is enabled and has accumulated any time.
void maybe_attach_stage1_profile(Json& doc) {
  if (!PhaseProfiler::global().enabled()) return;
  Json profile = PhaseProfiler::global().to_json();
  if (!profile.is_null()) doc.set("stage1_profile", std::move(profile));
}

}  // namespace

Json make_run_report(const std::string& label, const sim::RunResult& run, double deadline) {
  Json doc = Json::object();
  doc.set("schema", kRunReportSchema);
  doc.set("label", label);
  if (std::isfinite(deadline)) {
    doc.set("deadline", deadline);
    doc.set("deadline_slack", deadline - run.makespan);
  }
  doc.set("run", to_json(run));
  maybe_attach_metrics(doc);
  return doc;
}

Json make_scenario_report(const core::Framework& framework,
                          const core::ScenarioResult& scenario,
                          const std::vector<sysmodel::AvailabilitySpec>& cases) {
  Json doc = Json::object();
  doc.set("schema", kScenarioReportSchema);
  doc.set("scenario", scenario.name);
  doc.set("deadline", framework.deadline());
  doc.set("stage_one", to_json(scenario.stage_one, framework.platform()));
  doc.set("robustness", to_json(framework.robustness_report(scenario, cases)));
  Json per_case = Json::array();
  for (const core::StageTwoResult& stage_two : scenario.per_case) {
    per_case.push_back(to_json(stage_two, framework.deadline()));
  }
  doc.set("cases", std::move(per_case));
  maybe_attach_stage1_profile(doc);
  maybe_attach_metrics(doc);
  return doc;
}

Json make_plan_report(const core::Framework& framework,
                      const core::Framework::ExecutionPlan& plan,
                      const sim::BatchRunResult& result) {
  Json doc = Json::object();
  doc.set("schema", kPlanReportSchema);
  doc.set("deadline", framework.deadline());
  Json plan_doc = Json::object();
  plan_doc.set("phi1", plan.phi1);
  plan_doc.set("allocation", to_json(plan.allocation, framework.platform()));
  Json techniques = Json::array();
  for (dls::TechniqueId id : plan.techniques) {
    techniques.push_back(dls::technique_name(id));
  }
  plan_doc.set("techniques", std::move(techniques));
  doc.set("plan", std::move(plan_doc));
  Json makespans = Json::array();
  for (double psi : result.app_makespans) makespans.push_back(psi);
  doc.set("app_makespans", std::move(makespans));
  doc.set("system_makespan", result.system_makespan);
  doc.set("deadline_slack", framework.deadline() - result.system_makespan);
  doc.set("meets_deadline", result.system_makespan <= framework.deadline());
  maybe_attach_metrics(doc);
  return doc;
}

Json make_dynamic_report(const core::DynamicRunResult& result,
                         const core::DynamicConfig& config,
                         const sysmodel::Platform& platform) {
  Json doc = Json::object();
  doc.set("schema", kDynamicReportSchema);
  doc.set("technique", dls::technique_name(config.technique));
  doc.set("deadline_slack", config.deadline_slack);
  doc.set("remap_on_rho2", config.remap_on_rho2);
  if (config.remap_on_rho2) doc.set("rho2", config.rho2);
  doc.set("remap_triggered", result.remap_triggered);
  doc.set("realized_decrease", result.realized_decrease);
  if (config.escalate_speculation_on_risk) {
    doc.set("speculation_risk_floor", config.speculation_risk_floor);
    doc.set("speculation_escalations", result.speculation_escalations);
  }
  if (speculation_active(result.speculation_total)) {
    doc.set("speculation_total", to_json(result.speculation_total));
  }
  // The admission block (and the per-outcome disposition) only appear when
  // the admission layer is active, so default accept-all reports stay
  // byte-identical to the pre-admission schema.
  const bool admission_active = config.admission.active();
  if (admission_active) {
    const core::AdmissionConfig& adm = config.admission;
    const core::AdmissionStats& stats = result.admission;
    Json admission = Json::object();
    admission.set("policy", core::admission_policy_name(adm.policy));
    admission.set("queue_capacity", adm.queue_capacity);
    admission.set("queue_order",
                  adm.queue_order == core::QueueOrder::kEdf ? "edf" : "fifo");
    if (adm.admit_floor > 0.0) admission.set("admit_floor", adm.admit_floor);
    if (adm.shed_floor > 0.0) admission.set("shed_floor", adm.shed_floor);
    admission.set("ladder", adm.ladder);
    admission.set("arrivals", stats.arrivals);
    admission.set("admitted", stats.admitted);
    admission.set("queued", stats.queued);
    admission.set("rejected", stats.rejected);
    admission.set("shed", stats.shed);
    admission.set("ladder_steps", stats.ladder_steps);
    admission.set("max_tier", core::degradation_tier_name(static_cast<core::DegradationTier>(
                                  std::min<std::uint64_t>(stats.max_tier, 4))));
    admission.set("peak_queue_depth", stats.peak_queue_depth);
    admission.set("identity_holds", stats.identity_holds());
    admission.set("admitted_hit_rate", result.admitted_hit_rate);
    doc.set("admission", std::move(admission));
  }
  doc.set("deadline_hit_rate", result.deadline_hit_rate);
  doc.set("mean_queueing_delay", result.mean_queueing_delay);
  doc.set("utilization", result.utilization);
  doc.set("horizon", result.horizon);
  Json outcomes = Json::array();
  for (const core::DynamicOutcome& outcome : result.outcomes) {
    Json entry = Json::object();
    entry.set("arrival_time", outcome.arrival_time);
    entry.set("start_time", outcome.start_time);
    entry.set("completion_time", outcome.completion_time);
    entry.set("group", to_json(outcome.group, platform));
    entry.set("probability", outcome.probability);
    entry.set("met_deadline", outcome.met_deadline);
    entry.set("slack", outcome.arrival_time + outcome.deadline_slack - outcome.completion_time);
    if (admission_active) {
      const char* disposition = "admitted";
      if (outcome.disposition == core::DynamicOutcome::Disposition::kRejected) {
        disposition = "rejected";
      } else if (outcome.disposition == core::DynamicOutcome::Disposition::kShed) {
        disposition = "shed";
      }
      entry.set("disposition", disposition);
    }
    outcomes.push_back(std::move(entry));
  }
  doc.set("applications", std::move(outcomes));
  maybe_attach_metrics(doc);
  return doc;
}

Json make_chaos_report(const sim::ChaosReport& report, const sim::ChaosConfig& config) {
  Json doc = Json::object();
  doc.set("schema", kChaosReportSchema);
  Json campaign = Json::object();
  campaign.set("schedules", config.schedules);
  campaign.set("seed", config.seed);
  campaign.set("processors", config.processors);
  campaign.set("serial_iterations", config.serial_iterations);
  campaign.set("parallel_iterations", config.parallel_iterations);
  campaign.set("max_failures", config.max_failures);
  campaign.set("include_mpi", config.include_mpi);
  campaign.set("speculation", config.speculation);
  campaign.set("channel_faults", config.channel_faults);
  campaign.set("master_restart", config.master_restart);
  campaign.set("fail_slow", config.fail_slow);
  campaign.set("corruption", config.corruption);
  Json thread_counts = Json::array();
  for (std::size_t threads : config.thread_counts) thread_counts.push_back(threads);
  campaign.set("thread_counts", std::move(thread_counts));
  campaign.set("replications", config.replications);
  doc.set("campaign", std::move(campaign));
  doc.set("passed", report.passed());
  doc.set("schedules_run", report.schedules_run);
  doc.set("runs_executed", report.runs_executed);
  doc.set("failures_injected", report.failures_injected);
  doc.set("schedules_with_speculation", report.schedules_with_speculation);
  doc.set("schedules_with_channel_faults", report.schedules_with_channel_faults);
  doc.set("schedules_with_master_restart", report.schedules_with_master_restart);
  doc.set("schedules_with_quarantine", report.schedules_with_quarantine);
  doc.set("schedules_with_corruption", report.schedules_with_corruption);
  doc.set("max_makespan", report.max_makespan);
  Json violations = Json::array();
  for (const sim::ChaosViolation& violation : report.violations) {
    Json entry = Json::object();
    entry.set("schedule", violation.schedule);
    entry.set("seed", violation.seed);
    entry.set("executor", violation.executor);
    entry.set("invariant", violation.invariant);
    entry.set("detail", violation.detail);
    violations.push_back(std::move(entry));
  }
  doc.set("violations", std::move(violations));
  doc.set("faults_total", to_json(report.faults_total));
  doc.set("speculation_total", to_json(report.speculation_total));
  doc.set("channel_total", to_json(report.channel_total));
  doc.set("checkpoint_total", to_json(report.checkpoint_total));
  doc.set("quarantine_total", to_json(report.quarantine_total));
  maybe_attach_metrics(doc);
  return doc;
}

void write_json(const Json& document, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_json: cannot open " + path);
  out << document.dump(1) << "\n";
  if (!out) throw std::runtime_error("write_json: write failed for " + path);
}

}  // namespace cdsf::obs
