// Structured JSON run reports: machine-readable summaries of Stage I,
// Stage II, full scenarios, plan executions and dynamic-manager runs —
// phi_1, the robustness tuple (rho_1, rho_2), per-application completion
// times Psi and deadline slack, fault-tolerance accounting (FaultStats),
// DLS chunk statistics, and the global metrics snapshot.
//
// Numbers are serialized with shortest-round-trip formatting
// (std::to_chars), so emit -> Json::parse -> as_double() reproduces the
// in-memory doubles BIT-EXACTLY; tests rely on this.
//
// Schema details: docs/observability.md.
#pragma once

#include <string>

#include "cdsf/dynamic_manager.hpp"
#include "cdsf/framework.hpp"
#include "obs/json.hpp"
#include "sim/batch_executor.hpp"
#include "sim/chaos.hpp"
#include "sim/loop_executor.hpp"

namespace cdsf::obs {

/// `schema` value embedded in every top-level report.
inline constexpr const char* kRunReportSchema = "cdsf.run_report/1";
inline constexpr const char* kScenarioReportSchema = "cdsf.scenario_report/1";
inline constexpr const char* kPlanReportSchema = "cdsf.plan_report/1";
inline constexpr const char* kDynamicReportSchema = "cdsf.dynamic_report/1";
inline constexpr const char* kChaosReportSchema = "cdsf.chaos_report/4";
inline constexpr const char* kServiceReportSchema = "cdsf.service_report/1";

// -- building blocks ---------------------------------------------------

Json to_json(const stats::ConfidenceInterval& ci);
Json to_json(const sim::FaultStats& faults);
Json to_json(const sim::SpeculationStats& speculation);
Json to_json(const sim::ChannelStats& channel);
Json to_json(const sim::CheckpointStats& checkpoint);
Json to_json(const sim::QuarantineStats& quarantine);
Json to_json(const sim::WorkerStats& worker);
/// One executed run: makespan, serial_end, chunk statistics (count, and
/// when the run carries a trace, chunk-size min/mean/max), per-worker
/// accounting, fault stats, finish-time CoV. Hardened MPI runs add
/// "channel" / "checkpoint" blocks (plus a per-kind WAL summary) when the
/// corresponding counters are active; gray-failure runs add a
/// "quarantine" block the same way; clean runs keep the legacy shape.
Json to_json(const sim::RunResult& run);
/// Replication aggregate; `deadline` adds "deadline" and "deadline_slack"
/// (deadline - median makespan). Pass a non-finite deadline to omit both.
Json to_json(const sim::ReplicationSummary& summary, double deadline);
Json to_json(const ra::GroupAssignment& group, const sysmodel::Platform& platform);
Json to_json(const ra::Allocation& allocation, const sysmodel::Platform& platform);
Json to_json(const core::StageOneResult& stage_one, const sysmodel::Platform& platform);
Json to_json(const core::RobustnessReport& report);
/// One Stage II case: per-application technique outcomes + best picks.
Json to_json(const core::StageTwoResult& stage_two, double deadline);

/// Snapshot of the global MetricsRegistry (MetricsSnapshot::to_json()).
Json metrics_json();

// -- top-level reports -------------------------------------------------

/// Report for one simulated execution (idealized or MPI executor): `label`
/// names the run; non-finite `deadline` omits the slack fields.
Json make_run_report(const std::string& label, const sim::RunResult& run, double deadline);

/// Full scenario report: Stage I, robustness tuple over `cases` (cases[0]
/// must be the reference, as for Framework::robustness_report), and every
/// Stage II case. Includes the global metrics snapshot when the registry
/// is enabled.
Json make_scenario_report(const core::Framework& framework,
                          const core::ScenarioResult& scenario,
                          const std::vector<sysmodel::AvailabilitySpec>& cases);

/// Report for one locked-plan execution: the plan (allocation, techniques,
/// phi_1), per-application Psi, the system makespan, and deadline slack.
Json make_plan_report(const core::Framework& framework,
                      const core::Framework::ExecutionPlan& plan,
                      const sim::BatchRunResult& result);

/// Dynamic-manager run report: per-application outcomes (arrival, start,
/// completion, slack), aggregates, and the re-map decision counters.
Json make_dynamic_report(const core::DynamicRunResult& result,
                         const core::DynamicConfig& config,
                         const sysmodel::Platform& platform);

/// Chaos-campaign report: campaign shape, pass/fail, every invariant
/// violation (schedule index + replay seed), and aggregate fault /
/// speculation accounting over all executed runs.
Json make_chaos_report(const sim::ChaosReport& report, const sim::ChaosConfig& config);

/// Writes `document.dump(1)` to `path`; throws std::runtime_error on I/O
/// error.
void write_json(const Json& document, const std::string& path);

}  // namespace cdsf::obs
