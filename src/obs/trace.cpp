#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace cdsf::obs {

namespace {

const char* lifecycle_name(sim::LifecycleEvent::Kind kind) {
  using Kind = sim::LifecycleEvent::Kind;
  switch (kind) {
    case Kind::kWorkerCrash: return "worker_crash";
    case Kind::kWorkerRecover: return "worker_recover";
    case Kind::kWorkerSuspected: return "worker_suspected";
    case Kind::kWorkerDeclaredDead: return "worker_declared_dead";
    case Kind::kWorkerReinstated: return "worker_reinstated";
    case Kind::kChunkLost: return "chunk_reclaimed";
    case Kind::kChunkStraggler: return "chunk_straggler";
    case Kind::kChunkBackup: return "chunk_backup";
    case Kind::kChunkCancelled: return "chunk_cancelled";
    case Kind::kRiskEscalated: return "risk_escalated";
    case Kind::kRetransmit: return "assignment_retransmit";
    case Kind::kDedupHit: return "dedup_hit";
    case Kind::kMasterCrash: return "master_crash";
    case Kind::kMasterRestart: return "master_restart";
    case Kind::kCheckpoint: return "checkpoint";
    case Kind::kWorkerQuarantined: return "worker_quarantined";
    case Kind::kQuarantineProbe: return "quarantine_probe";
    case Kind::kWorkerRestored: return "worker_restored";
    case Kind::kAuditLaunched: return "audit_launched";
    case Kind::kAuditMismatch: return "audit_mismatch";
    case Kind::kMessageCorrupted: return "message_corrupted";
  }
  return "lifecycle";
}

}  // namespace

Json TraceSink::event_base(int pid, int tid, double ts, const std::string& name,
                           const std::string& categories) const {
  Json event = Json::object();
  event.set("name", name);
  if (!categories.empty()) event.set("cat", categories);
  event.set("ts", ts * time_scale_);
  event.set("pid", pid);
  event.set("tid", tid);
  return event;
}

void TraceSink::set_process_name(int pid, const std::string& name) {
  Json event = Json::object();
  event.set("name", "process_name");
  event.set("ph", "M");
  event.set("pid", pid);
  event.set("tid", 0);
  Json args = Json::object();
  args.set("name", name);
  event.set("args", std::move(args));
  events_.push_back(std::move(event));
}

void TraceSink::set_thread_name(int pid, int tid, const std::string& name) {
  Json event = Json::object();
  event.set("name", "thread_name");
  event.set("ph", "M");
  event.set("pid", pid);
  event.set("tid", tid);
  Json args = Json::object();
  args.set("name", name);
  event.set("args", std::move(args));
  events_.push_back(std::move(event));
}

void TraceSink::add_complete(int pid, int tid, double ts, double dur, const std::string& name,
                             const std::string& categories, Json args) {
  Json event = event_base(pid, tid, ts, name, categories);
  event.set("ph", "X");
  event.set("dur", dur * time_scale_);
  if (!args.is_null()) event.set("args", std::move(args));
  events_.push_back(std::move(event));
}

void TraceSink::add_instant(int pid, int tid, double ts, const std::string& name,
                            const std::string& categories, Json args) {
  Json event = event_base(pid, tid, ts, name, categories);
  event.set("ph", "i");
  event.set("s", "t");
  if (!args.is_null()) event.set("args", std::move(args));
  events_.push_back(std::move(event));
}

void TraceSink::add_process_instant(int pid, double ts, const std::string& name,
                                    const std::string& categories, Json args) {
  Json event = event_base(pid, 0, ts, name, categories);
  event.set("ph", "i");
  event.set("s", "p");
  if (!args.is_null()) event.set("args", std::move(args));
  events_.push_back(std::move(event));
}

void TraceSink::add_framework_event(double ts, const std::string& name, Json args) {
  add_process_instant(kFrameworkPid, ts, name, "framework", std::move(args));
}

void TraceSink::append_run(const sim::RunResult& run, const RunOptions& options) {
  if (run.workers.empty()) {
    throw std::invalid_argument("TraceSink::append_run: run has no workers");
  }

  if (!options.process_name.empty()) set_process_name(options.pid, options.process_name);
  for (std::size_t w = 0; w < run.workers.size(); ++w) {
    set_thread_name(options.pid, static_cast<int>(w), "worker " + std::to_string(w));
  }

  // A lost chunk's would-be end time can be +infinity (permanent crash);
  // clamp its slice to the worker's crash instant so the track shows the
  // work actually sunk, not fiction past the end of the run.
  std::vector<double> crash_time(run.workers.size(),
                                 std::numeric_limits<double>::infinity());
  for (const sim::LifecycleEvent& event : run.events) {
    if (event.kind == sim::LifecycleEvent::Kind::kWorkerCrash &&
        event.worker < crash_time.size()) {
      crash_time[event.worker] = std::min(crash_time[event.worker], event.time);
    }
  }

  if (run.serial_end > 0.0) {
    add_complete(options.pid, 0, 0.0, run.serial_end, "serial", "serial");
  }

  for (const sim::ChunkTraceEntry& chunk : run.trace) {
    const int tid = static_cast<int>(chunk.worker);
    if (chunk.start_time > chunk.dispatch_time) {
      add_complete(options.pid, tid, chunk.dispatch_time,
                   chunk.start_time - chunk.dispatch_time, "dispatch", "overhead");
    }
    double end = chunk.end_time;
    if (chunk.lost) {
      const double crash = crash_time[chunk.worker];
      end = std::isfinite(crash) ? std::max(crash, chunk.start_time)
                                 : std::min(end, run.makespan);
    }
    if (!std::isfinite(end)) end = run.makespan;
    Json args = Json::object();
    args.set("iterations", chunk.iterations);
    args.set("lost", chunk.lost);
    // Speculation markers only when set, so non-speculative traces (and
    // their goldens) are byte-identical to the pre-speculation format.
    if (chunk.speculative) args.set("speculative", true);
    if (chunk.cancelled) args.set("cancelled", true);
    // Gray-failure markers follow the same only-when-set rule: audit
    // replicas and canary probes never appear in gray-free traces.
    if (chunk.audit) args.set("audit", true);
    if (chunk.probe) args.set("probe", true);
    std::string categories = "chunk";
    if (chunk.lost) categories += ",lost";
    if (chunk.speculative) categories += ",speculative";
    if (chunk.cancelled) categories += ",cancelled";
    if (chunk.audit) categories += ",audit";
    if (chunk.probe) categories += ",probe";
    add_complete(options.pid, tid, chunk.start_time, end - chunk.start_time, "chunk",
                 categories, std::move(args));
  }

  for (const sim::LifecycleEvent& event : run.events) {
    Json args = Json::object();
    args.set("worker", event.worker);
    if (event.value != 0) args.set("value", event.value);
    add_instant(options.pid, static_cast<int>(event.worker), event.time,
                lifecycle_name(event.kind), "lifecycle", std::move(args));
  }

  if (options.epoch_length > 0.0) {
    std::size_t markers = 0;
    for (double t = options.epoch_length; t < run.makespan && markers < 512;
         t += options.epoch_length, ++markers) {
      add_process_instant(options.pid, t, "availability_epoch", "epoch");
    }
  }
}

Json TraceSink::to_json() const {
  Json doc = Json::object();
  doc.set("displayTimeUnit", "ms");
  Json events = Json::array();
  for (const Json& event : events_) events.push_back(event);
  doc.set("traceEvents", std::move(events));
  return doc;
}

std::string TraceSink::to_string() const { return to_json().dump(1); }

void TraceSink::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TraceSink::write: cannot open " + path);
  out << to_string() << "\n";
  if (!out) throw std::runtime_error("TraceSink::write: write failed for " + path);
}

}  // namespace cdsf::obs
