// Chrome/Perfetto trace_event sink: converts the simulator's per-chunk
// trace (sim::ChunkTraceEntry) and scheduler lifecycle events
// (sim::LifecycleEvent) into the Trace Event JSON format, loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Mapping: one trace PROCESS per simulated run (pid = application index,
// named after the application) and one TRACK per worker (tid = worker).
// Chunks render as complete ('X') slices — category "chunk", or
// "chunk,lost" for chunks stranded by a crash (their duration is clamped
// to the crash instant). Dispatch overhead renders as a separate
// "overhead" slice; lifecycle moments render as instant ('i') markers;
// availability epoch boundaries as process-scoped instants. One simulated
// time unit maps to one trace microsecond.
//
// Schema details: docs/observability.md.
#pragma once

#include <string>

#include "obs/json.hpp"
#include "sim/loop_executor.hpp"

namespace cdsf::obs {

class TraceSink {
 public:
  /// `time_scale` converts simulated time units to trace microseconds.
  explicit TraceSink(double time_scale = 1.0) : time_scale_(time_scale) {}

  /// Metadata: names shown by the viewer for a process / thread track.
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  /// A complete slice (ph = "X").
  void add_complete(int pid, int tid, double ts, double dur, const std::string& name,
                    const std::string& categories = "", Json args = Json());
  /// A thread-scoped instant marker (ph = "i", s = "t").
  void add_instant(int pid, int tid, double ts, const std::string& name,
                   const std::string& categories = "", Json args = Json());
  /// A process-scoped instant marker (ph = "i", s = "p").
  void add_process_instant(int pid, double ts, const std::string& name,
                           const std::string& categories = "", Json args = Json());

  /// Framework-level lifecycle marker (Stage I allocation chosen,
  /// robustness certificate, rho_2-triggered re-map, ...) on the dedicated
  /// "framework" process track (pid = kFrameworkPid).
  void add_framework_event(double ts, const std::string& name, Json args = Json());
  static constexpr int kFrameworkPid = 1000;

  struct RunOptions {
    /// Trace process id for this run (use the application index).
    int pid = 0;
    /// Process name shown by the viewer (use the application name).
    std::string process_name;
    /// When > 0, emit "availability_epoch" instants every epoch_length
    /// time units up to the makespan (capped at 512 markers).
    double epoch_length = 0.0;
  };

  /// Appends one simulated run: serial-phase slice, chunk + overhead
  /// slices per worker track, and the run's lifecycle instants. Requires
  /// the run to have been produced with SimConfig::collect_trace = true
  /// (throws std::invalid_argument on an empty trace with no workers).
  void append_run(const sim::RunResult& run, const RunOptions& options);

  [[nodiscard]] std::size_t event_count() const noexcept { return events_.size(); }

  /// The complete document: {"displayTimeUnit": "ms", "traceEvents": [...]}.
  [[nodiscard]] Json to_json() const;
  /// to_json() pretty-printed.
  [[nodiscard]] std::string to_string() const;
  /// Writes to_string() to `path`; throws std::runtime_error on I/O error.
  void write(const std::string& path) const;

 private:
  Json event_base(int pid, int tid, double ts, const std::string& name,
                  const std::string& categories) const;

  double time_scale_;
  std::vector<Json> events_;
};

}  // namespace cdsf::obs
