#include "pmf/discretize.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cdsf::pmf {

Pmf discretize_quantile(const stats::Distribution& dist, std::size_t pulses) {
  if (pulses == 0) throw std::invalid_argument("discretize_quantile: pulses must be > 0");
  std::vector<Pulse> out;
  out.reserve(pulses);
  const double p = 1.0 / static_cast<double>(pulses);
  for (std::size_t i = 0; i < pulses; ++i) {
    const double q = (static_cast<double>(i) + 0.5) * p;
    out.push_back({dist.quantile(q), p});
  }
  return Pmf::from_pulses(std::move(out));
}

Pmf discretize_sampling(const stats::Distribution& dist, std::size_t samples,
                        std::size_t pulses, util::RngStream& rng) {
  if (samples == 0) throw std::invalid_argument("discretize_sampling: samples must be > 0");
  if (pulses == 0) throw std::invalid_argument("discretize_sampling: pulses must be > 0");
  std::vector<Pulse> out;
  out.reserve(samples);
  const double p = 1.0 / static_cast<double>(samples);
  for (std::size_t i = 0; i < samples; ++i) out.push_back({dist.sample(rng), p});
  return Pmf::from_pulses(std::move(out)).compacted(pulses);
}

Pmf discretize_quantile_truncated(const stats::Distribution& dist, std::size_t pulses,
                                  double lo) {
  return discretize_quantile(dist, pulses).map([lo](double v) { return std::max(v, lo); });
}

}  // namespace cdsf::pmf
