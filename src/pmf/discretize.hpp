// Constructing PMFs from continuous distributions.
//
// The paper builds its execution-time PMFs "by sampling a normal
// distribution" (Section IV). Two discretizers are provided:
//  * quantile-grid — deterministic, n equal-probability pulses placed at
//    the conditional means of the quantile strata (preserves the mean to
//    first order and converges to the law as n grows);
//  * Monte-Carlo — the paper-literal approach: sample, then bin.
#pragma once

#include <cstddef>

#include "pmf/pmf.hpp"
#include "stats/distribution.hpp"
#include "util/rng.hpp"

namespace cdsf::pmf {

/// Deterministic discretization into `pulses` equal-probability pulses.
/// Pulse i is placed at quantile((i + 0.5) / pulses) — the midpoint rule on
/// the probability axis. Throws std::invalid_argument if pulses == 0.
[[nodiscard]] Pmf discretize_quantile(const stats::Distribution& dist, std::size_t pulses);

/// Monte-Carlo discretization: draw `samples` values, then compact the
/// empirical PMF to at most `pulses` pulses. Deterministic given the seed.
/// Throws std::invalid_argument if samples == 0 or pulses == 0.
[[nodiscard]] Pmf discretize_sampling(const stats::Distribution& dist, std::size_t samples,
                                      std::size_t pulses, util::RngStream& rng);

/// Truncates the distribution's support to [lo, inf) before quantile
/// discretization — used for execution times, which must stay positive even
/// when the normal's left tail dips below zero. Implemented by clamping
/// quantile outputs at lo.
[[nodiscard]] Pmf discretize_quantile_truncated(const stats::Distribution& dist,
                                                std::size_t pulses, double lo);

}  // namespace cdsf::pmf
