#include "pmf/ops.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "obs/profile.hpp"

namespace cdsf::pmf {

namespace {

/// All-pairs combine without compaction.
std::vector<Pulse> product_pulses(const Pmf& x, const Pmf& y,
                                  const std::function<double(double, double)>& f) {
  std::vector<Pulse> out;
  out.reserve(x.size() * y.size());
  for (const Pulse& px : x.pulses()) {
    for (const Pulse& py : y.pulses()) {
      out.push_back({f(px.value, py.value), px.probability * py.probability});
    }
  }
  return out;
}

}  // namespace

Pmf combine(const Pmf& x, const Pmf& y, const std::function<double(double, double)>& f,
            std::size_t max_pulses) {
  obs::PhaseTimer phase(obs::Phase::kPmfConvolution);
  return Pmf::from_pulses(product_pulses(x, y, f)).compacted(max_pulses);
}

Pmf convolve_sum(const Pmf& x, const Pmf& y, std::size_t max_pulses) {
  return combine(x, y, [](double a, double b) { return a + b; }, max_pulses);
}

Pmf independent_max(const Pmf& x, const Pmf& y) {
  // Support of max(X, Y) is a subset of the union of supports; the CDF of
  // the max is the product of CDFs, so assemble pulses from CDF increments.
  std::vector<double> support;
  support.reserve(x.size() + y.size());
  for (const Pulse& pulse : x.pulses()) support.push_back(pulse.value);
  for (const Pulse& pulse : y.pulses()) support.push_back(pulse.value);
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());

  std::vector<Pulse> out;
  out.reserve(support.size());
  double prev_cdf = 0.0;
  for (double v : support) {
    const double joint = x.cdf(v) * y.cdf(v);
    const double mass = joint - prev_cdf;
    if (mass > 0.0) out.push_back({v, mass});
    prev_cdf = joint;
  }
  return Pmf::from_pulses(std::move(out));
}

Pmf independent_min(const Pmf& x, const Pmf& y) {
  std::vector<double> support;
  support.reserve(x.size() + y.size());
  for (const Pulse& pulse : x.pulses()) support.push_back(pulse.value);
  for (const Pulse& pulse : y.pulses()) support.push_back(pulse.value);
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());

  // P(min > v) = P(X > v) P(Y > v); pulses are decrements of the survival.
  std::vector<Pulse> out;
  out.reserve(support.size());
  double prev_survival = 1.0;
  for (double v : support) {
    const double survival = x.tail(v) * y.tail(v);
    const double mass = prev_survival - survival;
    if (mass > 0.0) out.push_back({v, mass});
    prev_survival = survival;
  }
  return Pmf::from_pulses(std::move(out));
}

Pmf apply_availability(const Pmf& time, const Pmf& availability, std::size_t max_pulses) {
  for (const Pulse& pulse : availability.pulses()) {
    if (!(pulse.value > 0.0)) {
      throw std::invalid_argument("apply_availability: availability pulses must be > 0");
    }
  }
  return combine(time, availability, [](double t, double a) { return t / a; }, max_pulses);
}

Pmf mixture(const Pmf& x, double w, const Pmf& y) {
  if (!(w >= 0.0 && w <= 1.0)) throw std::invalid_argument("mixture: w must be in [0, 1]");
  std::vector<Pulse> out;
  out.reserve(x.size() + y.size());
  for (const Pulse& pulse : x.pulses()) out.push_back({pulse.value, w * pulse.probability});
  for (const Pulse& pulse : y.pulses()) {
    out.push_back({pulse.value, (1.0 - w) * pulse.probability});
  }
  return Pmf::from_pulses(std::move(out));
}

}  // namespace cdsf::pmf
