// Binary operations on independent PMFs.
//
// All operations assume independence of the operands — the paper's model
// makes the same assumption (independent application execution times,
// availability independent of workload).
#pragma once

#include <cstddef>
#include <functional>

#include "pmf/pmf.hpp"

namespace cdsf::pmf {

/// Default pulse budget applied by the combining operations; product
/// measures grow multiplicatively, so results are compacted to this size
/// unless the caller asks for more.
inline constexpr std::size_t kDefaultMaxPulses = 512;

/// PMF of X + Y (sum-convolution).
[[nodiscard]] Pmf convolve_sum(const Pmf& x, const Pmf& y,
                               std::size_t max_pulses = kDefaultMaxPulses);

/// PMF of max(X, Y) for independent X, Y — the completion time of two
/// parallel independent activities. Computed via joint CDF factorization.
[[nodiscard]] Pmf independent_max(const Pmf& x, const Pmf& y);

/// PMF of min(X, Y) for independent X, Y.
[[nodiscard]] Pmf independent_min(const Pmf& x, const Pmf& y);

/// Generic product-measure combine: PMF of f(X, Y).
[[nodiscard]] Pmf combine(const Pmf& x, const Pmf& y,
                          const std::function<double(double, double)>& f,
                          std::size_t max_pulses = kDefaultMaxPulses);

/// The paper's "convolution with availability": the PMF of T / A, where T
/// is a completion-time PMF on fully dedicated processors and A an
/// availability PMF in (0, 1]. A processor at availability a delivers an
/// a-fraction of its compute rate, so wall-clock time scales by 1/a.
/// Throws std::invalid_argument if any availability pulse is <= 0.
[[nodiscard]] Pmf apply_availability(const Pmf& time, const Pmf& availability,
                                     std::size_t max_pulses = kDefaultMaxPulses);

/// Mixture: with probability w takes a draw of X, else of Y.
/// Requires w in [0, 1].
[[nodiscard]] Pmf mixture(const Pmf& x, double w, const Pmf& y);

}  // namespace cdsf::pmf
