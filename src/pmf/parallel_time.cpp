#include "pmf/parallel_time.hpp"

#include <cmath>
#include <stdexcept>

namespace cdsf::pmf {

namespace {
void validate(WorkSplit split, std::size_t processors) {
  if (processors == 0) throw std::invalid_argument("parallel_time: processors must be > 0");
  if (split.serial_fraction < 0.0 || split.parallel_fraction < 0.0) {
    throw std::invalid_argument("parallel_time: fractions must be >= 0");
  }
  if (std::fabs(split.serial_fraction + split.parallel_fraction - 1.0) > 1e-9) {
    throw std::invalid_argument("parallel_time: fractions must sum to 1");
  }
}
}  // namespace

double parallel_time_scalar(double single_processor_time, WorkSplit split,
                            std::size_t processors) {
  validate(split, processors);
  return split.serial_fraction * single_processor_time +
         split.parallel_fraction * single_processor_time / static_cast<double>(processors);
}

Pmf parallel_time(const Pmf& single_processor_time, WorkSplit split, std::size_t processors) {
  validate(split, processors);
  const double factor =
      split.serial_fraction + split.parallel_fraction / static_cast<double>(processors);
  return single_processor_time.scaled(factor);
}

double amdahl_speedup(WorkSplit split, std::size_t processors) {
  validate(split, processors);
  return 1.0 / (split.serial_fraction +
                split.parallel_fraction / static_cast<double>(processors));
}

}  // namespace cdsf::pmf
