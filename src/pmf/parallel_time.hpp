// Equation (2) of the paper: the parallel execution-time PMF of an
// application on n processors of one type, derived pulse-by-pulse from the
// single-processor PMF:
//
//     T_ijxn = s_ij * T_ijx + (p_ij * T_ijx) / n_ij
//
// Each pulse's time changes; its probability does not.
#pragma once

#include <cstddef>

#include "pmf/pmf.hpp"

namespace cdsf::pmf {

/// Serial/parallel split of an application's work. Fractions must be
/// nonnegative and sum to 1 (within 1e-9).
struct WorkSplit {
  double serial_fraction = 0.0;
  double parallel_fraction = 1.0;
};

/// Applies Eq. (2) to every pulse of `single_processor_time`.
/// Throws std::invalid_argument if processors == 0 or the split is invalid.
[[nodiscard]] Pmf parallel_time(const Pmf& single_processor_time, WorkSplit split,
                                std::size_t processors);

/// Deterministic form of Eq. (2) for scalar times (used by the simulator's
/// sanity cross-checks and by tests): s*t + p*t/n.
[[nodiscard]] double parallel_time_scalar(double single_processor_time, WorkSplit split,
                                          std::size_t processors);

/// Amdahl speedup implied by Eq. (2): t / parallel_time_scalar(t, ...).
[[nodiscard]] double amdahl_speedup(WorkSplit split, std::size_t processors);

}  // namespace cdsf::pmf
