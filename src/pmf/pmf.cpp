#include "pmf/pmf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/profile.hpp"

namespace cdsf::pmf {

namespace {

// Pulses whose values differ by less than this relative tolerance merge
// during canonicalization (guards against floating-point near-duplicates
// produced by product-measure combines).
constexpr double kValueMergeRelTol = 1e-12;

bool nearly_equal(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= kValueMergeRelTol * scale;
}

std::vector<Pulse> canonicalize(std::vector<Pulse> pulses) {
  for (const Pulse& pulse : pulses) {
    if (!std::isfinite(pulse.value) || !std::isfinite(pulse.probability)) {
      throw std::invalid_argument("Pmf: pulse value/probability must be finite");
    }
    if (pulse.probability < 0.0) {
      throw std::invalid_argument("Pmf: pulse probability must be >= 0");
    }
  }
  std::erase_if(pulses, [](const Pulse& pulse) { return pulse.probability == 0.0; });
  if (pulses.empty()) {
    throw std::invalid_argument("Pmf: at least one positive-probability pulse required");
  }
  std::sort(pulses.begin(), pulses.end(),
            [](const Pulse& a, const Pulse& b) { return a.value < b.value; });

  std::vector<Pulse> merged;
  merged.reserve(pulses.size());
  for (const Pulse& pulse : pulses) {
    if (!merged.empty() && nearly_equal(merged.back().value, pulse.value)) {
      merged.back().probability += pulse.probability;
    } else {
      merged.push_back(pulse);
    }
  }

  double total = 0.0;
  for (const Pulse& pulse : merged) total += pulse.probability;
  if (!(total > 0.0)) {
    throw std::invalid_argument("Pmf: total probability mass must be > 0");
  }
  for (Pulse& pulse : merged) pulse.probability /= total;
  return merged;
}

}  // namespace

Pmf Pmf::from_pulses(std::vector<Pulse> pulses) { return Pmf(canonicalize(std::move(pulses))); }

Pmf Pmf::delta(double value) { return from_pulses({{value, 1.0}}); }

Pmf Pmf::uniform_over(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("Pmf::uniform_over: empty value list");
  std::vector<Pulse> pulses;
  pulses.reserve(values.size());
  const double p = 1.0 / static_cast<double>(values.size());
  for (double v : values) pulses.push_back({v, p});
  return from_pulses(std::move(pulses));
}

double Pmf::expectation() const noexcept {
  double sum = 0.0;
  for (const Pulse& pulse : pulses_) sum += pulse.value * pulse.probability;
  return sum;
}

double Pmf::variance() const noexcept {
  const double mu = expectation();
  double sum = 0.0;
  for (const Pulse& pulse : pulses_) {
    const double d = pulse.value - mu;
    sum += d * d * pulse.probability;
  }
  return sum;
}

double Pmf::stddev() const noexcept { return std::sqrt(variance()); }

double Pmf::cdf(double x) const noexcept {
  double sum = 0.0;
  for (const Pulse& pulse : pulses_) {
    if (pulse.value > x) break;
    sum += pulse.probability;
  }
  return std::min(sum, 1.0);
}

double Pmf::tail(double x) const noexcept {
  double sum = 0.0;
  for (auto it = pulses_.rbegin(); it != pulses_.rend(); ++it) {
    if (it->value <= x) break;
    sum += it->probability;
  }
  return std::min(sum, 1.0);
}

double Pmf::quantile(double p) const {
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument("Pmf::quantile: p must be in [0, 1]");
  if (p == 0.0) return min();
  double cumulative = 0.0;
  for (const Pulse& pulse : pulses_) {
    cumulative += pulse.probability;
    if (cumulative >= p - 1e-15) return pulse.value;
  }
  return max();
}

double Pmf::expect(const std::function<double(double)>& f) const {
  double sum = 0.0;
  for (const Pulse& pulse : pulses_) sum += f(pulse.value) * pulse.probability;
  return sum;
}

double Pmf::conditional_value_at_risk(double alpha) const {
  if (!(alpha >= 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("conditional_value_at_risk: alpha must be in [0, 1)");
  }
  const double tail_mass = 1.0 - alpha;
  // Walk from the top until `tail_mass` probability is accumulated; the
  // pulse straddling the boundary contributes only its in-tail fraction.
  double remaining = tail_mass;
  double weighted = 0.0;
  for (auto it = pulses_.rbegin(); it != pulses_.rend() && remaining > 1e-15; ++it) {
    const double take = std::min(it->probability, remaining);
    weighted += it->value * take;
    remaining -= take;
  }
  return weighted / tail_mass;
}

double Pmf::expected_tardiness(double deadline) const noexcept {
  double sum = 0.0;
  for (auto it = pulses_.rbegin(); it != pulses_.rend(); ++it) {
    if (it->value <= deadline) break;
    sum += (it->value - deadline) * it->probability;
  }
  return sum;
}

Pmf Pmf::map(const std::function<double(double)>& f) const {
  std::vector<Pulse> out;
  out.reserve(pulses_.size());
  for (const Pulse& pulse : pulses_) out.push_back({f(pulse.value), pulse.probability});
  return from_pulses(std::move(out));
}

Pmf Pmf::scaled(double factor) const {
  return map([factor](double v) { return v * factor; });
}

Pmf Pmf::shifted(double offset) const {
  return map([offset](double v) { return v + offset; });
}

Pmf Pmf::compacted(std::size_t max_pulses) const {
  if (max_pulses == 0) throw std::invalid_argument("Pmf::compacted: max_pulses must be > 0");
  if (pulses_.size() <= max_pulses) return *this;
  obs::PhaseTimer phase(obs::Phase::kPmfCompaction);

  // Greedy nearest-pair merging on the sorted pulse list. Cost of merging
  // adjacent pulses (v1,p1),(v2,p2): the mass-weighted squared spread they
  // would collapse — exactly the variance the merge removes.
  std::vector<Pulse> work = pulses_;
  auto merge_cost = [](const Pulse& a, const Pulse& b) {
    const double mass = a.probability + b.probability;
    const double d = b.value - a.value;
    return (a.probability * b.probability / mass) * d * d;
  };

  while (work.size() > max_pulses) {
    std::size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < work.size(); ++i) {
      const double cost = merge_cost(work[i], work[i + 1]);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    const double mass = work[best].probability + work[best + 1].probability;
    const double value = (work[best].value * work[best].probability +
                          work[best + 1].value * work[best + 1].probability) /
                         mass;
    work[best] = Pulse{value, mass};
    work.erase(work.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }
  return from_pulses(std::move(work));
}

double Pmf::sample_with(double u) const {
  if (!(u >= 0.0 && u < 1.0)) throw std::invalid_argument("Pmf::sample_with: u must be in [0, 1)");
  double cumulative = 0.0;
  for (const Pulse& pulse : pulses_) {
    cumulative += pulse.probability;
    if (u < cumulative) return pulse.value;
  }
  return max();
}

std::string Pmf::to_string() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < pulses_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "(" << pulses_[i].value << ", " << pulses_[i].probability << ")";
  }
  out << "}";
  return out.str();
}

}  // namespace cdsf::pmf
