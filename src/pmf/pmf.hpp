// Discrete probability mass functions over real values ("pulses").
//
// This is the stochastic-time engine of Stage I: execution times and
// availabilities are PMFs, Eq. (2) of the paper is a per-pulse transform,
// combining time with availability is a product-measure combine, and
// Pr(completion <= deadline) is a CDF query. See src/pmf/ops.hpp for the
// binary operations and src/pmf/discretize.hpp for constructing PMFs from
// continuous distributions.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace cdsf::pmf {

/// One pulse: the random variable takes `value` with probability `probability`.
struct Pulse {
  double value = 0.0;
  double probability = 0.0;

  friend bool operator==(const Pulse&, const Pulse&) = default;
};

/// An immutable-after-construction PMF. Invariants (enforced on every
/// construction path):
///   * at least one pulse,
///   * pulses sorted by strictly increasing value (duplicates merged),
///   * all probabilities > 0 and summing to 1 (normalized on construction).
class Pmf {
 public:
  /// Builds a PMF from arbitrary pulses: sorts, merges equal values,
  /// drops zero-probability pulses and normalizes the total mass to 1.
  /// Throws std::invalid_argument if no positive-probability pulse remains
  /// or any probability is negative / non-finite.
  static Pmf from_pulses(std::vector<Pulse> pulses);

  /// Degenerate PMF: the constant `value` with probability 1.
  static Pmf delta(double value);

  /// Uniform PMF over the given values (duplicates merge and accumulate).
  static Pmf uniform_over(const std::vector<double>& values);

  [[nodiscard]] std::size_t size() const noexcept { return pulses_.size(); }
  [[nodiscard]] const std::vector<Pulse>& pulses() const noexcept { return pulses_; }
  [[nodiscard]] double value(std::size_t i) const { return pulses_.at(i).value; }
  [[nodiscard]] double probability(std::size_t i) const { return pulses_.at(i).probability; }

  [[nodiscard]] double min() const noexcept { return pulses_.front().value; }
  [[nodiscard]] double max() const noexcept { return pulses_.back().value; }

  [[nodiscard]] double expectation() const noexcept;
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// P(X <= x). Pulses at exactly x are included.
  [[nodiscard]] double cdf(double x) const noexcept;
  /// P(X > x) = 1 - cdf(x), computed directly for accuracy in the tail.
  [[nodiscard]] double tail(double x) const noexcept;
  /// Smallest pulse value v with cdf(v) >= p. Requires p in [0, 1]; p == 0
  /// returns min().
  [[nodiscard]] double quantile(double p) const;

  /// E[f(X)] for an arbitrary f.
  [[nodiscard]] double expect(const std::function<double(double)>& f) const;

  /// Conditional value at risk (expected shortfall): E[X | X >= VaR_alpha],
  /// the mean of the worst (1 - alpha) tail. alpha in [0, 1); alpha = 0 is
  /// the plain expectation. The boundary pulse contributes fractionally so
  /// CVaR is continuous in alpha. Throws std::invalid_argument outside
  /// [0, 1).
  [[nodiscard]] double conditional_value_at_risk(double alpha) const;

  /// Expected tardiness against a deadline: E[max(X - deadline, 0)] — the
  /// natural "how badly do we miss" companion to Pr(X <= deadline).
  [[nodiscard]] double expected_tardiness(double deadline) const noexcept;

  /// New PMF of f(X) (values transformed, masses at equal images merged).
  /// f need not be monotone.
  [[nodiscard]] Pmf map(const std::function<double(double)>& f) const;

  /// Affine conveniences.
  [[nodiscard]] Pmf scaled(double factor) const;
  [[nodiscard]] Pmf shifted(double offset) const;

  /// Reduces the PMF to at most `max_pulses` pulses by repeatedly merging
  /// the pair of value-adjacent pulses whose merge perturbs the
  /// distribution least (mass-weighted value spread). The merged pulse sits
  /// at the probability-weighted mean, so expectation is preserved exactly;
  /// variance shrinks by at most the merged pairs' internal spread.
  [[nodiscard]] Pmf compacted(std::size_t max_pulses) const;

  /// Draws one value according to the PMF. `u` must be a uniform [0,1) draw.
  [[nodiscard]] double sample_with(double u) const;

  /// "{(v1, p1), (v2, p2), ...}" — for diagnostics and test failure output.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Pmf&, const Pmf&) = default;

 private:
  explicit Pmf(std::vector<Pulse> sorted_normalized)
      : pulses_(std::move(sorted_normalized)) {}

  std::vector<Pulse> pulses_;
};

}  // namespace cdsf::pmf
