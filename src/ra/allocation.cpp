#include "ra/allocation.hpp"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace cdsf::ra {

bool Allocation::fits(const sysmodel::Platform& platform) const noexcept {
  std::vector<std::size_t> used(platform.type_count(), 0);
  for (const GroupAssignment& group : groups_) {
    if (group.processors == 0) return false;
    if (group.processor_type >= platform.type_count()) return false;
    used[group.processor_type] += group.processors;
  }
  for (std::size_t j = 0; j < platform.type_count(); ++j) {
    if (used[j] > platform.processors_of_type(j)) return false;
  }
  return true;
}

std::size_t Allocation::used_of_type(std::size_t type) const noexcept {
  std::size_t used = 0;
  for (const GroupAssignment& group : groups_) {
    if (group.processor_type == type) used += group.processors;
  }
  return used;
}

std::size_t Allocation::total_processors() const noexcept {
  std::size_t total = 0;
  for (const GroupAssignment& group : groups_) total += group.processors;
  return total;
}

std::string Allocation::to_string(const sysmodel::Platform& platform) const {
  std::ostringstream out;
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (i > 0) out << ", ";
    out << "app" << (i + 1) << " -> " << groups_[i].processors << " x ";
    out << (groups_[i].processor_type < platform.type_count()
                ? platform.type(groups_[i].processor_type).name
                : "?");
  }
  return out.str();
}

std::vector<std::size_t> candidate_counts(std::size_t capacity, CountRule rule) {
  std::vector<std::size_t> counts;
  if (rule == CountRule::kPowerOfTwo) {
    for (std::size_t c = 1; c <= capacity; c *= 2) counts.push_back(c);
  } else {
    counts.reserve(capacity);
    for (std::size_t c = 1; c <= capacity; ++c) counts.push_back(c);
  }
  return counts;
}

namespace {

/// Depth-first enumeration over applications; `sink` receives each complete
/// feasible allocation. Returns the number of allocations produced.
std::size_t enumerate_recursive(std::size_t app, std::size_t applications,
                                const sysmodel::Platform& platform, CountRule rule,
                                std::vector<std::size_t>& remaining,
                                std::vector<GroupAssignment>& current,
                                const std::function<void(const std::vector<GroupAssignment>&)>& sink) {
  if (app == applications) {
    if (sink) sink(current);
    return 1;
  }
  std::size_t produced = 0;
  for (std::size_t type = 0; type < platform.type_count(); ++type) {
    for (std::size_t count : candidate_counts(remaining[type], rule)) {
      remaining[type] -= count;
      current.push_back(GroupAssignment{type, count});
      produced += enumerate_recursive(app + 1, applications, platform, rule, remaining,
                                      current, sink);
      current.pop_back();
      remaining[type] += count;
    }
  }
  return produced;
}

std::vector<std::size_t> initial_capacity(const sysmodel::Platform& platform) {
  std::vector<std::size_t> remaining(platform.type_count());
  for (std::size_t j = 0; j < platform.type_count(); ++j) {
    remaining[j] = platform.processors_of_type(j);
  }
  return remaining;
}

}  // namespace

std::vector<Allocation> enumerate_feasible(std::size_t applications,
                                           const sysmodel::Platform& platform, CountRule rule) {
  if (applications == 0) {
    throw std::invalid_argument("enumerate_feasible: applications must be >= 1");
  }
  std::vector<Allocation> result;
  std::vector<std::size_t> remaining = initial_capacity(platform);
  std::vector<GroupAssignment> current;
  current.reserve(applications);
  enumerate_recursive(0, applications, platform, rule, remaining, current,
                      [&result](const std::vector<GroupAssignment>& groups) {
                        result.emplace_back(groups);
                      });
  return result;
}

std::size_t count_feasible(std::size_t applications, const sysmodel::Platform& platform,
                           CountRule rule) {
  if (applications == 0) {
    throw std::invalid_argument("count_feasible: applications must be >= 1");
  }
  std::vector<std::size_t> remaining = initial_capacity(platform);
  std::vector<GroupAssignment> current;
  current.reserve(applications);
  return enumerate_recursive(0, applications, platform, rule, remaining, current, nullptr);
}

}  // namespace cdsf::ra
