// Resource allocations: the output of Stage I.
//
// An Allocation maps every application of a batch to a group assignment —
// a processor type and a processor count (single-type groups, per the
// paper's model). The paper additionally restricts counts to powers of two;
// that rule is a parameter here so the large-scale extension studies can
// relax it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sysmodel/platform.hpp"

namespace cdsf::ra {

/// Group of processors assigned to one application.
struct GroupAssignment {
  std::size_t processor_type = 0;
  std::size_t processors = 0;

  friend bool operator==(const GroupAssignment&, const GroupAssignment&) = default;
};

/// Which processor counts a group may take.
enum class CountRule { kPowerOfTwo, kAny };

/// A complete assignment for a batch (index i == application i).
class Allocation {
 public:
  Allocation() = default;
  explicit Allocation(std::vector<GroupAssignment> groups) : groups_(std::move(groups)) {}

  [[nodiscard]] std::size_t size() const noexcept { return groups_.size(); }
  [[nodiscard]] const GroupAssignment& at(std::size_t i) const { return groups_.at(i); }
  [[nodiscard]] const std::vector<GroupAssignment>& groups() const noexcept { return groups_; }

  /// True when every group has >= 1 processor of a type the platform knows
  /// and the per-type processor totals fit the platform's capacity.
  [[nodiscard]] bool fits(const sysmodel::Platform& platform) const noexcept;

  /// Processors of `type` this allocation consumes.
  [[nodiscard]] std::size_t used_of_type(std::size_t type) const noexcept;

  /// Total processors consumed.
  [[nodiscard]] std::size_t total_processors() const noexcept;

  /// "app1 -> 2 x type1, app2 -> ..." (diagnostics, bench output).
  [[nodiscard]] std::string to_string(const sysmodel::Platform& platform) const;

  friend bool operator==(const Allocation&, const Allocation&) = default;

 private:
  std::vector<GroupAssignment> groups_;
};

/// The processor counts a group may take on a type with `capacity`
/// processors under `rule`, ascending (e.g. capacity 8, power-of-2:
/// {1, 2, 4, 8}).
[[nodiscard]] std::vector<std::size_t> candidate_counts(std::size_t capacity, CountRule rule);

/// Every feasible allocation of `applications` groups onto `platform`
/// under `rule` (all applications assigned, capacities respected).
/// Exhaustive — exponential in the batch size; intended for paper-scale
/// instances and for validating heuristics on small instances.
/// Throws std::invalid_argument if applications == 0.
[[nodiscard]] std::vector<Allocation> enumerate_feasible(std::size_t applications,
                                                         const sysmodel::Platform& platform,
                                                         CountRule rule);

/// Number of feasible allocations without materializing them (for sizing
/// reports in the large-scale bench).
[[nodiscard]] std::size_t count_feasible(std::size_t applications,
                                         const sysmodel::Platform& platform, CountRule rule);

}  // namespace cdsf::ra
