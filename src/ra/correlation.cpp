#include "ra/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pmf/pmf.hpp"
#include "stats/distribution.hpp"
#include "util/rng.hpp"

namespace cdsf::ra {

CorrelatedPhiEstimate correlated_phi1(const workload::Batch& batch,
                                      const Allocation& allocation,
                                      const sysmodel::AvailabilitySpec& availability,
                                      double rho, double deadline, std::size_t replications,
                                      std::uint64_t seed, std::size_t pulses) {
  if (allocation.size() != batch.size()) {
    throw std::invalid_argument("correlated_phi1: allocation size != batch size");
  }
  if (replications == 0) {
    throw std::invalid_argument("correlated_phi1: replications must be >= 1");
  }
  if (pulses == 0) throw std::invalid_argument("correlated_phi1: pulses must be >= 1");

  // Pre-discretize the parallel execution-time PMFs once.
  std::vector<pmf::Pmf> times;
  times.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const GroupAssignment group = allocation.at(i);
    times.push_back(batch.at(i).parallel_pmf(group.processor_type, group.processors, pulses));
  }

  if (!(rho >= 0.0 && rho <= 1.0)) {
    throw std::invalid_argument("correlated_phi1: rho must be in [0, 1]");
  }
  // One availability draw per APPLICATION (each group's processors are
  // disjoint), coupled through a system-wide common load factor. rho = 0
  // makes the draws independent — the paper's product-form assumption.
  const double load_common = std::sqrt(rho);
  const double load_own = std::sqrt(1.0 - rho);
  util::RngStream rng(seed);
  std::size_t hits = 0;
  for (std::size_t r = 0; r < replications; ++r) {
    const double common = rng.normal();
    bool all_meet = true;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double z = load_common * common + load_own * rng.normal();
      const double u = std::min(stats::standard_normal_cdf(z), 1.0 - 1e-15);
      const double a =
          availability.of_type(allocation.at(i).processor_type).sample_with(u);
      const double t = times[i].sample_with(rng.uniform01());
      if (t / a > deadline) {
        all_meet = false;
        break;
      }
    }
    if (all_meet) ++hits;
  }

  CorrelatedPhiEstimate estimate;
  estimate.replications = replications;
  estimate.probability = static_cast<double>(hits) / static_cast<double>(replications);
  estimate.standard_error = std::sqrt(
      std::max(estimate.probability * (1.0 - estimate.probability), 1e-12) /
      static_cast<double>(replications));
  return estimate;
}

}  // namespace cdsf::ra
