// Robustness under correlated cross-type availability (the paper's named
// future work). The product form of phi_1 relies on independence across
// applications; correlated availability breaks it, so Pr(Psi <= Delta) is
// estimated by Monte Carlo over Gaussian-copula joint draws
// (sysmodel::CorrelatedAvailabilitySampler).
#pragma once

#include <cstdint>

#include "ra/allocation.hpp"
#include "sysmodel/correlation.hpp"
#include "workload/application.hpp"

namespace cdsf::ra {

/// Monte-Carlo estimate of phi_1 under a one-factor copula with loading rho.
struct CorrelatedPhiEstimate {
  double probability = 0.0;
  double standard_error = 0.0;
  std::size_t replications = 0;
};

/// Each replication draws one joint availability vector, one execution time
/// per application from its discretized parallel-time PMF, and checks
/// max_i(T_i / a_{type(i)}) <= deadline. With rho = 0 this converges to the
/// analytic product-form phi_1 of ra::RobustnessEvaluator.
/// Throws std::invalid_argument on size mismatches, replications == 0, or
/// pulses == 0.
[[nodiscard]] CorrelatedPhiEstimate correlated_phi1(const workload::Batch& batch,
                                                    const Allocation& allocation,
                                                    const sysmodel::AvailabilitySpec& availability,
                                                    double rho, double deadline,
                                                    std::size_t replications, std::uint64_t seed,
                                                    std::size_t pulses = 64);

}  // namespace cdsf::ra
