#include "ra/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "util/rng.hpp"

namespace cdsf::ra {

namespace {

std::size_t total_capacity(const std::vector<std::size_t>& remaining) {
  std::size_t total = 0;
  for (std::size_t c : remaining) total += c;
  return total;
}

std::vector<std::size_t> full_capacity(const sysmodel::Platform& platform) {
  std::vector<std::size_t> remaining(platform.type_count());
  for (std::size_t j = 0; j < platform.type_count(); ++j) {
    remaining[j] = platform.processors_of_type(j);
  }
  return remaining;
}

/// Group options available to one application given remaining capacity,
/// reserving one processor for each of `reserve` still-unassigned
/// applications.
std::vector<GroupAssignment> feasible_options(const std::vector<std::size_t>& remaining,
                                              CountRule rule, std::size_t reserve) {
  std::vector<GroupAssignment> options;
  const std::size_t total = total_capacity(remaining);
  for (std::size_t type = 0; type < remaining.size(); ++type) {
    for (std::size_t count : candidate_counts(remaining[type], rule)) {
      if (total - count < reserve) continue;
      options.push_back(GroupAssignment{type, count});
    }
  }
  return options;
}

void require_feasible_instance(const RobustnessEvaluator& evaluator,
                               const sysmodel::Platform& platform) {
  if (platform.total_processors() < evaluator.batch().size()) {
    throw std::runtime_error("RA heuristic: fewer processors than applications");
  }
  if (platform.type_count() != evaluator.batch().type_count()) {
    throw std::invalid_argument("RA heuristic: platform/batch type count mismatch");
  }
}

/// Greedy commitment loop shared by MinMin / MaxMin / Sufferage. `pick`
/// receives, for every unassigned application, its option list, and must
/// return the (application index within `unassigned`, option) to commit.
template <typename Picker>
Allocation commit_loop(const RobustnessEvaluator& evaluator, const sysmodel::Platform& platform,
                       CountRule rule, Picker pick) {
  require_feasible_instance(evaluator, platform);
  const std::size_t n = evaluator.batch().size();
  std::vector<std::size_t> remaining = full_capacity(platform);
  std::vector<GroupAssignment> groups(n);
  std::vector<std::size_t> unassigned(n);
  for (std::size_t i = 0; i < n; ++i) unassigned[i] = i;

  while (!unassigned.empty()) {
    const std::size_t reserve = unassigned.size() - 1;
    std::vector<std::vector<GroupAssignment>> options(unassigned.size());
    for (std::size_t k = 0; k < unassigned.size(); ++k) {
      options[k] = feasible_options(remaining, rule, reserve);
      if (options[k].empty()) {
        throw std::runtime_error("RA heuristic: no feasible group for an application");
      }
    }
    const auto [k, choice] = pick(unassigned, options);
    groups[unassigned[k]] = choice;
    remaining[choice.processor_type] -= choice.processors;
    unassigned.erase(unassigned.begin() + static_cast<std::ptrdiff_t>(k));
  }
  return Allocation(std::move(groups));
}

/// Best option by maximum deadline probability (ties: fewer processors).
GroupAssignment best_by_probability(const RobustnessEvaluator& evaluator, std::size_t app,
                                    const std::vector<GroupAssignment>& options,
                                    double* best_probability = nullptr,
                                    double* second_probability = nullptr) {
  GroupAssignment best{};
  double best_p = -1.0;
  double second_p = -1.0;
  for (const GroupAssignment& option : options) {
    const double p = evaluator.application_probability(app, option);
    const bool better = p > best_p + 1e-15 ||
                        (std::fabs(p - best_p) <= 1e-15 && option.processors < best.processors);
    if (better) {
      second_p = best_p;
      best_p = p;
      best = option;
    } else if (p > second_p) {
      second_p = p;
    }
  }
  if (best_probability != nullptr) *best_probability = best_p;
  if (second_probability != nullptr) *second_probability = std::max(second_p, 0.0);
  return best;
}

}  // namespace

// ------------------------------------------------------- NaiveLoadBalance --

Allocation NaiveLoadBalance::allocate(const RobustnessEvaluator& evaluator,
                                      const sysmodel::Platform& platform,
                                      CountRule rule) const {
  require_feasible_instance(evaluator, platform);
  const std::size_t n = evaluator.batch().size();
  const std::size_t fair_share = platform.total_processors() / n;
  if (fair_share == 0) throw std::runtime_error("NaiveLoadBalance: no fair share possible");

  // Equal-share counts to try, largest first (power-of-2 rounds down).
  std::vector<std::size_t> shares = candidate_counts(fair_share, rule);
  std::sort(shares.rbegin(), shares.rend());

  for (std::size_t share : shares) {
    // Enumerate all type assignments with every group of size `share`;
    // keep the one with the highest joint probability.
    Allocation best;
    double best_joint = -1.0;
    std::vector<std::size_t> remaining = full_capacity(platform);
    std::vector<GroupAssignment> current;
    current.reserve(n);

    std::function<void(std::size_t)> recurse = [&](std::size_t app) {
      if (app == n) {
        Allocation candidate{current};
        const double joint = evaluator.joint_probability(candidate);
        if (joint > best_joint) {
          best_joint = joint;
          best = std::move(candidate);
        }
        return;
      }
      for (std::size_t type = 0; type < remaining.size(); ++type) {
        if (remaining[type] < share) continue;
        remaining[type] -= share;
        current.push_back(GroupAssignment{type, share});
        recurse(app + 1);
        current.pop_back();
        remaining[type] += share;
      }
    };
    recurse(0);
    if (best_joint >= 0.0) return best;
  }
  throw std::runtime_error("NaiveLoadBalance: no equal-share allocation fits the platform");
}

// ------------------------------------------------------ ExhaustiveOptimal --

Allocation ExhaustiveOptimal::allocate(const RobustnessEvaluator& evaluator,
                                       const sysmodel::Platform& platform,
                                       CountRule rule) const {
  require_feasible_instance(evaluator, platform);
  const std::vector<Allocation> all =
      enumerate_feasible(evaluator.batch().size(), platform, rule);
  if (all.empty()) throw std::runtime_error("ExhaustiveOptimal: no feasible allocation");
  // Primary objective: maximize phi_1. Probability ties (common when several
  // allocations are already near-certain) break toward the smaller total
  // expected completion time, then toward fewer processors.
  auto total_expected = [&](const Allocation& allocation) {
    double sum = 0.0;
    for (std::size_t i = 0; i < allocation.size(); ++i) {
      sum += evaluator.expected_completion(i, allocation.at(i));
    }
    return sum;
  };
  const Allocation* best = nullptr;
  double best_joint = -1.0;
  double best_expected = std::numeric_limits<double>::infinity();
  for (const Allocation& allocation : all) {
    const double joint = evaluator.joint_probability(allocation);
    if (joint < best_joint - 1e-9) continue;
    const bool clearly_better = joint > best_joint + 1e-9;
    const double expected = total_expected(allocation);
    const bool tie_break =
        !clearly_better &&
        (expected < best_expected - 1e-9 ||
         (std::fabs(expected - best_expected) <= 1e-9 && best != nullptr &&
          allocation.total_processors() < best->total_processors()));
    if (clearly_better || tie_break) {
      best_joint = std::max(joint, best_joint);
      best_expected = expected;
      best = &allocation;
    }
  }
  return *best;
}

// -------------------------------------------------- BranchAndBoundOptimal --

Allocation BranchAndBoundOptimal::allocate(const RobustnessEvaluator& evaluator,
                                           const sysmodel::Platform& platform,
                                           CountRule rule) const {
  require_feasible_instance(evaluator, platform);
  const std::size_t n = evaluator.batch().size();
  nodes_visited_ = 0;

  // Admissible per-application bound: the best probability achievable on
  // the FULL (capacity-relaxed) platform. Also note each application's
  // best-probability expected time for the incumbent's tie-breaking.
  std::vector<double> best_possible(n, 0.0);
  const std::vector<std::size_t> full = full_capacity(platform);
  const std::vector<GroupAssignment> all_options = feasible_options(full, rule, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const GroupAssignment& option : all_options) {
      best_possible[i] = std::max(best_possible[i],
                                  evaluator.application_probability(i, option));
    }
  }
  // Suffix products of the bounds: suffix[i] = prod_{k >= i} best_possible[k].
  std::vector<double> suffix(n + 1, 1.0);
  for (std::size_t i = n; i-- > 0;) suffix[i] = suffix[i + 1] * best_possible[i];

  std::vector<std::size_t> remaining = full;
  std::vector<GroupAssignment> current(n);
  Allocation best;
  double best_joint = -1.0;
  double best_expected = std::numeric_limits<double>::infinity();
  double current_expected = 0.0;

  std::function<void(std::size_t, double)> descend = [&](std::size_t app, double product) {
    ++nodes_visited_;
    if (app == n) {
      const bool clearly_better = product > best_joint + 1e-9;
      const bool tie_break = product > best_joint - 1e-9 && current_expected < best_expected;
      if (clearly_better || tie_break) {
        best_joint = std::max(product, best_joint);
        best_expected = current_expected;
        best = Allocation(current);
      }
      return;
    }
    // Bound: even perfect choices for the remaining applications cannot
    // beat the incumbent (the epsilon keeps ties alive for tie-breaking).
    if (product * suffix[app] < best_joint - 1e-9) return;
    // Reserve one processor for each later application.
    const std::size_t reserve = n - app - 1;
    for (const GroupAssignment& option : feasible_options(remaining, rule, reserve)) {
      const double p = evaluator.application_probability(app, option);
      const double expected = evaluator.expected_completion(app, option);
      remaining[option.processor_type] -= option.processors;
      current[app] = option;
      current_expected += expected;
      descend(app + 1, product * p);
      current_expected -= expected;
      remaining[option.processor_type] += option.processors;
    }
  };
  descend(0, 1.0);
  if (best_joint < 0.0) {
    throw std::runtime_error("BranchAndBoundOptimal: no feasible allocation");
  }
  return best;
}

// ------------------------------------------------------- GreedyRobustness --

Allocation GreedyRobustness::allocate(const RobustnessEvaluator& evaluator,
                                      const sysmodel::Platform& platform,
                                      CountRule rule) const {
  // Initial solution: one processor per application on its best type.
  Allocation allocation = commit_loop(
      evaluator, platform, rule,
      [&](const std::vector<std::size_t>& unassigned,
          const std::vector<std::vector<GroupAssignment>>& options) {
        // Assign in batch order; restrict to single-processor groups so the
        // hill climb starts minimal.
        std::vector<GroupAssignment> singles;
        for (const GroupAssignment& option : options[0]) {
          if (option.processors == 1) singles.push_back(option);
        }
        const auto& pool = singles.empty() ? options[0] : singles;
        return std::make_pair(std::size_t{0},
                              best_by_probability(evaluator, unassigned[0], pool));
      });

  // Steepest-ascent local search over single-application reassignments.
  double current = evaluator.joint_probability(allocation);
  const std::size_t n = allocation.size();
  for (std::size_t round = 0; round < 64 * n + 64; ++round) {
    double best_gain = 1e-15;
    std::size_t best_app = n;
    GroupAssignment best_option{};
    for (std::size_t i = 0; i < n; ++i) {
      // Capacity with application i removed.
      std::vector<std::size_t> remaining = full_capacity(platform);
      bool overflow = false;
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i) continue;
        const GroupAssignment& g = allocation.at(k);
        if (remaining[g.processor_type] < g.processors) {
          overflow = true;
          break;
        }
        remaining[g.processor_type] -= g.processors;
      }
      if (overflow) continue;
      for (const GroupAssignment& option : feasible_options(remaining, rule, 0)) {
        if (option == allocation.at(i)) continue;
        std::vector<GroupAssignment> groups = allocation.groups();
        groups[i] = option;
        const double joint = evaluator.joint_probability(Allocation(std::move(groups)));
        if (joint - current > best_gain) {
          best_gain = joint - current;
          best_app = i;
          best_option = option;
        }
      }
    }
    if (best_app == n) break;  // local optimum
    std::vector<GroupAssignment> groups = allocation.groups();
    groups[best_app] = best_option;
    allocation = Allocation(std::move(groups));
    current += best_gain;
  }

  // Phase 2: phi_1 has saturated; among probability-preserving moves, hill
  // climb DOWN on the total expected completion time. Pr(Psi <= Delta)
  // alone is myopic — two allocations with equal probability can differ
  // widely in makespan, which matters the moment the next batch queues
  // behind this one (and mirrors ExhaustiveOptimal's tie-breaking).
  auto expected_sum = [&](const Allocation& allocation_in) {
    double sum = 0.0;
    for (std::size_t i = 0; i < allocation_in.size(); ++i) {
      sum += evaluator.expected_completion(i, allocation_in.at(i));
    }
    return sum;
  };
  double current_expected = expected_sum(allocation);
  for (std::size_t round = 0; round < 64 * n + 64; ++round) {
    double best_drop = 1e-9;
    std::size_t best_app = n;
    GroupAssignment best_option{};
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::size_t> remaining = full_capacity(platform);
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i) continue;
        remaining[allocation.at(k).processor_type] -= allocation.at(k).processors;
      }
      for (const GroupAssignment& option : feasible_options(remaining, rule, 0)) {
        if (option == allocation.at(i)) continue;
        std::vector<GroupAssignment> groups = allocation.groups();
        groups[i] = option;
        const Allocation candidate(std::move(groups));
        if (evaluator.joint_probability(candidate) < current - 1e-12) continue;
        const double drop = current_expected - expected_sum(candidate);
        if (drop > best_drop) {
          best_drop = drop;
          best_app = i;
          best_option = option;
        }
      }
    }
    if (best_app == n) break;
    std::vector<GroupAssignment> groups = allocation.groups();
    groups[best_app] = best_option;
    allocation = Allocation(std::move(groups));
    current_expected -= best_drop;
    current = evaluator.joint_probability(allocation);
  }
  return allocation;
}

// --------------------------------------------------------- MinMinExpected --

Allocation MinMinExpected::allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform, CountRule rule) const {
  return commit_loop(
      evaluator, platform, rule,
      [&](const std::vector<std::size_t>& unassigned,
          const std::vector<std::vector<GroupAssignment>>& options) {
        std::size_t best_k = 0;
        GroupAssignment best_option{};
        double best_time = std::numeric_limits<double>::infinity();
        for (std::size_t k = 0; k < unassigned.size(); ++k) {
          for (const GroupAssignment& option : options[k]) {
            const double t = evaluator.expected_completion(unassigned[k], option);
            if (t < best_time) {
              best_time = t;
              best_k = k;
              best_option = option;
            }
          }
        }
        return std::make_pair(best_k, best_option);
      });
}

// --------------------------------------------------------- MaxMinExpected --

Allocation MaxMinExpected::allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform, CountRule rule) const {
  return commit_loop(
      evaluator, platform, rule,
      [&](const std::vector<std::size_t>& unassigned,
          const std::vector<std::vector<GroupAssignment>>& options) {
        // For each application, its best (minimum) expected completion;
        // commit the application whose best is the worst.
        std::size_t best_k = 0;
        GroupAssignment best_option{};
        double worst_best = -std::numeric_limits<double>::infinity();
        for (std::size_t k = 0; k < unassigned.size(); ++k) {
          double app_best = std::numeric_limits<double>::infinity();
          GroupAssignment app_option{};
          for (const GroupAssignment& option : options[k]) {
            const double t = evaluator.expected_completion(unassigned[k], option);
            if (t < app_best) {
              app_best = t;
              app_option = option;
            }
          }
          if (app_best > worst_best) {
            worst_best = app_best;
            best_k = k;
            best_option = app_option;
          }
        }
        return std::make_pair(best_k, best_option);
      });
}

// -------------------------------------------------------- SufferageRobust --

Allocation SufferageRobust::allocate(const RobustnessEvaluator& evaluator,
                                     const sysmodel::Platform& platform, CountRule rule) const {
  return commit_loop(
      evaluator, platform, rule,
      [&](const std::vector<std::size_t>& unassigned,
          const std::vector<std::vector<GroupAssignment>>& options) {
        std::size_t best_k = 0;
        GroupAssignment best_option{};
        double best_sufferage = -1.0;
        for (std::size_t k = 0; k < unassigned.size(); ++k) {
          double best_p = 0.0;
          double second_p = 0.0;
          const GroupAssignment option =
              best_by_probability(evaluator, unassigned[k], options[k], &best_p, &second_p);
          const double sufferage = best_p - second_p;
          if (sufferage > best_sufferage) {
            best_sufferage = sufferage;
            best_k = k;
            best_option = option;
          }
        }
        return std::make_pair(best_k, best_option);
      });
}

// ------------------------------------------------------ SimulatedAnnealing --

Allocation SimulatedAnnealing::allocate(const RobustnessEvaluator& evaluator,
                                        const sysmodel::Platform& platform,
                                        CountRule rule) const {
  // Start from the minimal greedy solution (same construction as
  // GreedyRobustness's initial state, without the hill climb).
  Allocation current_allocation = commit_loop(
      evaluator, platform, rule,
      [&](const std::vector<std::size_t>& unassigned,
          const std::vector<std::vector<GroupAssignment>>& options) {
        return std::make_pair(std::size_t{0},
                              best_by_probability(evaluator, unassigned[0], options[0]));
      });

  double current = evaluator.joint_probability(current_allocation);
  Allocation best_allocation = current_allocation;
  double best = current;

  util::RngStream rng(options_.seed);
  double temperature = options_.initial_temperature;
  const std::size_t n = current_allocation.size();

  for (std::size_t step = 0; step < options_.iterations; ++step) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    // Capacity with application i removed.
    std::vector<std::size_t> remaining = full_capacity(platform);
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      remaining[current_allocation.at(k).processor_type] -= current_allocation.at(k).processors;
    }
    const std::vector<GroupAssignment> options = feasible_options(remaining, rule, 0);
    if (options.empty()) continue;
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1));

    std::vector<GroupAssignment> groups = current_allocation.groups();
    groups[i] = options[pick];
    Allocation candidate(std::move(groups));
    const double joint = evaluator.joint_probability(candidate);
    const double delta = joint - current;
    if (delta >= 0.0 || rng.uniform01() < std::exp(delta / temperature)) {
      current_allocation = std::move(candidate);
      current = joint;
      if (current > best) {
        best = current;
        best_allocation = current_allocation;
      }
    }
    temperature = std::max(temperature * options_.cooling, 1e-6);
  }
  return best_allocation;
}

// ------------------------------------------------------------ TabuSearch --

Allocation TabuSearch::allocate(const RobustnessEvaluator& evaluator,
                                const sysmodel::Platform& platform, CountRule rule) const {
  // Start from the minimal greedy construction (one processor per app on
  // its best type) and walk via best single-application reassignments.
  Allocation current = commit_loop(
      evaluator, platform, rule,
      [&](const std::vector<std::size_t>& unassigned,
          const std::vector<std::vector<GroupAssignment>>& options) {
        return std::make_pair(std::size_t{0},
                              best_by_probability(evaluator, unassigned[0], options[0]));
      });
  double current_joint = evaluator.joint_probability(current);
  Allocation best = current;
  double best_joint = current_joint;

  const std::size_t n = current.size();
  // tabu_until[key] = move index until which (app, type, count) is tabu.
  std::unordered_map<std::uint64_t, std::size_t> tabu_until;
  auto key_of = [](std::size_t app, const GroupAssignment& g) {
    return (static_cast<std::uint64_t>(app) << 32) |
           (static_cast<std::uint64_t>(g.processor_type) << 16) |
           static_cast<std::uint64_t>(g.processors);
  };

  std::size_t stale = 0;
  for (std::size_t move = 0; move < options_.max_moves && stale < options_.patience; ++move) {
    double best_candidate_joint = -1.0;
    std::size_t best_app = n;
    GroupAssignment best_option{};

    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::size_t> remaining = full_capacity(platform);
      for (std::size_t k = 0; k < n; ++k) {
        if (k == i) continue;
        remaining[current.at(k).processor_type] -= current.at(k).processors;
      }
      for (const GroupAssignment& option : feasible_options(remaining, rule, 0)) {
        if (option == current.at(i)) continue;
        std::vector<GroupAssignment> groups = current.groups();
        groups[i] = option;
        const double joint = evaluator.joint_probability(Allocation(std::move(groups)));
        const auto it = tabu_until.find(key_of(i, option));
        const bool tabu = it != tabu_until.end() && it->second > move;
        // Aspiration: accept tabu moves only if they beat the global best.
        if (tabu && joint <= best_joint + 1e-15) continue;
        if (joint > best_candidate_joint) {
          best_candidate_joint = joint;
          best_app = i;
          best_option = option;
        }
      }
    }
    if (best_app == n) break;  // every move tabu and non-aspiring

    // Forbid undoing this application's PREVIOUS assignment for `tenure`.
    tabu_until[key_of(best_app, current.at(best_app))] = move + options_.tenure;
    std::vector<GroupAssignment> groups = current.groups();
    groups[best_app] = best_option;
    current = Allocation(std::move(groups));
    current_joint = best_candidate_joint;

    if (current_joint > best_joint + 1e-15) {
      best_joint = current_joint;
      best = current;
      stale = 0;
    } else {
      ++stale;
    }
  }
  return best;
}

// -------------------------------------------------------- BestOfPortfolio --

Allocation BestOfPortfolio::allocate(const RobustnessEvaluator& evaluator,
                                     const sysmodel::Platform& platform,
                                     CountRule rule) const {
  auto expected_sum = [&](const Allocation& allocation) {
    double sum = 0.0;
    for (std::size_t i = 0; i < allocation.size(); ++i) {
      sum += evaluator.expected_completion(i, allocation.at(i));
    }
    return sum;
  };
  Allocation best;
  double best_joint = -1.0;
  double best_expected = std::numeric_limits<double>::infinity();
  for (const auto& heuristic : all_heuristics(false)) {
    const Allocation candidate = heuristic->allocate(evaluator, platform, rule);
    const double joint = evaluator.joint_probability(candidate);
    const double expected = expected_sum(candidate);
    if (joint > best_joint + 1e-12 ||
        (joint > best_joint - 1e-12 && expected < best_expected)) {
      best_joint = joint;
      best_expected = expected;
      best = candidate;
    }
  }
  return best;
}

std::vector<std::unique_ptr<Heuristic>> all_heuristics(bool include_exhaustive) {
  std::vector<std::unique_ptr<Heuristic>> heuristics;
  heuristics.push_back(std::make_unique<NaiveLoadBalance>());
  if (include_exhaustive) heuristics.push_back(std::make_unique<ExhaustiveOptimal>());
  heuristics.push_back(std::make_unique<GreedyRobustness>());
  heuristics.push_back(std::make_unique<MinMinExpected>());
  heuristics.push_back(std::make_unique<MaxMinExpected>());
  heuristics.push_back(std::make_unique<SufferageRobust>());
  heuristics.push_back(std::make_unique<SimulatedAnnealing>());
  heuristics.push_back(std::make_unique<TabuSearch>());
  return heuristics;
}

}  // namespace cdsf::ra
