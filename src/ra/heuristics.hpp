// Resource-allocation heuristics for Stage I.
//
//   NaiveLoadBalance  — the paper's "naive IM": every application receives
//                       an equal share of processors; among the equal-share
//                       allocations the one with the highest phi_1 is kept.
//   ExhaustiveOptimal — the paper's "robust IM": enumerate every feasible
//                       allocation and keep the argmax of phi_1. Feasible
//                       only at small scale.
// Scalable heuristics (the paper's stated future work; baselines built from
// the literature it cites):
//   GreedyRobustness  — steepest-ascent local search on phi_1: start from
//                       minimal groups on each application's best type, then
//                       repeatedly apply the single reassignment (type or
//                       count change of one application) that most improves
//                       the joint probability.
//   MinMinExpected    — min-min (Ibarra & Kim 1977 family): repeatedly
//                       commit the (application, group) pair with the
//                       minimum expected completion time.
//   MaxMinExpected    — max-min: commit the application whose BEST option
//                       is worst first (bottleneck first).
//   SufferageRobust   — sufferage on the probability metric: commit the
//                       application that loses most if denied its best
//                       group.
//   SimulatedAnnealing— Metropolis search over feasible allocations on
//                       phi_1; seeded and deterministic.
//
// All heuristics guarantee a returned allocation is feasible and complete,
// or throw std::runtime_error when the instance admits no feasible
// allocation (fewer processors than applications).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "ra/allocation.hpp"
#include "ra/robustness.hpp"

namespace cdsf::ra {

/// Abstract Stage I policy.
class Heuristic {
 public:
  virtual ~Heuristic() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces a feasible allocation for the evaluator's batch on
  /// `platform` under `rule`.
  [[nodiscard]] virtual Allocation allocate(const RobustnessEvaluator& evaluator,
                                            const sysmodel::Platform& platform,
                                            CountRule rule) const = 0;
};

class NaiveLoadBalance final : public Heuristic {
 public:
  [[nodiscard]] std::string name() const override { return "NaiveLoadBalance"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;
};

class ExhaustiveOptimal final : public Heuristic {
 public:
  [[nodiscard]] std::string name() const override { return "ExhaustiveOptimal"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;
};

/// Exact optimum via branch and bound: depth-first over applications with
/// an admissible capacity-relaxed bound — a branch is cut when
/// (product so far) x (each remaining application's best probability over
/// the FULL platform) cannot beat the incumbent. Returns the same phi_1 as
/// ExhaustiveOptimal (same probability-then-expected-time tie-breaking)
/// while visiting a fraction of the tree; extends exact Stage I a few
/// applications beyond where plain enumeration stops being viable.
class BranchAndBoundOptimal final : public Heuristic {
 public:
  [[nodiscard]] std::string name() const override { return "BranchAndBoundOptimal"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;

  /// Nodes visited by the last allocate() call on this instance (for the
  /// pruning-effectiveness bench; not thread-safe).
  [[nodiscard]] std::size_t last_nodes_visited() const noexcept { return nodes_visited_; }

 private:
  mutable std::size_t nodes_visited_ = 0;
};

class GreedyRobustness final : public Heuristic {
 public:
  [[nodiscard]] std::string name() const override { return "GreedyRobustness"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;
};

class MinMinExpected final : public Heuristic {
 public:
  [[nodiscard]] std::string name() const override { return "MinMinExpected"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;
};

class MaxMinExpected final : public Heuristic {
 public:
  [[nodiscard]] std::string name() const override { return "MaxMinExpected"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;
};

class SufferageRobust final : public Heuristic {
 public:
  [[nodiscard]] std::string name() const override { return "SufferageRobust"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;
};

/// Knobs for SimulatedAnnealing.
struct AnnealingOptions {
  std::size_t iterations = 4000;
  double initial_temperature = 0.2;
  double cooling = 0.999;
  std::uint64_t seed = 0x5EED;
};

class SimulatedAnnealing final : public Heuristic {
 public:
  using Options = AnnealingOptions;
  explicit SimulatedAnnealing(Options options = Options()) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "SimulatedAnnealing"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;

 private:
  Options options_;
};

/// Knobs for TabuSearch.
struct TabuOptions {
  /// Stop after this many consecutive non-improving moves.
  std::size_t patience = 200;
  /// Hard cap on total moves.
  std::size_t max_moves = 5000;
  /// Moves an (application, group) pair stays tabu after being applied.
  std::size_t tenure = 12;
};

/// Tabu search on phi_1: best-improving single-application reassignment per
/// move, with recently applied (application, group) pairs forbidden for
/// `tenure` moves (aspiration: a tabu move beating the global best is
/// allowed). Escapes the local optima that stop GreedyRobustness.
class TabuSearch final : public Heuristic {
 public:
  explicit TabuSearch(TabuOptions options = TabuOptions()) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "TabuSearch"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;

 private:
  TabuOptions options_;
};

/// Portfolio: runs every scalable heuristic and returns the allocation
/// with the highest phi_1 (ties: smaller total expected completion time).
/// The practitioner's default — each member costs microseconds-to-
/// milliseconds, so running all of them is cheap insurance against any
/// single heuristic's pathological instances.
class BestOfPortfolio final : public Heuristic {
 public:
  [[nodiscard]] std::string name() const override { return "BestOfPortfolio"; }
  [[nodiscard]] Allocation allocate(const RobustnessEvaluator& evaluator,
                                    const sysmodel::Platform& platform,
                                    CountRule rule) const override;
};

/// All heuristics (for comparison benches); exhaustive included only when
/// `include_exhaustive`. BestOfPortfolio is excluded (it wraps the others).
[[nodiscard]] std::vector<std::unique_ptr<Heuristic>> all_heuristics(bool include_exhaustive);

}  // namespace cdsf::ra
