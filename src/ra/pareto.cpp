#include "ra/pareto.hpp"

#include <algorithm>
#include <stdexcept>

namespace cdsf::ra {

std::vector<ParetoPoint> pareto_frontier(const RobustnessEvaluator& evaluator,
                                         const sysmodel::Platform& platform, CountRule rule) {
  const std::vector<Allocation> all =
      enumerate_feasible(evaluator.batch().size(), platform, rule);
  if (all.empty()) throw std::runtime_error("pareto_frontier: no feasible allocation");

  std::vector<ParetoPoint> points;
  points.reserve(all.size());
  for (const Allocation& allocation : all) {
    const pmf::Pmf psi = evaluator.system_makespan_pmf(allocation);
    points.push_back({allocation, psi.cdf(evaluator.deadline()), psi.expectation()});
  }

  // Sort by ascending makespan; a point survives if its phi_1 strictly
  // exceeds the best phi_1 seen so far (ties keep the cheaper point only).
  std::sort(points.begin(), points.end(), [](const ParetoPoint& a, const ParetoPoint& b) {
    if (a.expected_makespan != b.expected_makespan) {
      return a.expected_makespan < b.expected_makespan;
    }
    return a.phi1 > b.phi1;
  });
  std::vector<ParetoPoint> frontier;
  double best_phi1 = -1.0;
  for (ParetoPoint& point : points) {
    if (point.phi1 > best_phi1 + 1e-12) {
      best_phi1 = point.phi1;
      frontier.push_back(std::move(point));
    }
  }
  return frontier;
}

ParetoPoint best_within_makespan_budget(const std::vector<ParetoPoint>& frontier,
                                        double makespan_budget) {
  const ParetoPoint* best = nullptr;
  for (const ParetoPoint& point : frontier) {
    if (point.expected_makespan <= makespan_budget) best = &point;  // frontier is sorted
  }
  if (best == nullptr) {
    throw std::runtime_error("best_within_makespan_budget: no frontier point fits the budget");
  }
  return *best;
}

}  // namespace cdsf::ra
