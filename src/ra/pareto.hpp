// The robustness/performance Pareto frontier over feasible allocations.
//
// phi_1 alone is a myopic objective: two allocations with equal deadline
// probability can differ widely in expected makespan, and the makespan is
// what the NEXT batch queues behind (see bench_multi_batch). This module
// materializes the trade-off: all feasible allocations scored in the two
// objectives (maximize phi_1, minimize E[Psi]) reduced to their
// non-dominated frontier.
#pragma once

#include <vector>

#include "ra/allocation.hpp"
#include "ra/robustness.hpp"

namespace cdsf::ra {

/// One frontier point.
struct ParetoPoint {
  Allocation allocation;
  double phi1 = 0.0;
  double expected_makespan = 0.0;  // E[Psi] from the system-makespan PMF
};

/// Enumerates every feasible allocation, scores (phi_1, E[Psi]), and
/// returns the non-dominated set sorted by ascending expected makespan
/// (equivalently ascending phi_1 along the frontier). Exhaustive — use at
/// enumerable scales only. Throws std::runtime_error when the instance has
/// no feasible allocation.
[[nodiscard]] std::vector<ParetoPoint> pareto_frontier(const RobustnessEvaluator& evaluator,
                                                       const sysmodel::Platform& platform,
                                                       CountRule rule);

/// The frontier point with the highest phi_1 whose expected makespan does
/// not exceed `makespan_budget` — the constrained selection a stream-aware
/// resource manager wants. Throws std::runtime_error if the frontier is
/// empty or no point fits the budget.
[[nodiscard]] ParetoPoint best_within_makespan_budget(const std::vector<ParetoPoint>& frontier,
                                                      double makespan_budget);

}  // namespace cdsf::ra
