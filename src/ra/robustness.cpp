#include "ra/robustness.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "pmf/ops.hpp"
#include "pmf/parallel_time.hpp"
#include "util/cancel.hpp"

namespace cdsf::ra {

RobustnessEvaluator::RobustnessEvaluator(const workload::Batch& batch,
                                         const sysmodel::AvailabilitySpec& availability,
                                         double deadline, RobustnessConfig config)
    : batch_(&batch), availability_(&availability), deadline_(deadline), config_(config) {
  if (batch.empty()) throw std::invalid_argument("RobustnessEvaluator: empty batch");
  if (batch.type_count() != availability.type_count()) {
    throw std::invalid_argument("RobustnessEvaluator: batch/availability type count mismatch");
  }
  if (!(deadline > 0.0)) throw std::invalid_argument("RobustnessEvaluator: deadline must be > 0");
  if (config_.discretization_pulses == 0 || config_.max_pulses == 0) {
    throw std::invalid_argument("RobustnessEvaluator: pulse budgets must be > 0");
  }
}

const pmf::Pmf& RobustnessEvaluator::completion_pmf(std::size_t app, GroupAssignment group) const {
  // The RA-enumeration checkpoint boundary: every candidate an exhaustive
  // or heuristic Stage I search scores passes through here, so a cancelled
  // token unwinds the search within one candidate evaluation.
  util::throw_if_cancelled(config_.cancel);
  if (app >= batch_->size()) throw std::out_of_range("completion_pmf: bad application index");
  if (group.processor_type >= availability_->type_count()) {
    throw std::invalid_argument("completion_pmf: unknown processor type");
  }
  if (group.processors == 0) {
    throw std::invalid_argument("completion_pmf: processors must be >= 1");
  }

  const std::uint64_t key = (static_cast<std::uint64_t>(app) << 40) |
                            (static_cast<std::uint64_t>(group.processor_type) << 20) |
                            static_cast<std::uint64_t>(group.processors);
  if (auto it = cache_.find(key); it != cache_.end()) return it->second;

  const workload::Application& application = batch_->at(app);
  const pmf::Pmf parallel = application.parallel_pmf(group.processor_type, group.processors,
                                                     config_.discretization_pulses);
  pmf::Pmf completion = pmf::apply_availability(
      parallel, availability_->of_type(group.processor_type), config_.max_pulses);
  return cache_.emplace(key, std::move(completion)).first->second;
}

double RobustnessEvaluator::application_probability(std::size_t app, GroupAssignment group) const {
  return completion_pmf(app, group).cdf(deadline_);
}

double RobustnessEvaluator::expected_completion(std::size_t app, GroupAssignment group) const {
  return completion_pmf(app, group).expectation();
}

pmf::Pmf RobustnessEvaluator::system_makespan_pmf(const Allocation& allocation) const {
  if (allocation.size() != batch_->size()) {
    throw std::invalid_argument("system_makespan_pmf: allocation size != batch size");
  }
  pmf::Pmf system = completion_pmf(0, allocation.at(0));
  for (std::size_t i = 1; i < allocation.size(); ++i) {
    system = pmf::independent_max(system, completion_pmf(i, allocation.at(i)));
  }
  return system;
}

std::vector<double> RobustnessEvaluator::fepia_slacks(const Allocation& allocation) const {
  if (allocation.size() != batch_->size()) {
    throw std::invalid_argument("fepia_slacks: allocation size != batch size");
  }
  std::vector<double> slacks;
  slacks.reserve(allocation.size());
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    const GroupAssignment group = allocation.at(i);
    const double dedicated =
        batch_->at(i).expected_parallel_time(group.processor_type, group.processors);
    slacks.push_back(availability_->expected(group.processor_type) - dedicated / deadline_);
  }
  return slacks;
}

double RobustnessEvaluator::fepia_robustness_radius(const Allocation& allocation) const {
  const std::vector<double> slacks = fepia_slacks(allocation);
  double radius = std::numeric_limits<double>::infinity();
  for (double slack : slacks) radius = std::min(radius, slack);
  return radius;
}

double RobustnessEvaluator::joint_probability(const Allocation& allocation) const {
  if (allocation.size() != batch_->size()) {
    throw std::invalid_argument("joint_probability: allocation size != batch size");
  }
  double joint = 1.0;
  for (std::size_t i = 0; i < allocation.size(); ++i) {
    joint *= application_probability(i, allocation.at(i));
    if (joint == 0.0) break;
  }
  return joint;
}

}  // namespace cdsf::ra
