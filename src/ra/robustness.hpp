// The stochastic robustness metric of Stage I (Shestak, Smith, Maciejewski
// & Siegel 2008, as used by the CDSF paper).
//
// For application i assigned n processors of type j:
//   1. discretize its single-processor execution-time law into a PMF,
//   2. apply Eq. (2) per pulse -> parallel execution-time PMF,
//   3. combine with the availability PMF of type j (each time pulse t and
//      availability pulse a yield pulse t / a) -> completion-time PMF,
//   4. Pr(app meets deadline) = CDF of that PMF at the deadline.
// Applications are independent, so the allocation's robustness phi_1 is the
// product of the per-application probabilities.
#pragma once

#include <atomic>
#include <cstddef>
#include <unordered_map>

#include "pmf/pmf.hpp"
#include "ra/allocation.hpp"
#include "sysmodel/availability.hpp"
#include "workload/application.hpp"

namespace cdsf::ra {

/// Discretization / compaction budgets for the PMF pipeline.
struct RobustnessConfig {
  /// Pulses used to discretize each single-processor time law.
  std::size_t discretization_pulses = 64;
  /// Pulse budget after the availability combine.
  std::size_t max_pulses = 2048;
  /// Cooperative cancellation hook (util::CancelToken::flag()); polled at
  /// every RA-enumeration boundary (each candidate completion-PMF
  /// evaluation), so an exhaustive Stage I search unwinds with
  /// util::Cancelled shortly after the owning watchdog fires. Null = never
  /// cancelled. The pointee must outlive the evaluator.
  const std::atomic<bool>* cancel = nullptr;
};

/// Evaluates completion PMFs and deadline probabilities for one batch under
/// one availability spec and one deadline. Memoizes per (application, type,
/// count) so exhaustive searches stay cheap.
///
/// NOT thread-safe: the memoization cache mutates on const queries. Give
/// each thread its own evaluator (construction is cheap; the cache warms in
/// microseconds) rather than sharing one across util::parallel_for_index.
class RobustnessEvaluator {
 public:
  /// The batch, spec and platform must outlive the evaluator.
  /// Throws std::invalid_argument if the batch is empty, type counts
  /// disagree, or deadline <= 0.
  RobustnessEvaluator(const workload::Batch& batch, const sysmodel::AvailabilitySpec& availability,
                      double deadline, RobustnessConfig config = {});

  /// Completion-time PMF of application `app` under `group` (steps 1-3).
  [[nodiscard]] const pmf::Pmf& completion_pmf(std::size_t app, GroupAssignment group) const;

  /// Pr(application completes <= deadline) under `group`.
  [[nodiscard]] double application_probability(std::size_t app, GroupAssignment group) const;

  /// Expected completion time of `app` under `group` (Table V values).
  [[nodiscard]] double expected_completion(std::size_t app, GroupAssignment group) const;

  /// phi_1 of a full allocation: product of application probabilities.
  /// Throws std::invalid_argument if allocation size != batch size.
  [[nodiscard]] double joint_probability(const Allocation& allocation) const;

  /// The full distribution of the system makespan Psi = max_i T_i under an
  /// allocation (independent applications => pmf::independent_max). Its CDF
  /// at the deadline equals joint_probability; its expectation and
  /// quantiles characterize the allocation beyond the single phi_1 number.
  /// Throws std::invalid_argument if allocation size != batch size.
  [[nodiscard]] pmf::Pmf system_makespan_pmf(const Allocation& allocation) const;

  /// The deterministic FePIA robustness radius of reference [3]
  /// (Ali, Maciejewski, Siegel & Kim, TPDS 2004) applied to this system:
  /// for each application, the largest drop in its group's availability
  /// (from the expected value) before its MEAN execution time violates the
  /// deadline,
  ///     r_i = E[a_type(i)] - E[T_par,i] / deadline,
  /// and the radius is min_i r_i (infinity-norm FePIA). Negative values
  /// mean the application misses the deadline already at the expected
  /// availability. Complements the stochastic phi_1: the radius asks "how
  /// far can availability fall", phi_1 asks "how likely is failure now".
  /// Throws std::invalid_argument if allocation size != batch size.
  [[nodiscard]] double fepia_robustness_radius(const Allocation& allocation) const;

  /// Per-application FePIA slacks r_i (same convention as above).
  [[nodiscard]] std::vector<double> fepia_slacks(const Allocation& allocation) const;

  [[nodiscard]] double deadline() const noexcept { return deadline_; }
  [[nodiscard]] const workload::Batch& batch() const noexcept { return *batch_; }
  [[nodiscard]] const sysmodel::AvailabilitySpec& availability() const noexcept {
    return *availability_;
  }

 private:
  const workload::Batch* batch_;
  const sysmodel::AvailabilitySpec* availability_;
  double deadline_;
  RobustnessConfig config_;
  mutable std::unordered_map<std::uint64_t, pmf::Pmf> cache_;
};

}  // namespace cdsf::ra
