#include "sim/batch_executor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace cdsf::sim {

BatchRunResult simulate_batch(const workload::Batch& batch, const ra::Allocation& allocation,
                              const sysmodel::AvailabilitySpec& availability,
                              const std::vector<dls::TechniqueId>& techniques,
                              const SimConfig& config, std::uint64_t seed) {
  if (allocation.size() != batch.size()) {
    throw std::invalid_argument("simulate_batch: allocation size != batch size");
  }
  if (techniques.size() != batch.size()) {
    throw std::invalid_argument("simulate_batch: techniques size != batch size");
  }
  const util::SeedSequence seeds(seed);
  BatchRunResult result;
  result.app_makespans.reserve(batch.size());
  for (std::size_t app = 0; app < batch.size(); ++app) {
    const ra::GroupAssignment group = allocation.at(app);
    const RunResult run =
        simulate_loop(batch.at(app), group.processor_type, group.processors, availability,
                      techniques[app], config, seeds.child(app));
    result.app_makespans.push_back(run.makespan);
    result.system_makespan = std::max(result.system_makespan, run.makespan);
  }
  return result;
}

BatchRunResult simulate_batch(const workload::Batch& batch, const ra::Allocation& allocation,
                              const sysmodel::AvailabilitySpec& availability,
                              dls::TechniqueId technique, const SimConfig& config,
                              std::uint64_t seed) {
  return simulate_batch(batch, allocation, availability,
                        std::vector<dls::TechniqueId>(batch.size(), technique), config, seed);
}

MonteCarloPhi estimate_phi1(const workload::Batch& batch, const ra::Allocation& allocation,
                            const sysmodel::AvailabilitySpec& availability,
                            dls::TechniqueId technique, const SimConfig& config,
                            std::uint64_t seed, std::size_t replications, double deadline) {
  if (replications == 0) throw std::invalid_argument("estimate_phi1: replications must be >= 1");
  const util::SeedSequence seeds(seed);
  std::size_t hits = 0;
  double makespan_sum = 0.0;
  for (std::size_t r = 0; r < replications; ++r) {
    const BatchRunResult run =
        simulate_batch(batch, allocation, availability, technique, config, seeds.child(r));
    if (run.system_makespan <= deadline) ++hits;
    makespan_sum += run.system_makespan;
  }
  MonteCarloPhi estimate;
  estimate.replications = replications;
  estimate.probability = static_cast<double>(hits) / static_cast<double>(replications);
  estimate.standard_error = std::sqrt(
      std::max(estimate.probability * (1.0 - estimate.probability), 1e-12) /
      static_cast<double>(replications));
  estimate.mean_system_makespan = makespan_sum / static_cast<double>(replications);
  return estimate;
}

SimConfig stage_one_mirror_config() {
  SimConfig config;
  config.availability_mode = AvailabilityMode::kSampleOnce;
  config.shared_group_availability = true;
  config.iteration_cov = 0.0;
  config.input_factor_cov = 0.1;  // the paper's sigma = mu/10
  config.scheduling_overhead = 0.0;
  return config;
}

}  // namespace cdsf::sim
