// Whole-batch simulation: execute every application of an allocation in
// the same (simulated) system and measure the system makespan
// Psi = max over applications of their completion times.
//
// Because the paper's model has no inter-application interference (groups
// are disjoint and applications independent), a batch run is the
// composition of independent per-application loop executions with
// independent seeds — but measuring them *jointly* enables the estimator
// the paper never had: a Monte-Carlo Pr(Psi <= Delta) that cross-validates
// Stage I's analytic PMF arithmetic against the discrete-event simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "dls/registry.hpp"
#include "ra/allocation.hpp"
#include "sim/loop_executor.hpp"
#include "sysmodel/availability.hpp"
#include "workload/application.hpp"

namespace cdsf::sim {

/// One simulated execution of a whole batch.
struct BatchRunResult {
  std::vector<double> app_makespans;  // completion time per application
  double system_makespan = 0.0;       // Psi = max of the above
};

/// Simulates every application of `batch` on its group from `allocation`
/// under `availability`, all with technique `technique`, independent seeds.
/// Throws std::invalid_argument on size mismatches (delegating group
/// validation to simulate_loop).
[[nodiscard]] BatchRunResult simulate_batch(const workload::Batch& batch,
                                            const ra::Allocation& allocation,
                                            const sysmodel::AvailabilitySpec& availability,
                                            dls::TechniqueId technique, const SimConfig& config,
                                            std::uint64_t seed);

/// Per-application technique choice variant (e.g. Stage II's winners).
[[nodiscard]] BatchRunResult simulate_batch(const workload::Batch& batch,
                                            const ra::Allocation& allocation,
                                            const sysmodel::AvailabilitySpec& availability,
                                            const std::vector<dls::TechniqueId>& techniques,
                                            const SimConfig& config, std::uint64_t seed);

/// Monte-Carlo estimate of phi_1 = Pr(Psi <= deadline).
struct MonteCarloPhi {
  double probability = 0.0;       // hit fraction
  double standard_error = 0.0;    // binomial SE of the estimate
  double mean_system_makespan = 0.0;
  std::size_t replications = 0;
};

/// Estimates Pr(Psi <= deadline) over `replications` independent batch
/// executions. To reproduce the Stage I arithmetic exactly, pass a config
/// with availability_mode = kSampleOnce, shared_group_availability = true,
/// iteration_cov = 0 and input_factor_cov = 0.1 (the paper's sigma = mu/10
/// input-data uncertainty): a STATIC execution then costs exactly
/// (s + p/n) * T / a per application, the model behind Table V.
/// Throws std::invalid_argument if replications == 0.
[[nodiscard]] MonteCarloPhi estimate_phi1(const workload::Batch& batch,
                                          const ra::Allocation& allocation,
                                          const sysmodel::AvailabilitySpec& availability,
                                          dls::TechniqueId technique, const SimConfig& config,
                                          std::uint64_t seed, std::size_t replications,
                                          double deadline);

/// The config that makes estimate_phi1 mirror Stage I's assumptions (see
/// above).
[[nodiscard]] SimConfig stage_one_mirror_config();

}  // namespace cdsf::sim
