#include "sim/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/flight.hpp"
#include "pmf/pmf.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cdsf::sim {

namespace {

/// Everything one schedule needs to replay: drawn once from the schedule's
/// own seed stream, executed on both executors.
struct Schedule {
  SimConfig sim;
  dls::TechniqueId technique = dls::TechniqueId::kFAC;
  std::uint64_t sim_seed = 0;
  double deadline = 0.0;  // replicated-summary deadline (also risk Delta)

  /// The MPI executor will run the hardened at-least-once protocol.
  [[nodiscard]] bool hardened() const {
    return sim.channel.faulty() || sim.checkpoint.enabled || master_restarts() > 0;
  }
  /// Configured kMasterCrashRestart failures (0 or 1 after validation).
  [[nodiscard]] std::size_t master_restarts() const {
    std::size_t n = 0;
    for (const SimConfig::Failure& f : sim.failures) {
      if (f.kind == SimConfig::FailureKind::kMasterCrashRestart) ++n;
    }
    return n;
  }
  /// A silently-wrong worker is configured (both executors honor it).
  [[nodiscard]] bool silent_corrupt() const {
    for (const SimConfig::Failure& f : sim.failures) {
      if (f.kind == SimConfig::FailureKind::kSilentCorrupt) return true;
    }
    return false;
  }
  /// The gray-failure machinery (quarantine / audits / silent corruption)
  /// runs on this schedule — QuarantineStats may be nonzero.
  [[nodiscard]] bool gray() const {
    return sim.quarantine.armed() || silent_corrupt();
  }
};

/// Per-schedule accumulator, merged in index order so the campaign report
/// is identical for any campaign thread count.
struct Partial {
  std::vector<ChaosViolation> violations;
  FaultStats faults;
  SpeculationStats speculation;
  ChannelStats channel;
  CheckpointStats checkpoint;
  QuarantineStats quarantine;
  std::size_t runs = 0;
  std::size_t failures = 0;
  bool speculated = false;
  bool channel_faulty = false;
  bool master_restarted = false;
  bool gray_quarantine = false;
  bool gray_corruption = false;
  double max_makespan = 0.0;
};

Schedule draw_schedule(const ChaosConfig& config, util::RngStream& rng,
                       std::uint64_t sim_seed) {
  Schedule schedule;
  schedule.sim_seed = sim_seed;

  static constexpr dls::TechniqueId kTechniques[] = {
      dls::TechniqueId::kStatic, dls::TechniqueId::kGSS, dls::TechniqueId::kTSS,
      dls::TechniqueId::kFAC,    dls::TechniqueId::kAWF_B, dls::TechniqueId::kAF,
  };
  schedule.technique =
      kTechniques[static_cast<std::size_t>(rng.uniform_int(0, std::size(kTechniques) - 1))];

  SimConfig& sim = schedule.sim;
  sim.iteration_cov = rng.uniform(0.05, 0.5);
  static constexpr AvailabilityMode kModes[] = {
      AvailabilityMode::kSampleOnce, AvailabilityMode::kMarkovEpoch,
      AvailabilityMode::kConstantMean};
  sim.availability_mode = kModes[static_cast<std::size_t>(rng.uniform_int(0, 2))];

  // Rough makespan scale: total dedicated time over the group at the
  // availability law's midpoint — failure times land inside the run.
  const double est_makespan =
      (static_cast<double>(config.serial_iterations) +
       static_cast<double>(config.parallel_iterations) /
           static_cast<double>(config.processors)) /
      0.6;
  sim.epoch_length = std::max(1.0, est_makespan / 8.0);
  schedule.deadline = est_makespan * rng.uniform(0.8, 1.5);

  // Failures: distinct workers drawn from [1, processors) (worker 0 runs
  // the unprotected serial phase), each with a random kind.
  const std::size_t draws = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(config.max_failures)));
  std::vector<std::size_t> candidates;
  for (std::size_t w = 1; w < config.processors; ++w) candidates.push_back(w);
  for (std::size_t k = 0; k + 1 < candidates.size(); ++k) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(k),
                        static_cast<std::int64_t>(candidates.size() - 1)));
    std::swap(candidates[k], candidates[j]);
  }
  for (std::size_t k = 0; k < std::min(draws, candidates.size()); ++k) {
    SimConfig::Failure failure;
    failure.worker = candidates[k];
    failure.time = rng.uniform(0.05, 0.9) * est_makespan;
    const double kind = rng.uniform01();
    if (kind < 0.4) {
      failure.kind = SimConfig::FailureKind::kCrash;
    } else if (kind < 0.7) {
      failure.kind = SimConfig::FailureKind::kCrashRecover;
      failure.recovery_time = failure.time + rng.uniform(0.05, 0.5) * est_makespan;
    } else {
      failure.kind = SimConfig::FailureKind::kDegrade;
      failure.residual_availability = rng.uniform(0.05, 0.35);
    }
    sim.failures.push_back(failure);
  }

  if (config.speculation && rng.uniform01() < 0.65) {
    sim.speculation.enabled = true;
    sim.speculation.quantile = rng.uniform(1.0, 3.0);
    if (rng.uniform01() < 0.35) {
      sim.deadline_risk.enabled = true;
      sim.deadline_risk.deadline = schedule.deadline;
      sim.deadline_risk.check_interval = std::max(1.0, est_makespan / 10.0);
    }
  }

  // Unreliable-channel axis (MPI executor; the idealized executor ignores
  // it). Probabilities stay moderate so the retransmission budget plus the
  // failure detector always terminate the run.
  if (config.channel_faults && rng.uniform01() < 0.5) {
    sim.channel.drop_to_worker = rng.uniform(0.0, 0.25);
    sim.channel.drop_to_master = rng.uniform(0.0, 0.25);
    sim.channel.duplicate_to_worker = rng.uniform(0.0, 0.25);
    sim.channel.duplicate_to_master = rng.uniform(0.0, 0.25);
    sim.channel.reorder_to_worker = rng.uniform(0.0, 0.3);
    sim.channel.reorder_to_master = rng.uniform(0.0, 0.3);
    sim.channel.reorder_delay = rng.uniform(0.5, 2.0);
    if (rng.uniform01() < 0.3) {
      sim.channel.burst_gap_mean = est_makespan * rng.uniform(0.3, 1.0);
      sim.channel.burst_duration = est_makespan * rng.uniform(0.02, 0.08);
    }
  }

  // Master crash-restart axis (implies checkpointing). Crash and recovery
  // both land inside the estimated run so the restart reconciliation is
  // actually exercised mid-loop.
  if (config.master_restart && rng.uniform01() < 0.35) {
    SimConfig::Failure failure;
    failure.kind = SimConfig::FailureKind::kMasterCrashRestart;
    failure.time = rng.uniform(0.15, 0.6) * est_makespan;
    failure.recovery_time = failure.time + rng.uniform(0.05, 0.25) * est_makespan;
    sim.failures.push_back(failure);
    sim.checkpoint.interval = est_makespan * rng.uniform(0.05, 0.2);
  } else if (config.master_restart && rng.uniform01() < 0.25) {
    // Checkpointing without a master fault: the WAL must stay consistent
    // even when the restart path never runs.
    sim.checkpoint.enabled = true;
    sim.checkpoint.interval = est_makespan * rng.uniform(0.05, 0.2);
  }

  // Gray-failure axes, drawn LAST so every pre-existing axis sees the same
  // draw sequence (disabling them replays historical campaigns unchanged).
  // Gray fault targets come from the still-unfailed tail of the shuffled
  // candidate list — at most one failure per worker.
  std::size_t next_free = std::min(draws, candidates.size());
  if (config.fail_slow && rng.uniform01() < 0.45) {
    sim.quarantine.enabled = true;
    sim.quarantine.ewma_alpha = rng.uniform(0.2, 0.6);
    sim.quarantine.slowdown_threshold = rng.uniform(2.5, 5.0);
    sim.quarantine.min_observations =
        static_cast<std::uint64_t>(rng.uniform_int(2, 4));
    sim.quarantine.probe_interval = est_makespan * rng.uniform(0.05, 0.2);
    sim.quarantine.probe_successes = static_cast<std::size_t>(rng.uniform_int(1, 3));
    if (rng.uniform01() < 0.5) sim.quarantine.audit_rate = rng.uniform(0.1, 0.4);
    // A dedicated late-onset fail-slow worker (~10x slowdown) for the
    // detector to catch, when a failure-free worker remains.
    if (next_free < candidates.size()) {
      SimConfig::Failure failure;
      failure.worker = candidates[next_free++];
      failure.kind = SimConfig::FailureKind::kDegrade;
      failure.time = rng.uniform(0.1, 0.5) * est_makespan;
      failure.residual_availability = rng.uniform(0.08, 0.15);
      sim.failures.push_back(failure);
    }
  }
  if (config.corruption) {
    // Channel bit-flips (MPI executor): caught by checksum framing,
    // recovered by retransmission. Arms the hardened protocol through
    // ChannelModel::faulty(), so it also honors the channel_faults toggle.
    if (rng.uniform01() < 0.4 && config.channel_faults) {
      sim.channel.corrupt_to_worker = rng.uniform(0.005, 0.08);
      sim.channel.corrupt_to_master = rng.uniform(0.005, 0.08);
    }
    // A silently-wrong worker, paired with audits — the only layer that
    // can catch well-formed wrong results.
    if (rng.uniform01() < 0.35 && next_free < candidates.size()) {
      SimConfig::Failure failure;
      failure.worker = candidates[next_free++];
      failure.kind = SimConfig::FailureKind::kSilentCorrupt;
      failure.time = rng.uniform(0.0, 0.5) * est_makespan;
      failure.corrupt_probability = rng.uniform(0.3, 1.0);
      sim.failures.push_back(failure);
      if (sim.quarantine.audit_rate <= 0.0) {
        sim.quarantine.audit_rate = rng.uniform(0.1, 0.4);
      }
    }
  }
  return schedule;
}

void add_violation(Partial& partial, std::size_t schedule, std::uint64_t seed,
                   std::string executor, std::string invariant, std::string detail) {
  partial.violations.push_back(ChaosViolation{schedule, seed, std::move(executor),
                                              std::move(invariant), std::move(detail)});
}

/// The per-run invariants: finite Psi, exactly-once coverage reconstructed
/// from the trace, FaultStats/SpeculationStats consistency, and (MPI runs)
/// ChannelStats/WAL identities. `hardened_expected` is false for the
/// idealized executor (it ignores the channel and the master fault) and for
/// clean-channel MPI runs — those must leave the hardened counters all
/// zero. `expected_restarts` is the configured kMasterCrashRestart count.
/// `gray_expected` is Schedule::gray() (quarantine / audit / silent-corrupt
/// machinery armed); `corruption_expected` is true only for MPI runs whose
/// channel has corruption knobs — the disarm checks force every gray
/// counter to zero otherwise.
void check_run(const RunResult& run, std::int64_t parallel, std::size_t schedule,
               std::uint64_t seed, const char* executor, bool hardened_expected,
               std::size_t expected_restarts, bool gray_expected, bool corruption_expected,
               Partial& partial) {
  const std::size_t violations_before = partial.violations.size();
  auto fail = [&](const char* invariant, std::string detail) {
    add_violation(partial, schedule, seed, executor, invariant, std::move(detail));
  };

  if (!std::isfinite(run.makespan) || run.makespan < run.serial_end || run.serial_end < 0.0) {
    fail("finite_makespan", "makespan " + std::to_string(run.makespan) + ", serial_end " +
                                std::to_string(run.serial_end));
  }

  std::int64_t accepted = 0;
  for (const WorkerStats& worker : run.workers) accepted += worker.iterations;
  if (accepted != parallel) {
    fail("all_iterations_accepted", "accepted " + std::to_string(accepted) + " of " +
                                        std::to_string(parallel));
  }

  // Exactly-once: winning entries (not lost, not cancelled) tile the
  // parallel iteration space with no overlap and no hole.
  std::vector<char> covered(static_cast<std::size_t>(parallel), 0);
  std::uint64_t lost_entries = 0;
  std::int64_t dispatched_from_pool = 0;
  std::uint64_t backup_entries = 0;
  std::uint64_t audit_entries = 0;
  std::uint64_t probe_entries = 0;
  for (const ChunkTraceEntry& entry : run.trace) {
    if (entry.first < 0 || entry.iterations <= 0 || entry.first + entry.iterations > parallel) {
      fail("trace_range", "entry [" + std::to_string(entry.first) + ", +" +
                              std::to_string(entry.iterations) + ") outside [0, " +
                              std::to_string(parallel) + ")");
      continue;
    }
    if (entry.audit) {
      // Audit replicas are side-channel verification: they never take from
      // the pool, never deliver coverage, and their losses are counted as
      // audits_abandoned, not chunks_lost.
      ++audit_entries;
      continue;
    }
    if (entry.probe) ++probe_entries;
    if (entry.lost) ++lost_entries;
    if (entry.speculative) {
      ++backup_entries;
    } else {
      dispatched_from_pool += entry.iterations;
    }
    if (entry.lost || entry.cancelled) continue;
    for (std::int64_t i = entry.first; i < entry.first + entry.iterations; ++i) {
      if (covered[static_cast<std::size_t>(i)]) {
        fail("exactly_once", "iteration " + std::to_string(i) + " delivered twice");
        break;
      }
      covered[static_cast<std::size_t>(i)] = 1;
    }
  }
  for (std::int64_t i = 0; i < parallel; ++i) {
    if (!covered[static_cast<std::size_t>(i)]) {
      fail("exactly_once", "iteration " + std::to_string(i) + " never delivered");
      break;
    }
  }

  const FaultStats& faults = run.faults;
  if (faults.chunks_lost != lost_entries) {
    fail("faults_consistent", "chunks_lost " + std::to_string(faults.chunks_lost) + " but " +
                                  std::to_string(lost_entries) + " lost trace entries");
  }
  // Every give_back is re-taken from the pool, so pool dispatches account
  // for the loop plus exactly the re-executed iterations.
  if (dispatched_from_pool != parallel + faults.iterations_reexecuted) {
    fail("faults_consistent",
         "pool dispatched " + std::to_string(dispatched_from_pool) + " != " +
             std::to_string(parallel) + " + reexecuted " +
             std::to_string(faults.iterations_reexecuted));
  }
  if (faults.workers_recovered > faults.workers_crashed) {
    fail("faults_consistent", "more recoveries than crashes");
  }

  const SpeculationStats& spec = run.speculation;
  if (spec.backups_launched !=
      spec.backups_won + spec.backups_cancelled + spec.backups_lost) {
    fail("speculation_identity",
         "launched " + std::to_string(spec.backups_launched) + " != won " +
             std::to_string(spec.backups_won) + " + cancelled " +
             std::to_string(spec.backups_cancelled) + " + lost " +
             std::to_string(spec.backups_lost));
  }
  if (spec.backups_launched != backup_entries) {
    fail("speculation_identity", "launched " + std::to_string(spec.backups_launched) +
                                     " but " + std::to_string(backup_entries) +
                                     " speculative trace entries");
  }
  if (spec.backups_launched > spec.stragglers_flagged) {
    fail("speculation_identity", "more backups than flagged stragglers");
  }

  const ChannelStats& chan = run.channel;
  const CheckpointStats& ckpt = run.checkpoint;
  if (chan.burst_drops > chan.drops) {
    fail("channel_identity", "burst_drops " + std::to_string(chan.burst_drops) +
                                 " > drops " + std::to_string(chan.drops));
  }
  if (chan.dedup_hits > chan.duplicates + chan.retransmits) {
    fail("channel_identity",
         "dedup_hits " + std::to_string(chan.dedup_hits) + " > duplicates " +
             std::to_string(chan.duplicates) + " + retransmits " +
             std::to_string(chan.retransmits));
  }
  bool any_retransmitted_entry = false;
  for (const ChunkTraceEntry& entry : run.trace) {
    any_retransmitted_entry = any_retransmitted_entry || entry.retransmitted;
  }
  if (any_retransmitted_entry && chan.retransmits == 0) {
    fail("channel_identity", "retransmitted trace entry but zero retransmits");
  }
  if (!hardened_expected && (chan.active() || ckpt.active() || !run.wal.empty())) {
    fail("channel_disarmed", "hardened counters nonzero on a clean-channel run");
  }
  if (ckpt.master_restarts != expected_restarts) {
    fail("master_restart", "master_restarts " + std::to_string(ckpt.master_restarts) +
                               " != configured " + std::to_string(expected_restarts));
  }
  if (ckpt.wal_records != run.wal.size()) {
    fail("wal_consistent", "wal_records " + std::to_string(ckpt.wal_records) + " != " +
                               std::to_string(run.wal.size()) + " WAL entries");
  }
  std::uint64_t restart_records = 0;
  for (const WalRecord& rec : run.wal) {
    if (rec.kind == WalRecord::Kind::kRestart) ++restart_records;
  }
  if (restart_records != ckpt.master_restarts) {
    fail("wal_consistent", std::to_string(restart_records) +
                               " restart WAL records but master_restarts " +
                               std::to_string(ckpt.master_restarts));
  }

  // Gray-failure invariants: corruption is always caught (checksum framing
  // discards EVERY corrupted frame — one can never reach record()), the
  // quarantine/audit counters obey their bookkeeping identities and match
  // the lifecycle events, and nothing but canary probes is ever dispatched
  // to a worker inside its quarantine window.
  const QuarantineStats& quar = run.quarantine;
  if (chan.corrupted != chan.corrupt_discarded) {
    fail("corruption_identity", "corrupted " + std::to_string(chan.corrupted) +
                                    " != discarded " +
                                    std::to_string(chan.corrupt_discarded));
  }
  if (!corruption_expected && (chan.corrupted != 0 || chan.corrupt_discarded != 0)) {
    fail("corruption_disarmed", "corruption counters nonzero on a corruption-free run");
  }
  if (!gray_expected && quar.active()) {
    fail("quarantine_disarmed", "gray counters nonzero on a gray-free run");
  }
  if (quar.quarantines != quar.fail_slow_trips + quar.audit_trips) {
    fail("quarantine_identity",
         "quarantines " + std::to_string(quar.quarantines) + " != fail-slow " +
             std::to_string(quar.fail_slow_trips) + " + audit " +
             std::to_string(quar.audit_trips));
  }
  if (quar.reinstatements > quar.quarantines) {
    fail("quarantine_identity", "more reinstatements than quarantines");
  }
  if (quar.probes_healthy > quar.probes_launched) {
    fail("quarantine_identity", "more healthy probes than probes launched");
  }
  if (quar.audits_launched !=
      quar.audits_matched + quar.audit_mismatches + quar.audits_abandoned) {
    fail("audit_identity",
         "launched " + std::to_string(quar.audits_launched) + " != matched " +
             std::to_string(quar.audits_matched) + " + mismatches " +
             std::to_string(quar.audit_mismatches) + " + abandoned " +
             std::to_string(quar.audits_abandoned));
  }
  if (quar.audits_launched != audit_entries) {
    fail("audit_identity", "launched " + std::to_string(quar.audits_launched) + " but " +
                               std::to_string(audit_entries) + " audit trace entries");
  }
  if (quar.probes_launched != probe_entries) {
    fail("quarantine_identity", "probes_launched " + std::to_string(quar.probes_launched) +
                                    " but " + std::to_string(probe_entries) +
                                    " probe trace entries");
  }

  // Reconstruct per-worker quarantine windows from the lifecycle events
  // (time-sorted by finalize) and cross-check the event counts.
  std::uint64_t quarantine_events = 0;
  std::uint64_t restore_events = 0;
  std::uint64_t probe_events = 0;
  std::uint64_t mismatch_events = 0;
  std::uint64_t corrupt_events = 0;
  std::vector<double> open(run.workers.size(), -1.0);
  std::vector<std::vector<std::pair<double, double>>> windows(run.workers.size());
  for (const LifecycleEvent& event : run.events) {
    if (event.worker >= run.workers.size()) continue;
    switch (event.kind) {
      case LifecycleEvent::Kind::kWorkerQuarantined:
        ++quarantine_events;
        if (open[event.worker] >= 0.0) {
          fail("quarantine_events", "worker " + std::to_string(event.worker) +
                                        " quarantined while already quarantined");
        }
        open[event.worker] = event.time;
        break;
      case LifecycleEvent::Kind::kWorkerRestored:
        ++restore_events;
        if (open[event.worker] < 0.0) {
          fail("quarantine_events", "worker " + std::to_string(event.worker) +
                                        " restored without a quarantine");
        } else {
          windows[event.worker].emplace_back(open[event.worker], event.time);
          open[event.worker] = -1.0;
        }
        break;
      case LifecycleEvent::Kind::kQuarantineProbe:
        ++probe_events;
        break;
      case LifecycleEvent::Kind::kAuditMismatch:
        ++mismatch_events;
        break;
      case LifecycleEvent::Kind::kMessageCorrupted:
        ++corrupt_events;
        break;
      default:
        break;
    }
  }
  for (std::size_t w = 0; w < open.size(); ++w) {
    if (open[w] >= 0.0) {
      windows[w].emplace_back(open[w], std::numeric_limits<double>::infinity());
    }
  }
  if (quarantine_events != quar.quarantines) {
    fail("quarantine_events", std::to_string(quarantine_events) +
                                  " quarantine events but quarantines " +
                                  std::to_string(quar.quarantines));
  }
  if (restore_events != quar.reinstatements) {
    fail("quarantine_events", std::to_string(restore_events) +
                                  " restore events but reinstatements " +
                                  std::to_string(quar.reinstatements));
  }
  if (probe_events != quar.probes_launched) {
    fail("quarantine_events", std::to_string(probe_events) + " probe events but launched " +
                                  std::to_string(quar.probes_launched));
  }
  if (mismatch_events != quar.audit_mismatches) {
    fail("quarantine_events", std::to_string(mismatch_events) +
                                  " mismatch events but audit_mismatches " +
                                  std::to_string(quar.audit_mismatches));
  }
  if (corrupt_events != chan.corrupted) {
    fail("corruption_identity", std::to_string(corrupt_events) +
                                    " corruption events but corrupted " +
                                    std::to_string(chan.corrupted));
  }
  bool quarantine_respected = true;
  for (const ChunkTraceEntry& entry : run.trace) {
    if (!quarantine_respected) break;
    if (entry.probe || entry.worker >= windows.size()) continue;
    for (const auto& window : windows[entry.worker]) {
      if (entry.dispatch_time > window.first && entry.dispatch_time < window.second) {
        fail("quarantine_respected",
             "worker " + std::to_string(entry.worker) + " dispatched a non-probe chunk at " +
                 std::to_string(entry.dispatch_time) + " inside quarantine [" +
                 std::to_string(window.first) + ", " + std::to_string(window.second) + ")");
        quarantine_respected = false;
        break;
      }
    }
  }

  partial.faults.workers_crashed += faults.workers_crashed;
  partial.faults.workers_recovered += faults.workers_recovered;
  partial.faults.chunks_lost += faults.chunks_lost;
  partial.faults.iterations_reexecuted += faults.iterations_reexecuted;
  partial.faults.wasted_work += faults.wasted_work;
  partial.faults.detection_latency_total += faults.detection_latency_total;
  partial.faults.max_detection_latency =
      std::max(partial.faults.max_detection_latency, faults.max_detection_latency);
  partial.faults.false_suspicions += faults.false_suspicions;
  partial.speculation.accumulate(spec);
  partial.channel.accumulate(chan);
  partial.checkpoint.accumulate(ckpt);
  partial.quarantine.accumulate(quar);
  partial.max_makespan = std::max(partial.max_makespan, run.makespan);
  partial.runs += 1;

  // A violated run is exactly what the flight recorder exists for: dump
  // its event tail (when the sink is armed) with the first violation as
  // the triggering anomaly.
  if (partial.violations.size() > violations_before) {
    const ChaosViolation& first = partial.violations[violations_before];
    obs::FlightSink::global().maybe_dump(
        run.flight, obs::FlightAnomaly{"chaos_invariant",
                                       first.invariant + ": " + first.detail, run.makespan});
  }
}

bool summaries_identical(const ReplicationSummary& a, const ReplicationSummary& b) {
  const bool makespans = a.mean_makespan == b.mean_makespan &&
                         a.median_makespan == b.median_makespan &&
                         a.stddev_makespan == b.stddev_makespan &&
                         a.min_makespan == b.min_makespan &&
                         a.max_makespan == b.max_makespan &&
                         a.deadline_hit_rate == b.deadline_hit_rate;
  const bool faults = a.faults_total.workers_crashed == b.faults_total.workers_crashed &&
                      a.faults_total.workers_recovered == b.faults_total.workers_recovered &&
                      a.faults_total.chunks_lost == b.faults_total.chunks_lost &&
                      a.faults_total.iterations_reexecuted ==
                          b.faults_total.iterations_reexecuted &&
                      a.faults_total.wasted_work == b.faults_total.wasted_work &&
                      a.faults_total.false_suspicions == b.faults_total.false_suspicions;
  const bool speculation =
      a.speculation_total.stragglers_flagged == b.speculation_total.stragglers_flagged &&
      a.speculation_total.backups_launched == b.speculation_total.backups_launched &&
      a.speculation_total.backups_won == b.speculation_total.backups_won &&
      a.speculation_total.backups_cancelled == b.speculation_total.backups_cancelled &&
      a.speculation_total.backups_lost == b.speculation_total.backups_lost &&
      a.speculation_total.primaries_cancelled == b.speculation_total.primaries_cancelled &&
      a.speculation_total.cancelled_work == b.speculation_total.cancelled_work &&
      a.speculation_total.risk_escalations == b.speculation_total.risk_escalations;
  const bool channel =
      a.channel_total.messages_sent == b.channel_total.messages_sent &&
      a.channel_total.drops == b.channel_total.drops &&
      a.channel_total.burst_drops == b.channel_total.burst_drops &&
      a.channel_total.duplicates == b.channel_total.duplicates &&
      a.channel_total.reorders == b.channel_total.reorders &&
      a.channel_total.retransmits == b.channel_total.retransmits &&
      a.channel_total.dedup_hits == b.channel_total.dedup_hits &&
      a.channel_total.acks_sent == b.channel_total.acks_sent &&
      a.channel_total.retransmits_abandoned == b.channel_total.retransmits_abandoned &&
      a.channel_total.corrupted == b.channel_total.corrupted &&
      a.channel_total.corrupt_discarded == b.channel_total.corrupt_discarded;
  const bool checkpoint =
      a.checkpoint_total.wal_records == b.checkpoint_total.wal_records &&
      a.checkpoint_total.snapshots == b.checkpoint_total.snapshots &&
      a.checkpoint_total.master_restarts == b.checkpoint_total.master_restarts &&
      a.checkpoint_total.restart_ranges_redispatched ==
          b.checkpoint_total.restart_ranges_redispatched &&
      a.checkpoint_total.restart_chunks_preserved ==
          b.checkpoint_total.restart_chunks_preserved &&
      a.checkpoint_total.restart_completions_replayed ==
          b.checkpoint_total.restart_completions_replayed;
  const bool quarantine =
      a.quarantine_total.fail_slow_trips == b.quarantine_total.fail_slow_trips &&
      a.quarantine_total.audit_trips == b.quarantine_total.audit_trips &&
      a.quarantine_total.quarantines == b.quarantine_total.quarantines &&
      a.quarantine_total.reinstatements == b.quarantine_total.reinstatements &&
      a.quarantine_total.probes_launched == b.quarantine_total.probes_launched &&
      a.quarantine_total.probes_healthy == b.quarantine_total.probes_healthy &&
      a.quarantine_total.quarantined_time == b.quarantine_total.quarantined_time &&
      a.quarantine_total.audits_launched == b.quarantine_total.audits_launched &&
      a.quarantine_total.audits_matched == b.quarantine_total.audits_matched &&
      a.quarantine_total.audit_mismatches == b.quarantine_total.audit_mismatches &&
      a.quarantine_total.audits_abandoned == b.quarantine_total.audits_abandoned &&
      a.quarantine_total.corrupt_chunks_recorded ==
          b.quarantine_total.corrupt_chunks_recorded;
  return makespans && faults && speculation && channel && checkpoint && quarantine;
}

}  // namespace

ChaosReport run_chaos_campaign(const ChaosConfig& config) {
  if (config.schedules == 0) {
    throw std::invalid_argument("run_chaos_campaign: schedules must be >= 1");
  }
  if (config.processors < 2) {
    throw std::invalid_argument("run_chaos_campaign: processors must be >= 2");
  }
  if (config.parallel_iterations <= 0 || config.serial_iterations < 0) {
    throw std::invalid_argument("run_chaos_campaign: bad iteration counts");
  }
  if (config.max_failures == 0 || config.max_failures >= config.processors) {
    throw std::invalid_argument(
        "run_chaos_campaign: max_failures must be in [1, processors - 1]");
  }
  if (config.replications == 0) {
    throw std::invalid_argument("run_chaos_campaign: replications must be >= 1");
  }

  // One application and availability law shared by every schedule: the
  // chaos variation lives in the fault schedules, not the workload.
  const double total_time =
      static_cast<double>(config.serial_iterations + config.parallel_iterations);
  const workload::Application application(
      "chaos", config.serial_iterations, config.parallel_iterations,
      {workload::TimeLaw{workload::TimeLawKind::kNormal, total_time, 0.2}});
  const sysmodel::AvailabilitySpec availability(
      "chaos", {pmf::Pmf::uniform_over({0.4, 0.7, 1.0})});
  const MessageModel messages;

  const util::SeedSequence seeds(config.seed);
  std::vector<Partial> partials(config.schedules);

  util::parallel_for_index(
      config.schedules,
      config.threads == 0 ? util::default_thread_count() : config.threads,
      [&](std::size_t index) {
        Partial& partial = partials[index];
        util::RngStream rng = seeds.stream(2 * index);
        const std::uint64_t sim_seed = seeds.child(2 * index + 1);
        const Schedule schedule = draw_schedule(config, rng, sim_seed);
        partial.failures = schedule.sim.failures.size();
        partial.speculated = schedule.sim.speculation.enabled;
        partial.channel_faulty = schedule.sim.channel.faulty();
        partial.master_restarted = schedule.master_restarts() > 0;
        partial.gray_quarantine = schedule.sim.quarantine.armed();
        partial.gray_corruption =
            schedule.sim.channel.corrupting() || schedule.silent_corrupt();
        const bool hardened = schedule.hardened();
        const std::size_t expected_restarts = schedule.master_restarts();
        const bool gray = schedule.gray();

        CDSF_LOG_DEBUG << "chaos schedule " << index << " seed " << sim_seed << " technique "
                       << dls::technique_name(schedule.technique) << " failures "
                       << partial.failures << (partial.speculated ? " +speculation" : "");
        CDSF_LOG_DEBUG << "  mode " << static_cast<int>(schedule.sim.availability_mode)
                       << " cov " << schedule.sim.iteration_cov << " epoch "
                       << schedule.sim.epoch_length;
        for (const SimConfig::Failure& f : schedule.sim.failures) {
          CDSF_LOG_DEBUG << "  failure worker " << f.worker << " time " << f.time << " kind "
                         << static_cast<int>(f.kind) << " residual "
                         << f.residual_availability << " recovery " << f.recovery_time;
        }
        if (schedule.sim.channel.faulty()) {
          const ChannelModel& ch = schedule.sim.channel;
          CDSF_LOG_DEBUG << "  channel drop " << ch.drop_to_worker << "/" << ch.drop_to_master
                         << " dup " << ch.duplicate_to_worker << "/" << ch.duplicate_to_master
                         << " reorder " << ch.reorder_to_worker << "/" << ch.reorder_to_master
                         << " delay " << ch.reorder_delay << " burst gap "
                         << ch.burst_gap_mean << " dur " << ch.burst_duration;
        }
        if (schedule.sim.checkpoint.enabled || schedule.master_restarts() > 0) {
          CDSF_LOG_DEBUG << "  checkpoint interval " << schedule.sim.checkpoint.interval;
        }
        if (gray) {
          const SimConfig::Quarantine& q = schedule.sim.quarantine;
          CDSF_LOG_DEBUG << "  quarantine enabled " << q.enabled << " threshold "
                         << q.slowdown_threshold << " audit_rate " << q.audit_rate
                         << " corrupt " << schedule.sim.channel.corrupt_to_worker << "/"
                         << schedule.sim.channel.corrupt_to_master << " silent "
                         << schedule.silent_corrupt();
        }
        SimConfig traced = schedule.sim;
        traced.collect_trace = true;
        try {
          CDSF_LOG_DEBUG << "chaos schedule " << index << " ideal";
          const RunResult run =
              simulate_loop(application, 0, config.processors, availability,
                            schedule.technique, traced, sim_seed);
          // The idealized executor ignores the channel and the master fault:
          // its hardened counters must stay zero even on hardened schedules
          // (but it runs the quarantine/audit machinery).
          check_run(run, config.parallel_iterations, index, sim_seed, "ideal", false, 0,
                    gray, false, partial);
        } catch (const std::exception& error) {
          add_violation(partial, index, sim_seed, "ideal", "exception", error.what());
        }

        if (config.include_mpi) {
          // The message-passing executor ignores the deadline-risk monitor
          // (idealized executors only); everything else carries over.
          SimConfig mpi_config = traced;
          mpi_config.deadline_risk = SimConfig::DeadlineRisk{};
          try {
            CDSF_LOG_DEBUG << "chaos schedule " << index << " mpi";
            const MpiRunResult mpi =
                simulate_loop_mpi(application, 0, config.processors, availability,
                                  schedule.technique, mpi_config, messages, sim_seed);
            check_run(mpi.run, config.parallel_iterations, index, sim_seed, "mpi", hardened,
                      expected_restarts, gray, schedule.sim.channel.corrupting(), partial);
          } catch (const std::exception& error) {
            add_violation(partial, index, sim_seed, "mpi", "exception", error.what());
          }

          // Hardened schedules: the MPI replicated summary (including the
          // channel/checkpoint totals) must be bit-identical across thread
          // counts — channel randomness is replication-local by design.
          if (hardened && config.thread_counts.size() >= 2) {
            try {
              CDSF_LOG_DEBUG << "chaos schedule " << index << " mpi replicated";
              SimConfig rep_config = schedule.sim;
              rep_config.deadline_risk = SimConfig::DeadlineRisk{};
              const ReplicationSummary baseline = simulate_replicated_mpi(
                  application, 0, config.processors, availability, schedule.technique,
                  rep_config, messages, sim_seed, config.replications, schedule.deadline,
                  config.thread_counts.front());
              partial.runs += config.replications;
              for (std::size_t k = 1; k < config.thread_counts.size(); ++k) {
                const ReplicationSummary other = simulate_replicated_mpi(
                    application, 0, config.processors, availability, schedule.technique,
                    rep_config, messages, sim_seed, config.replications, schedule.deadline,
                    config.thread_counts[k]);
                partial.runs += config.replications;
                if (!summaries_identical(baseline, other)) {
                  add_violation(partial, index, sim_seed, "mpi_replicated",
                                "thread_determinism",
                                "summary differs between threads=" +
                                    std::to_string(config.thread_counts.front()) +
                                    " and threads=" +
                                    std::to_string(config.thread_counts[k]));
                }
              }
            } catch (const std::exception& error) {
              add_violation(partial, index, sim_seed, "mpi_replicated", "exception",
                            error.what());
            }
          }
        }

        if (config.thread_counts.size() >= 2) {
          try {
            CDSF_LOG_DEBUG << "chaos schedule " << index << " replicated";
            const ReplicationSummary baseline = simulate_replicated(
                application, 0, config.processors, availability, schedule.technique,
                schedule.sim, sim_seed, config.replications, schedule.deadline,
                config.thread_counts.front());
            partial.runs += config.replications;
            for (std::size_t k = 1; k < config.thread_counts.size(); ++k) {
              const ReplicationSummary other = simulate_replicated(
                  application, 0, config.processors, availability, schedule.technique,
                  schedule.sim, sim_seed, config.replications, schedule.deadline,
                  config.thread_counts[k]);
              partial.runs += config.replications;
              if (!summaries_identical(baseline, other)) {
                add_violation(partial, index, sim_seed, "replicated", "thread_determinism",
                              "summary differs between threads=" +
                                  std::to_string(config.thread_counts.front()) +
                                  " and threads=" +
                                  std::to_string(config.thread_counts[k]));
              }
            }
          } catch (const std::exception& error) {
            add_violation(partial, index, sim_seed, "replicated", "exception", error.what());
          }
        }
      });

  ChaosReport report;
  report.schedules_run = config.schedules;
  for (const Partial& partial : partials) {
    report.runs_executed += partial.runs;
    report.failures_injected += partial.failures;
    report.schedules_with_speculation += partial.speculated ? 1 : 0;
    report.schedules_with_channel_faults += partial.channel_faulty ? 1 : 0;
    report.schedules_with_master_restart += partial.master_restarted ? 1 : 0;
    report.schedules_with_quarantine += partial.gray_quarantine ? 1 : 0;
    report.schedules_with_corruption += partial.gray_corruption ? 1 : 0;
    for (const ChaosViolation& violation : partial.violations) {
      report.violations.push_back(violation);
    }
    report.faults_total.workers_crashed += partial.faults.workers_crashed;
    report.faults_total.workers_recovered += partial.faults.workers_recovered;
    report.faults_total.chunks_lost += partial.faults.chunks_lost;
    report.faults_total.iterations_reexecuted += partial.faults.iterations_reexecuted;
    report.faults_total.wasted_work += partial.faults.wasted_work;
    report.faults_total.detection_latency_total += partial.faults.detection_latency_total;
    report.faults_total.max_detection_latency = std::max(
        report.faults_total.max_detection_latency, partial.faults.max_detection_latency);
    report.faults_total.false_suspicions += partial.faults.false_suspicions;
    report.speculation_total.accumulate(partial.speculation);
    report.channel_total.accumulate(partial.channel);
    report.checkpoint_total.accumulate(partial.checkpoint);
    report.quarantine_total.accumulate(partial.quarantine);
    report.max_makespan = std::max(report.max_makespan, partial.max_makespan);
  }
  for (const ChaosViolation& violation : report.violations) {
    CDSF_LOG_WARN << "chaos schedule " << violation.schedule << " (seed " << violation.seed
                  << ", " << violation.executor << "): " << violation.invariant << " — "
                  << violation.detail;
  }
  return report;
}

}  // namespace cdsf::sim
