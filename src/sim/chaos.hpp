// Chaos campaign harness: randomized fault-schedule fuzzing of the
// fault-tolerant Stage II executors.
//
// Each schedule draws a seeded random mix of crash / crash-recover /
// degrade failures (worker 0 stays crash-free — the serial phase has no
// fault tolerance), a technique, an availability mode, speculation knobs,
// unreliable-channel faults (drop / duplicate / reorder probabilities plus
// burst-loss episodes), and a mid-run master crash-restart with
// checkpointing, then executes it on BOTH executors (idealized
// simulate_loop and message-passing simulate_loop_mpi) and checks hard
// invariants that must hold for EVERY schedule:
//
//   * the makespan Psi is finite and >= the serial completion,
//   * every parallel iteration is executed (accepted) exactly once —
//     reconstructed from the chunk trace: the winning entries (not lost,
//     not cancelled) must tile [0, parallel_iterations) with no overlap —
//     even under message duplication and master restarts,
//   * FaultStats is consistent with the trace (chunks_lost == lost
//     entries; dispatched iterations == total + re-executed),
//   * SpeculationStats satisfies the bookkeeping identity
//     backups_launched == backups_won + backups_cancelled + backups_lost,
//   * ChannelStats satisfies burst_drops <= drops and
//     dedup_hits <= duplicates + retransmits, and stays all-zero when the
//     channel is clean and checkpointing is off (structural disarm),
//   * the WAL is consistent: checkpoint.wal_records == wal size and the
//     restart records match checkpoint.master_restarts (exactly one per
//     configured kMasterCrashRestart failure),
//   * gray failures (fail-slow quarantine, payload corruption, audits)
//     obey their identities: every corrupted frame is discarded
//     (corrupted == corrupt_discarded — a corrupted report never reaches
//     record()), quarantines == fail_slow_trips + audit_trips with
//     reinstatements <= quarantines and probes_healthy <= probes_launched,
//     audits_launched == matched + mismatches + abandoned, NO non-probe
//     chunk is dispatched to a worker inside its quarantine window
//     (reconstructed from the lifecycle events), audit replicas never
//     enter the exactly-once coverage, and every gray counter stays zero
//     when the gray config is absent (structural disarm),
//   * replicated summaries are BIT-IDENTICAL across thread counts — for
//     hardened schedules on the MPI executor too (channel randomness is
//     replication-local).
//
// A campaign is deterministic given its seed; violations carry the
// schedule index and seed so any failure replays in isolation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/master_worker.hpp"

namespace cdsf::sim {

/// Campaign shape. Defaults run the CI smoke configuration scaled up.
struct ChaosConfig {
  /// Randomized fault schedules to draw (>= 100 for a full campaign).
  std::size_t schedules = 100;
  std::uint64_t seed = 2026;
  /// Loop shape shared by every schedule.
  std::size_t processors = 6;
  std::int64_t serial_iterations = 24;
  std::int64_t parallel_iterations = 600;
  /// Failures injected per schedule (drawn in [1, max_failures], always on
  /// workers >= 1 so the serial phase survives).
  std::size_t max_failures = 3;
  /// Also run every schedule through the message-passing executor.
  bool include_mpi = true;
  /// Allow schedules to enable speculative re-execution (~2/3 of them) and
  /// the deadline-risk monitor (~1/3 of the speculating ones).
  bool speculation = true;
  /// Allow schedules to draw unreliable-channel faults for the MPI
  /// executor (~1/2 of them): drop / duplicate / reorder probabilities
  /// plus occasional burst-loss episodes.
  bool channel_faults = true;
  /// Allow schedules to inject a mid-run master crash-restart with
  /// checkpointing (~1/3 of them; MPI executor only — the idealized
  /// executors have no explicit coordinator).
  bool master_restart = true;
  /// Allow schedules to arm the fail-slow quarantine (~0.45 of them;
  /// EWMA thresholds, canary probes, and — on half of those — audit-based
  /// result validation), usually alongside a dedicated late-onset degraded
  /// worker for the detector to catch. Drawn AFTER every pre-existing axis
  /// so disabling it replays historical campaigns unchanged.
  bool fail_slow = true;
  /// Allow schedules to draw payload-corruption faults: channel bit-flips
  /// (MPI executor, recovered by checksum + retransmit; also requires
  /// channel_faults — they ride the unreliable channel) and silently-wrong
  /// workers (kSilentCorrupt, caught only by audits).
  bool corruption = true;
  /// Thread counts the replicated determinism check compares; the first
  /// entry is the baseline. Fewer than 2 entries skips the check.
  std::vector<std::size_t> thread_counts = {1, 8};
  /// Replications per determinism comparison.
  std::size_t replications = 3;
  /// Campaign-level parallelism over schedules (0 = hardware default).
  std::size_t threads = 0;
};

/// One broken invariant. A passing campaign has none.
struct ChaosViolation {
  std::size_t schedule = 0;
  std::uint64_t seed = 0;            // replay seed of the schedule
  std::string executor;              // "ideal" | "mpi" | "replicated"
  std::string invariant;             // short id, e.g. "exactly_once"
  std::string detail;
};

/// Campaign outcome: invariant violations plus aggregate accounting.
struct ChaosReport {
  std::size_t schedules_run = 0;
  /// Individual simulations executed (both executors + determinism runs).
  std::size_t runs_executed = 0;
  std::size_t failures_injected = 0;
  std::size_t schedules_with_speculation = 0;
  std::size_t schedules_with_channel_faults = 0;
  std::size_t schedules_with_master_restart = 0;
  std::size_t schedules_with_quarantine = 0;
  std::size_t schedules_with_corruption = 0;
  std::vector<ChaosViolation> violations;
  FaultStats faults_total;             // summed over ideal + mpi runs
  SpeculationStats speculation_total;  // summed over ideal + mpi runs
  ChannelStats channel_total;          // summed over mpi runs (hardened only)
  CheckpointStats checkpoint_total;    // summed over mpi runs
  QuarantineStats quarantine_total;    // summed over ideal + mpi runs
  double max_makespan = 0.0;

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
};

/// Runs the campaign. Deterministic given config.seed (any thread count).
/// Throws std::invalid_argument on a degenerate config.
[[nodiscard]] ChaosReport run_chaos_campaign(const ChaosConfig& config);

}  // namespace cdsf::sim
