#include "sim/engine.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace cdsf::sim {

void Engine::schedule_at(double time, Handler handler) {
  if (!std::isfinite(time)) throw std::invalid_argument("Engine::schedule_at: time must be finite");
  if (time < now_) throw std::invalid_argument("Engine::schedule_at: time is in the past");
  queue_.push(Event{time, next_sequence_++, std::move(handler)});
}

void Engine::schedule_after(double delay, Handler handler) {
  if (delay < 0.0) throw std::invalid_argument("Engine::schedule_after: delay must be >= 0");
  schedule_at(now_ + delay, std::move(handler));
}

Engine::EventId Engine::schedule_cancellable_at(double time, Handler handler) {
  const EventId id = next_sequence_;
  schedule_at(time, std::move(handler));
  return id;
}

bool Engine::cancel(EventId id) {
  if (id == kNoEvent || id >= next_sequence_) return false;
  return cancelled_.insert(id).second;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t dispatched = 0;
  while (!queue_.empty()) {
    if (dispatched >= max_events) {
      throw std::runtime_error("Engine::run: event budget exhausted (runaway simulation?)");
    }
    // Copy out before pop so the handler may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    if (!cancelled_.empty() && cancelled_.erase(event.sequence) > 0) continue;
    now_ = event.time;
    ++dispatched;
    event.handler();
  }
  return dispatched;
}

}  // namespace cdsf::sim
