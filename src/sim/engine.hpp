// Minimal discrete-event simulation core: a time-ordered event queue with
// deterministic FIFO tie-breaking and a run loop.
//
// The loop executor (src/sim/loop_executor.hpp) is built on this engine;
// the engine itself is application-agnostic and reusable for other
// scheduling studies.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace cdsf::sim {

/// Event-driven simulation clock and dispatcher.
class Engine {
 public:
  using Handler = std::function<void()>;
  /// Token for cancel(); kNoEvent is never a live event.
  using EventId = std::uint64_t;
  static constexpr EventId kNoEvent = 0;

  /// Schedules `handler` at absolute time `time`. Throws
  /// std::invalid_argument if time is before the current clock (no
  /// time travel) or not finite.
  void schedule_at(double time, Handler handler);

  /// Schedules `handler` `delay` time units from now. Throws if delay < 0.
  void schedule_after(double delay, Handler handler);

  /// As schedule_at, but returns a token that cancel() accepts. Used by the
  /// speculation layer to kill the losing copy's completion event instead
  /// of threading stale-handler guards through every closure.
  [[nodiscard]] EventId schedule_cancellable_at(double time, Handler handler);

  /// Cancels a pending event scheduled with schedule_cancellable_at: its
  /// handler will not run. Returns false for kNoEvent. Callers must not
  /// cancel an id whose handler has already run (the executors track
  /// per-chunk state, so they always know) — doing so would leave a dead
  /// tombstone in the cancellation set for the rest of the run.
  bool cancel(EventId id);

  /// Runs until the queue drains or `max_events` events were dispatched.
  /// Returns the number of events dispatched. Throws std::runtime_error if
  /// the event budget is exhausted with events still pending (runaway
  /// simulation guard).
  std::uint64_t run(std::uint64_t max_events = kDefaultMaxEvents);

  /// Current simulation time (the timestamp of the last dispatched event).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Number of events waiting in the queue.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  static constexpr std::uint64_t kDefaultMaxEvents = 50'000'000;

 private:
  struct Event {
    double time;
    std::uint64_t sequence;  // FIFO order among same-time events; doubles
                             // as the EventId (sequence 0 is reserved for
                             // kNoEvent — the counter starts at 1)
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  double now_ = 0.0;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace cdsf::sim
