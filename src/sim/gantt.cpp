#include "sim/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace cdsf::sim {

std::string render_gantt(const RunResult& result, const GanttOptions& options) {
  if (result.trace.empty()) {
    throw std::invalid_argument("render_gantt: empty trace (enable SimConfig::collect_trace)");
  }
  if (options.width < 10) throw std::invalid_argument("render_gantt: width must be >= 10");

  const double horizon = std::max(result.makespan, 1e-9);
  const double scale = static_cast<double>(options.width) / horizon;
  // Clamp BEFORE casting: a lost chunk's would-be end time is +infinity
  // when its worker crashed for good, and size_t(inf * scale) is UB.
  auto column = [&](double t) {
    return std::min(options.width - 1,
                    static_cast<std::size_t>(std::clamp(t, 0.0, horizon) * scale));
  };

  bool any_lost = false;
  bool any_speculative = false;
  bool any_cancelled = false;
  bool any_retransmitted = false;
  bool any_audit = false;
  bool any_probe = false;
  std::vector<std::string> rows(result.workers.size(), std::string(options.width, ' '));
  for (const ChunkTraceEntry& chunk : result.trace) {
    std::string& row = rows.at(chunk.worker);
    for (std::size_t c = column(chunk.dispatch_time); c < column(chunk.start_time); ++c) {
      row[c] = '.';
    }
    const std::size_t start = column(chunk.start_time);
    const std::size_t end = std::max(column(chunk.end_time), start + 1);
    // Lost chunks (stranded by a crash, later re-dispatched elsewhere)
    // render as 'x' so they are not mistaken for completed work; cancelled
    // speculation losers as '-' (their end_time is the cancellation
    // instant), audit replicas as 'a' (side-channel verification, not
    // delivery), canary probes of quarantined workers as 'c', surviving
    // speculative backups as '~', and chunks whose assignment only arrived
    // via a protocol retransmission as '+' (priority: lost > cancelled >
    // audit > probe > speculative > retransmitted).
    const char fill = chunk.lost        ? 'x'
                      : chunk.cancelled ? '-'
                      : chunk.audit     ? 'a'
                      : chunk.probe     ? 'c'
                      : (chunk.speculative   ? '~'
                         : chunk.retransmitted ? '+'
                                               : '=');
    any_lost = any_lost || chunk.lost;
    any_speculative = any_speculative || chunk.speculative;
    any_cancelled = any_cancelled || chunk.cancelled;
    any_retransmitted = any_retransmitted || chunk.retransmitted;
    any_audit = any_audit || chunk.audit;
    any_probe = any_probe || chunk.probe;
    for (std::size_t c = start; c < end && c < options.width; ++c) row[c] = fill;
    // Chunk boundary marker so adjacent chunks remain distinguishable.
    if (start < options.width) {
      row[start] = chunk.lost        ? '!'
                   : chunk.cancelled ? '/'
                   : chunk.audit     ? '('
                   : chunk.probe     ? '^'
                   : (chunk.speculative   ? '<'
                      : chunk.retransmitted ? '{'
                                            : '[');
    }
  }

  // Quarantine spans: fill the BLANK stretches of a quarantined worker's
  // row with 'q' between its kWorkerQuarantined and kWorkerRestored events
  // (run end when never reinstated) — the drained window reads as enforced
  // idleness without hiding the canary probes running inside it. Only
  // gray-failure runs carry these events, so legacy renders are untouched.
  bool any_quarantine = false;
  {
    std::vector<double> open(result.workers.size(), -1.0);
    auto close_span = [&](std::size_t w, double from, double to) {
      std::string& row = rows.at(w);
      const std::size_t last = std::max(column(to), column(from) + 1);
      for (std::size_t c = column(from); c < last && c < options.width; ++c) {
        if (row[c] == ' ') row[c] = 'q';
      }
    };
    for (const LifecycleEvent& event : result.events) {
      if (event.worker >= result.workers.size()) continue;
      if (event.kind == LifecycleEvent::Kind::kWorkerQuarantined) {
        any_quarantine = true;
        open[event.worker] = event.time;
      } else if (event.kind == LifecycleEvent::Kind::kWorkerRestored &&
                 open[event.worker] >= 0.0) {
        close_span(event.worker, open[event.worker], event.time);
        open[event.worker] = -1.0;
      }
    }
    for (std::size_t w = 0; w < open.size(); ++w) {
      if (open[w] >= 0.0) close_span(w, open[w], horizon);
    }
  }

  // Master lifecycle track: only rendered when the run actually carries
  // master crash / restart events, so legacy renders stay byte-identical.
  bool any_master_event = false;
  std::string master_row(options.width, ' ');
  for (const LifecycleEvent& event : result.events) {
    char glyph = '\0';
    if (event.kind == LifecycleEvent::Kind::kMasterCrash) glyph = '%';
    if (event.kind == LifecycleEvent::Kind::kMasterRestart) glyph = '@';
    if (glyph != '\0') {
      master_row[column(event.time)] = glyph;
      any_master_event = true;
    }
  }

  // Channel-corruption track: one '*' per checksum-discarded message copy
  // (kMessageCorrupted), rendered only when the run saw corruption.
  bool any_corrupted = false;
  std::string channel_row(options.width, ' ');
  for (const LifecycleEvent& event : result.events) {
    if (event.kind == LifecycleEvent::Kind::kMessageCorrupted) {
      channel_row[column(event.time)] = '*';
      any_corrupted = true;
    }
  }

  std::ostringstream out;
  if (result.serial_end > 0.0) {
    std::string serial_row(options.width, ' ');
    for (std::size_t c = 0; c < column(result.serial_end); ++c) serial_row[c] = 's';
    out << "  serial | " << serial_row << "\n";
  }
  if (any_master_event) out << "  master | " << master_row << "\n";
  if (any_corrupted) out << " channel | " << channel_row << "\n";
  for (std::size_t w = 0; w < rows.size(); ++w) {
    if (options.deadline > 0.0 && options.deadline <= horizon) {
      rows[w][column(options.deadline)] = '|';
    }
    out << "worker " << w << " | " << rows[w];
    if (options.show_stats) {
      out << "  (" << result.workers[w].chunks << " chunks, " << result.workers[w].iterations
          << " iters)";
    }
    out << "\n";
  }
  out << "time 0 .. " << result.makespan;
  if (options.deadline > 0.0) out << "   ('|' = deadline " << options.deadline << ")";
  out << "\n";
  if (any_lost) out << "'x'/'!' = chunk lost to a crash (re-dispatched to survivors)\n";
  if (any_speculative) out << "'~'/'<' = speculative backup copy of a straggling chunk\n";
  if (any_cancelled) out << "'-'/'/' = copy cancelled after the other copy finished first\n";
  if (any_retransmitted) {
    out << "'+'/'{' = assignment delivered only after protocol retransmission\n";
  }
  if (any_master_event) {
    out << "'%' = master crash, '@' = master restart from checkpoint + WAL\n";
  }
  if (any_audit) out << "'a'/'(' = audit replica re-validating an accepted chunk\n";
  if (any_quarantine) {
    out << "'q' = fail-slow quarantine window (drained; canary probes only)\n";
  }
  if (any_probe) out << "'c'/'^' = canary probe of a quarantined worker\n";
  if (any_corrupted) {
    out << "'*' = message copy discarded by checksum (recovered by retransmission)\n";
  }
  return out.str();
}

}  // namespace cdsf::sim
