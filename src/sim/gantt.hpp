// ASCII Gantt rendering of a loop-execution trace: one row per worker,
// chunks drawn as labeled bars on a common time axis. Used by the trace
// example and invaluable when debugging a DLS technique's chunk pattern.
#pragma once

#include <string>

#include "sim/loop_executor.hpp"

namespace cdsf::sim {

/// Rendering knobs.
struct GanttOptions {
  /// Characters available for the time axis.
  std::size_t width = 100;
  /// Mark the deadline with a '|' column when > 0 and within range.
  double deadline = 0.0;
  /// Show per-worker chunk/iteration counts in the row label.
  bool show_stats = true;
};

/// Renders the chunks of `result` (which must have been produced with
/// SimConfig::collect_trace = true). Each chunk bar shows dispatch overhead
/// as '.' and computation as '='; idle time is ' '. Returns a multi-line
/// string. Throws std::invalid_argument if the trace is empty or width is
/// too small.
[[nodiscard]] std::string render_gantt(const RunResult& result, const GanttOptions& options);

}  // namespace cdsf::sim
