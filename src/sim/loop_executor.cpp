#include "sim/loop_executor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/engine.hpp"
#include "sim/sim_common.hpp"
#include "stats/summary.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cdsf::sim {

namespace {

/// Delegates every call to a caller-owned technique (for the Technique&
/// overload of simulate_loop).
class ForwardingTechnique final : public dls::Technique {
 public:
  explicit ForwardingTechnique(dls::Technique& inner) : inner_(&inner) {}
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] std::int64_t next_chunk(const dls::SchedulingContext& ctx) override {
    return inner_->next_chunk(ctx);
  }
  void record(const dls::ChunkResult& result) override { inner_->record(result); }
  void reset() override { inner_->reset(); }

 private:
  dls::Technique* inner_;
};

void accumulate_faults(FaultStats& total, const FaultStats& run) {
  total.workers_crashed += run.workers_crashed;
  total.workers_recovered += run.workers_recovered;
  total.chunks_lost += run.chunks_lost;
  total.iterations_reexecuted += run.iterations_reexecuted;
  total.wasted_work += run.wasted_work;
  total.detection_latency_total += run.detection_latency_total;
  total.max_detection_latency = std::max(total.max_detection_latency, run.max_detection_latency);
  total.false_suspicions += run.false_suspicions;
}

/// The idealized self-scheduling event loop shared by simulate_loop and
/// simulate_loop_mixed. `worker_types` / `mean_iter` / `stddev_iter` are
/// per-worker (constant vectors for a homogeneous group). Fault tolerance:
/// when crash-kind failures are configured, a chunk whose execution window
/// straddles its worker's crash is LOST — its iterations return to the
/// pool and are re-dispatched FIFO to idle survivors; record() is never
/// called for lost chunks, so adaptive weights see only real timings.
/// Crash detection is instantaneous here (the simulator observes the crash
/// event directly); the message-passing model in master_worker.cpp pays a
/// timeout-detection latency instead.
RunResult run_ideal_loop(const workload::Application& application, const SimConfig& config,
                         double input_factor, const std::vector<std::size_t>& worker_types,
                         const std::vector<double>& mean_iter,
                         const std::vector<double>& stddev_iter,
                         std::vector<detail::Worker>& workers, dls::Technique& technique,
                         util::RngStream& run_rng) {
  const std::size_t processors = workers.size();
  const bool crash_mode = detail::has_crash_failures(config);

  RunResult result;
  result.workers.assign(processors, WorkerStats{});
  for (const SimConfig::Failure& failure : config.failures) {
    if (failure.kind == SimConfig::FailureKind::kDegrade) continue;
    result.faults.workers_crashed += 1;
    if (failure.kind == SimConfig::FailureKind::kCrashRecover) {
      result.faults.workers_recovered += 1;
    }
  }

  // Serial iterations on the master (worker 0).
  double serial_end = 0.0;
  if (application.serial_iterations() > 0) {
    const double serial_work =
        input_factor * detail::sample_work(application.serial_iterations(), mean_iter[0],
                                           stddev_iter[0], run_rng);
    serial_end = workers[0].availability->finish_time(0.0, serial_work);
    if (!std::isfinite(serial_end)) {
      throw std::runtime_error(
          "simulate_loop: master crashed during the serial phase — the serial "
          "iterations have no fault tolerance (re-dispatch needs a live master)");
    }
  }
  result.serial_end = serial_end;
  result.makespan = serial_end;

  if (config.collect_trace) {
    for (std::size_t w = 0; w < processors; ++w) {
      if (!workers[w].crashes()) continue;
      result.events.push_back(
          {LifecycleEvent::Kind::kWorkerCrash, workers[w].crash_time, w, 0});
      if (std::isfinite(workers[w].recovery_time)) {
        result.events.push_back(
            {LifecycleEvent::Kind::kWorkerRecover, workers[w].recovery_time, w, 0});
      }
    }
  }

  Engine engine;
  detail::IterationPool pool(application.parallel_iterations());
  std::vector<char> dead(processors, 0);
  std::vector<char> idle(processors, 0);
  // The (at most one) chunk in flight on a crashing worker that the crash
  // will strand; the crash lifecycle event reclaims it.
  struct InFlight {
    bool lost = false;
    detail::IterationPool::Range range;
    double dispatch_time = 0.0;
    double start_time = 0.0;
  };
  std::vector<InFlight> in_flight(processors);

  // Self-scheduling protocol: an idle worker requests a chunk; the chunk
  // completion event records feedback and triggers the next request.
  std::function<void(std::size_t)> request = [&](std::size_t w) {
    WorkerStats& stats = result.workers[w];
    if (dead[w]) return;
    const std::int64_t pending = pool.pending();
    if (pending <= 0) {
      // Nothing undispatched NOW — but a crash may still return work, so
      // stay wakeable instead of retiring.
      idle[w] = 1;
      stats.finish_time = std::max(stats.finish_time, engine.now());
      return;
    }
    std::int64_t chunk = technique.next_chunk(dls::SchedulingContext{pending, w, engine.now()});
    if (chunk <= 0) {
      if (!crash_mode) {
        // Technique has nothing (ever) for this worker (STATIC share spent).
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }
      // Fault-tolerant fallback: the technique considers its plan spent
      // (STATIC after a crash returned iterations to the pool), yet work is
      // pending — drain it in equal shares so every run completes.
      std::size_t alive = 0;
      for (std::size_t v = 0; v < processors; ++v) alive += dead[v] ? 0u : 1u;
      const auto alive64 = static_cast<std::int64_t>(alive);
      chunk = (pending + alive64 - 1) / alive64;
    }
    const detail::IterationPool::Range range = pool.take(chunk);
    if (range.count <= 0) {
      idle[w] = 1;
      stats.finish_time = std::max(stats.finish_time, engine.now());
      return;
    }

    const double dispatch_time = engine.now();
    const double start_time = dispatch_time + config.scheduling_overhead;
    const double work =
        input_factor * detail::chunk_work(application, worker_types[w], mean_iter[w],
                                          stddev_iter[w], config.iteration_cov, range.first,
                                          range.count, *workers[w].rng);
    const double end_time = workers[w].availability->finish_time(start_time, work);
    // Lost iff the execution window straddles the crash (a permanent crash
    // makes end_time +infinity, which also lands here). Dead workers never
    // request, so dispatch_time < crash_time holds for every pre-crash
    // chunk and is false for every post-recovery one.
    const bool lost =
        dispatch_time < workers[w].crash_time && end_time > workers[w].crash_time;

    if (!lost) {
      stats.chunks += 1;
      stats.iterations += range.count;
      stats.busy_time += end_time - start_time;
      stats.overhead_time += config.scheduling_overhead;
      result.total_chunks += 1;
    }
    if (config.collect_trace) {
      result.trace.push_back(
          {w, range.count, dispatch_time, start_time, end_time, lost});
    }
    CDSF_LOG_TRACE << "worker " << w << " chunk " << range.count << " [" << dispatch_time
                   << ", " << end_time << "]" << (lost ? " LOST" : "");

    if (lost) {
      in_flight[w] = InFlight{true, range, dispatch_time, start_time};
      return;  // never completes; the crash event at crash_time reclaims it
    }
    engine.schedule_at(end_time, [&, w, range, start_time, dispatch_time, end_time] {
      technique.record(dls::ChunkResult{w, range.count, end_time - start_time,
                                        end_time - dispatch_time});
      result.workers[w].finish_time = end_time;
      result.makespan = std::max(result.makespan, end_time);
      request(w);
    });
  };

  if (application.parallel_iterations() > 0) {
    // Crash lifecycle events FIRST so that, on a timestamp tie, a worker is
    // marked dead before any request or completion at the same instant.
    for (std::size_t w = 0; w < processors; ++w) {
      if (!workers[w].crashes()) continue;
      engine.schedule_at(workers[w].crash_time, [&, w] {
        dead[w] = 1;
        InFlight& chunk = in_flight[w];
        if (!chunk.lost) return;
        result.faults.chunks_lost += 1;
        result.faults.iterations_reexecuted += chunk.range.count;
        if (config.collect_trace) {
          result.events.push_back(
              {LifecycleEvent::Kind::kChunkLost, engine.now(), w, chunk.range.count});
        }
        double wasted =
            std::min(config.scheduling_overhead, std::max(0.0, engine.now() - chunk.dispatch_time));
        if (chunk.start_time < engine.now()) {
          wasted += workers[w].availability->work_delivered(chunk.start_time, engine.now());
        }
        result.faults.wasted_work += wasted;
        pool.give_back(chunk.range);
        chunk = InFlight{};
        // Wake idle survivors for the returned iterations.
        for (std::size_t v = 0; v < processors; ++v) {
          if (!dead[v] && idle[v]) {
            idle[v] = 0;
            request(v);
          }
        }
      });
      if (std::isfinite(workers[w].recovery_time) && workers[w].recovery_time > serial_end) {
        engine.schedule_at(workers[w].recovery_time, [&, w] {
          dead[w] = 0;
          request(w);
        });
      }
    }
    // All workers become available for parallel work once the serial
    // portion completes on the master; workers already down then are
    // skipped (their recovery event, if any, revives them).
    engine.schedule_at(serial_end, [&] {
      for (std::size_t w = 0; w < processors; ++w) request(w);
    });
    engine.run();
  }

  if (crash_mode && pool.pending() > 0) {
    throw std::runtime_error("simulate_loop: " + std::to_string(pool.pending()) +
                             " iterations stranded by crashes with no surviving worker "
                             "to re-dispatch to");
  }

  for (WorkerStats& w : result.workers) {
    if (w.finish_time == 0.0) w.finish_time = serial_end;
  }
  detail::finalize_run(result);
  return result;
}

}  // namespace

double RunResult::finish_time_cov() const {
  stats::OnlineSummary summary;
  for (const WorkerStats& w : workers) summary.add(w.finish_time);
  return summary.cov();
}

RunResult simulate_loop(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors, const sysmodel::AvailabilitySpec& availability,
                        const TechniqueFactory& factory, const SimConfig& config,
                        std::uint64_t seed) {
  detail::PreparedRun prepared =
      detail::prepare_run(application, processor_type, processors, availability, config, seed);

  const std::unique_ptr<dls::Technique> technique = factory(prepared.params);
  if (technique == nullptr) throw std::invalid_argument("simulate_loop: factory returned null");
  technique->reset();

  const std::vector<std::size_t> worker_types(processors, processor_type);
  const std::vector<double> mean_iter(processors, prepared.mean_iter);
  const std::vector<double> stddev_iter(processors, prepared.stddev_iter);
  return run_ideal_loop(application, config, prepared.input_factor, worker_types, mean_iter,
                        stddev_iter, prepared.workers, *technique, prepared.run_rng);
}

RunResult simulate_loop(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors, const sysmodel::AvailabilitySpec& availability,
                        dls::TechniqueId technique, const SimConfig& config, std::uint64_t seed) {
  return simulate_loop(
      application, processor_type, processors, availability,
      [technique](const dls::TechniqueParams& params) {
        return dls::make_technique(technique, params);
      },
      config, seed);
}

RunResult simulate_loop(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors, const sysmodel::AvailabilitySpec& availability,
                        dls::Technique& technique, const SimConfig& config, std::uint64_t seed) {
  return simulate_loop(
      application, processor_type, processors, availability,
      [&technique](const dls::TechniqueParams&) {
        return std::make_unique<ForwardingTechnique>(technique);
      },
      config, seed);
}

ReplicationSummary simulate_replicated(const workload::Application& application,
                                       std::size_t processor_type, std::size_t processors,
                                       const sysmodel::AvailabilitySpec& availability,
                                       dls::TechniqueId technique, const SimConfig& config,
                                       std::uint64_t seed, std::size_t replications,
                                       double deadline, std::size_t threads) {
  if (replications == 0) {
    throw std::invalid_argument("simulate_replicated: replications must be >= 1");
  }
  const util::SeedSequence seeds(seed);
  // Replications are embarrassingly parallel: each derives all randomness
  // from its own child seed, so the aggregation below is bit-identical for
  // any thread count.
  std::vector<double> samples(replications);
  std::vector<FaultStats> faults(replications);
  util::parallel_for_index(replications, threads, [&](std::size_t r) {
    const RunResult run = simulate_loop(application, processor_type, processors, availability,
                                        technique, config, seeds.child(r));
    samples[r] = run.makespan;
    faults[r] = run.faults;
  });
  stats::OnlineSummary makespans;
  std::size_t hits = 0;
  for (double makespan : samples) {
    makespans.add(makespan);
    if (makespan <= deadline) ++hits;
  }
  ReplicationSummary summary;
  summary.replications = replications;
  summary.mean_makespan = makespans.mean();
  summary.stddev_makespan = makespans.stddev();
  summary.min_makespan = makespans.min();
  summary.max_makespan = makespans.max();
  summary.deadline_hit_rate = static_cast<double>(hits) / static_cast<double>(replications);
  summary.mean_ci =
      stats::mean_interval(summary.mean_makespan, summary.stddev_makespan, replications);
  summary.hit_rate_ci = stats::wilson_interval(hits, replications);
  // Summed in replication order — independent of the thread count.
  for (const FaultStats& f : faults) accumulate_faults(summary.faults_total, f);
  summary.median_makespan = stats::percentile(std::move(samples), 0.5);
  return summary;
}

RunResult simulate_loop_mixed(const workload::Application& application,
                              const std::vector<std::size_t>& worker_types,
                              const sysmodel::AvailabilitySpec& availability,
                              dls::TechniqueId technique, const SimConfig& config,
                              std::uint64_t seed) {
  if (worker_types.empty()) {
    throw std::invalid_argument("simulate_loop_mixed: at least one worker required");
  }
  for (std::size_t type : worker_types) {
    if (type >= availability.type_count() || type >= application.type_count()) {
      throw std::invalid_argument("simulate_loop_mixed: unknown processor type");
    }
  }
  detail::validate_config(config);

  const std::size_t processors = worker_types.size();
  const util::SeedSequence seeds(seed);
  util::RngStream run_rng = seeds.stream(0);
  double input_factor = 1.0;
  if (config.input_factor_cov > 0.0) {
    input_factor = std::max(run_rng.normal(1.0, config.input_factor_cov), 0.1);
  }

  // Per-worker iteration statistics and availability processes, each from
  // ITS OWN type. (prepare_run assumes a homogeneous group; this path
  // builds the heterogeneous equivalent directly.)
  std::vector<double> mean_iter(processors, 0.0);
  std::vector<double> stddev_iter(processors, 0.0);
  std::vector<detail::Worker> group(processors);
  for (std::size_t w = 0; w < processors; ++w) {
    const std::size_t type = worker_types[w];
    mean_iter[w] = application.mean_iteration_time(type);
    stddev_iter[w] = mean_iter[w] * config.iteration_cov;
    group[w].rng = std::make_unique<util::RngStream>(seeds.child(100 + 2 * w));
    const pmf::Pmf& law = availability.of_type(type);
    switch (config.availability_mode) {
      case AvailabilityMode::kIidEpoch:
        group[w].availability = std::make_unique<sysmodel::IidEpochAvailability>(
            law, config.epoch_length, seeds.child(101 + 2 * w));
        break;
      case AvailabilityMode::kMarkovEpoch:
        group[w].availability = std::make_unique<sysmodel::MarkovEpochAvailability>(
            law, config.epoch_length, config.markov_persistence, seeds.child(101 + 2 * w));
        break;
      case AvailabilityMode::kConstantMean:
        group[w].availability =
            std::make_unique<sysmodel::ConstantAvailability>(law.expectation());
        break;
      case AvailabilityMode::kSampleOnce:
        group[w].availability = std::make_unique<sysmodel::ConstantAvailability>(
            law.sample_with(run_rng.uniform01()));
        break;
      case AvailabilityMode::kDiurnal: {
        const double mean = law.expectation();
        const double amplitude =
            std::min({config.diurnal_amplitude, mean - 1e-6, 1.0 - mean});
        const double phase = static_cast<double>(w) /
                             static_cast<double>(processors) * config.diurnal_period;
        group[w].availability = std::make_unique<sysmodel::DiurnalAvailability>(
            mean, std::max(amplitude, 0.0), config.diurnal_period, phase);
        break;
      }
    }
  }
  detail::validate_failures(config.failures, processors);
  for (const SimConfig::Failure& failure : config.failures) {
    detail::apply_failure(group[failure.worker], failure);
  }

  // The technique sees combined speed x availability weights: the rate of
  // worker w relative to the group (1/mean_iter scaled by observed
  // availability at t = 0, pre-crash for a worker already down at t = 0).
  dls::TechniqueParams params;
  params.workers = processors;
  params.total_iterations = std::max<std::int64_t>(1, application.parallel_iterations());
  double mean_iter_sum = 0.0;
  for (double m : mean_iter) mean_iter_sum += m;
  params.mean_iteration_time = mean_iter_sum / static_cast<double>(processors);
  params.stddev_iteration_time = params.mean_iteration_time * config.iteration_cov;
  params.scheduling_overhead = config.scheduling_overhead;
  params.weights.reserve(processors);
  for (std::size_t w = 0; w < processors; ++w) {
    const double avail0 = group[w].crashes() && group[w].crash_time <= 0.0
                              ? group[w].weight_at_zero
                              : group[w].availability->availability_at(0.0);
    params.weights.push_back(avail0 / mean_iter[w] * params.mean_iteration_time);
  }
  const std::unique_ptr<dls::Technique> tech = dls::make_technique(technique, params);
  tech->reset();

  return run_ideal_loop(application, config, input_factor, worker_types, mean_iter,
                        stddev_iter, group, *tech, run_rng);
}

TechniqueComparison compare_techniques(const workload::Application& application,
                                       std::size_t processor_type, std::size_t processors,
                                       const sysmodel::AvailabilitySpec& availability,
                                       dls::TechniqueId technique_a,
                                       dls::TechniqueId technique_b, const SimConfig& config,
                                       std::uint64_t seed, std::size_t replications,
                                       double level) {
  if (replications == 0) {
    throw std::invalid_argument("compare_techniques: replications must be >= 1");
  }
  const util::SeedSequence seeds(seed);
  std::vector<double> a(replications);
  std::vector<double> b(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    // Common random numbers: the SAME child seed drives both techniques, so
    // they face identical availability paths and iteration noise.
    const std::uint64_t child = seeds.child(r);
    a[r] = simulate_loop(application, processor_type, processors, availability, technique_a,
                         config, child)
               .makespan;
    b[r] = simulate_loop(application, processor_type, processors, availability, technique_b,
                         config, child)
               .makespan;
  }
  TechniqueComparison comparison;
  comparison.technique_a = technique_a;
  comparison.technique_b = technique_b;
  comparison.makespan_difference =
      stats::paired_median_comparison(a, b, level, 2000, seeds.child(1 << 20));
  comparison.median_a = stats::percentile(a, 0.5);
  comparison.median_b = stats::percentile(b, 0.5);
  return comparison;
}

}  // namespace cdsf::sim
