#include "sim/loop_executor.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>

#include "sim/engine.hpp"
#include "sim/sim_common.hpp"
#include "stats/distribution.hpp"
#include "stats/summary.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace cdsf::sim {

namespace {

/// Delegates every call to a caller-owned technique (for the Technique&
/// overload of simulate_loop).
class ForwardingTechnique final : public dls::Technique {
 public:
  explicit ForwardingTechnique(dls::Technique& inner) : inner_(&inner) {}
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] std::int64_t next_chunk(const dls::SchedulingContext& ctx) override {
    return inner_->next_chunk(ctx);
  }
  void record(const dls::ChunkResult& result) override { inner_->record(result); }
  [[nodiscard]] double estimated_iteration_time(std::size_t worker) const override {
    return inner_->estimated_iteration_time(worker);
  }
  void reset() override { inner_->reset(); }

 private:
  dls::Technique* inner_;
};

void accumulate_faults(FaultStats& total, const FaultStats& run) {
  total.workers_crashed += run.workers_crashed;
  total.workers_recovered += run.workers_recovered;
  total.chunks_lost += run.chunks_lost;
  total.iterations_reexecuted += run.iterations_reexecuted;
  total.wasted_work += run.wasted_work;
  total.detection_latency_total += run.detection_latency_total;
  total.max_detection_latency = std::max(total.max_detection_latency, run.max_detection_latency);
  total.false_suspicions += run.false_suspicions;
}


/// The idealized self-scheduling event loop shared by simulate_loop and
/// simulate_loop_mixed. `worker_types` / `mean_iter` / `stddev_iter` are
/// per-worker (constant vectors for a homogeneous group). Fault tolerance:
/// when crash-kind failures are configured, a chunk whose execution window
/// straddles its worker's crash is LOST — its iterations return to the
/// pool and are re-dispatched FIFO to idle survivors; record() is never
/// called for lost chunks, so adaptive weights see only real timings.
/// Crash detection is instantaneous here (the simulator observes the crash
/// event directly); the message-passing model in master_worker.cpp pays a
/// timeout-detection latency instead.
RunResult run_ideal_loop(const workload::Application& application, const SimConfig& config,
                         double input_factor, const std::vector<std::size_t>& worker_types,
                         const std::vector<double>& mean_iter,
                         const std::vector<double>& stddev_iter,
                         std::vector<detail::Worker>& workers, dls::Technique& technique,
                         util::RngStream& run_rng, std::uint64_t seed) {
  const std::size_t processors = workers.size();
  const bool crash_mode = detail::has_crash_failures(config);
  // Gray-failure machinery, structurally disarmed by default: with the
  // quarantine config unarmed and no kSilentCorrupt failure, no tracker
  // decision fires, no extra RNG stream is created, and no extra event is
  // scheduled — runs are bit-identical to the pre-quarantine executor.
  const bool quarantine_armed = config.quarantine.armed();
  const bool silent_corrupt = detail::has_silent_corrupt(config);

  RunResult result;
  result.workers.assign(processors, WorkerStats{});
  // Always-on flight recorder: bounded per-worker rings, merged into
  // result.flight by finalize_run. Recording never touches the RNG, the
  // trace, or the event list, so enabling it cannot perturb the run.
  obs::FlightRecorder flight(processors, config.flight.track_capacity,
                             config.flight.enabled && obs::flight_recording_enabled());
  for (const SimConfig::Failure& failure : config.failures) {
    // Master failures are MPI-only (this executor has no explicit
    // coordinator) and do not crash a worker; degrade and silent-corrupt
    // workers stay up.
    if (failure.kind == SimConfig::FailureKind::kDegrade ||
        failure.kind == SimConfig::FailureKind::kMasterCrashRestart ||
        failure.kind == SimConfig::FailureKind::kSilentCorrupt) {
      continue;
    }
    result.faults.workers_crashed += 1;
    if (failure.kind == SimConfig::FailureKind::kCrashRecover) {
      result.faults.workers_recovered += 1;
    }
  }

  // Serial iterations on the master (worker 0).
  double serial_end = 0.0;
  if (application.serial_iterations() > 0) {
    const double serial_work =
        input_factor * detail::sample_work(application.serial_iterations(), mean_iter[0],
                                           stddev_iter[0], run_rng);
    serial_end = workers[0].availability->finish_time(0.0, serial_work);
    if (!std::isfinite(serial_end)) {
      throw std::runtime_error(
          "simulate_loop: master crashed during the serial phase — the serial "
          "iterations have no fault tolerance (re-dispatch needs a live master)");
    }
  }
  result.serial_end = serial_end;
  result.makespan = serial_end;

  if (config.collect_trace) {
    for (std::size_t w = 0; w < processors; ++w) {
      if (!workers[w].crashes()) continue;
      result.events.push_back(
          {LifecycleEvent::Kind::kWorkerCrash, workers[w].crash_time, w, 0});
      if (std::isfinite(workers[w].recovery_time)) {
        result.events.push_back(
            {LifecycleEvent::Kind::kWorkerRecover, workers[w].recovery_time, w, 0});
      }
    }
  }

  Engine engine;
  detail::IterationPool pool(application.parallel_iterations());
  std::vector<char> dead(processors, 0);
  std::vector<char> idle(processors, 0);
  const bool speculate = config.speculation.enabled;
  const std::int64_t total_parallel = application.parallel_iterations();

  // One dispatched copy of a task's range. A task is the unit of
  // exactly-once execution: normally just the primary copy; when the
  // speculation layer flags the primary as a straggler, a backup copy runs
  // the SAME range on another worker and the first finisher wins.
  struct Copy {
    std::size_t worker = 0;
    bool live = false;  // running; completion event pending
    bool lost = false;  // straddles its worker's crash; reclaim pending
    double dispatch_time = 0.0;
    double start_time = 0.0;
    Engine::EventId completion = Engine::kNoEvent;
    std::ptrdiff_t trace_index = -1;  // set only with collect_trace
  };
  struct Task {
    detail::IterationPool::Range range;
    Copy primary;
    Copy backup;
    bool has_backup = false;
    bool flagged = false;  // straggler-flagged (at most once)
    bool done = false;     // a winner finished, or the range went back
    bool probe = false;    // canary chunk sent to a quarantined worker
  };
  std::vector<std::unique_ptr<Task>> tasks;         // stable addresses
  std::vector<Task*> running(processors, nullptr);  // copy hosted on worker w
  std::deque<Task*> stragglers;  // flagged tasks awaiting an idle worker
  std::int64_t completed_iterations = 0;
  // Live straggler threshold in sigmas; the deadline-risk monitor tightens
  // it (affects chunks dispatched AFTER the escalation).
  double quantile = config.speculation.quantile;

  // Gray-failure state. The audit/corruption streams are fanned out of the
  // run seed on their own child indices (23 / 29 — disjoint from the
  // run_rng, worker, availability, channel, and burst streams), created
  // only when armed so disarmed runs never consume them.
  detail::HealthTracker health(config.quarantine, processors);
  const util::SeedSequence gray_seeds(seed);
  std::unique_ptr<util::RngStream> audit_rng;
  if (quarantine_armed && config.quarantine.audit_rate > 0.0) {
    audit_rng = std::make_unique<util::RngStream>(gray_seeds.child(23));
  }
  std::unique_ptr<util::RngStream> corrupt_rng;
  std::vector<const SimConfig::Failure*> corrupt_failure(processors, nullptr);
  if (silent_corrupt) {
    corrupt_rng = std::make_unique<util::RngStream>(gray_seeds.child(29));
    for (std::size_t w = 0; w < processors; ++w) {
      corrupt_failure[w] = detail::silent_corrupt_failure(config, w);
    }
  }
  // A-priori t = 0 weights for the slowdown baseline (pre-crash value for
  // a worker already down at t = 0, matching the technique's weight seed).
  std::vector<double> weight0(processors, 1.0);
  if (quarantine_armed) {
    for (std::size_t w = 0; w < processors; ++w) {
      weight0[w] = workers[w].crashes() && workers[w].crash_time <= 0.0
                       ? workers[w].weight_at_zero
                       : workers[w].availability->availability_at(0.0);
    }
  }
  // One queued audit: re-run `range` on a worker other than `origin` and
  // compare. `original_wrong` is the ground truth carried from the
  // original completion's wrongness draw.
  struct AuditJob {
    detail::IterationPool::Range range;
    std::size_t origin = 0;
    bool original_wrong = false;
  };
  std::deque<AuditJob> audits_waiting;
  std::vector<char> auditing(processors, 0);  // worker busy on an audit replica

  std::function<void(std::size_t)> request;

  // Stops a live losing copy: its completion event dies, the sunk work is
  // charged to cancelled_work, and its worker is free immediately.
  auto cancel_copy = [&](Task& task, Copy& copy, bool is_backup) {
    const double now = engine.now();
    engine.cancel(copy.completion);
    copy.live = false;
    double sunk = std::min(config.scheduling_overhead, std::max(0.0, now - copy.dispatch_time));
    if (copy.start_time < now) {
      sunk += workers[copy.worker].availability->work_delivered(copy.start_time, now);
    }
    result.speculation.cancelled_work += sunk;
    if (is_backup) {
      result.speculation.backups_cancelled += 1;
    } else {
      result.speculation.primaries_cancelled += 1;
    }
    flight.record(obs::FlightEventKind::kChunkCancelled, now,
                  static_cast<std::uint32_t>(copy.worker), task.range.first,
                  task.range.count);
    if (config.collect_trace) {
      result.events.push_back(
          {LifecycleEvent::Kind::kChunkCancelled, now, copy.worker, task.range.count});
      if (copy.trace_index >= 0) {
        ChunkTraceEntry& entry = result.trace[static_cast<std::size_t>(copy.trace_index)];
        entry.cancelled = true;
        entry.end_time = now;
      }
    }
    running[copy.worker] = nullptr;
    request(copy.worker);
  };

  // Re-executes an accepted chunk on independent worker v and compares.
  // The replica's timing feeds neither record() nor the coverage
  // accounting (its trace entry is flagged `audit`); only the comparison
  // verdict matters. A mismatch marks the ORIGINATING worker suspect.
  auto launch_audit = [&](std::size_t v, AuditJob job) {
    const double dispatch_time = engine.now();
    const double start_time = dispatch_time + config.scheduling_overhead;
    const double work =
        input_factor * detail::chunk_work(application, worker_types[v], mean_iter[v],
                                          stddev_iter[v], config.iteration_cov,
                                          job.range.first, job.range.count, *workers[v].rng);
    const double end_time = workers[v].availability->finish_time(start_time, work);
    const bool lost =
        dispatch_time < workers[v].crash_time && end_time > workers[v].crash_time;
    health.stats.audits_launched += 1;
    flight.record(obs::FlightEventKind::kAuditLaunched, dispatch_time,
                  static_cast<std::uint32_t>(v), job.range.first, job.range.count);
    if (config.collect_trace) {
      result.events.push_back(
          {LifecycleEvent::Kind::kAuditLaunched, dispatch_time, v, job.range.count});
      result.trace.push_back({v, job.range.count, dispatch_time, start_time, end_time, lost,
                              job.range.first, false, false, false, true, false});
    }
    CDSF_LOG_TRACE << "worker " << v << " audit " << job.range.count << " of worker "
                   << job.origin << " [" << dispatch_time << ", " << end_time << "]"
                   << (lost ? " LOST" : "");
    if (lost) {
      // The auditing worker crashes mid-replica; the verdict never lands.
      health.stats.audits_abandoned += 1;
      return;
    }
    auditing[v] = 1;
    engine.schedule_at(end_time, [&, v, job, start_time, end_time] {
      auditing[v] = 0;
      WorkerStats& stats = result.workers[v];
      stats.busy_time += end_time - start_time;
      stats.overhead_time += config.scheduling_overhead;
      stats.finish_time = std::max(stats.finish_time, end_time);
      // The replica itself can be silently wrong when ITS worker is gray —
      // either wrongness makes the pair disagree.
      bool replica_wrong = false;
      const SimConfig::Failure* f = corrupt_failure[v];
      if (f != nullptr && end_time > f->time &&
          corrupt_rng->uniform01() < f->corrupt_probability) {
        replica_wrong = true;
      }
      if (job.original_wrong || replica_wrong) {
        health.stats.audit_mismatches += 1;
        flight.record(obs::FlightEventKind::kAuditMismatch, end_time,
                      static_cast<std::uint32_t>(job.origin), job.range.first,
                      job.range.count);
        if (config.collect_trace) {
          result.events.push_back({LifecycleEvent::Kind::kAuditMismatch, end_time,
                                   job.origin, job.range.count});
        }
        if (health.observe_mismatch(job.origin)) {
          health.quarantine(job.origin, end_time, /*audit_trip=*/true);
          flight.record(obs::FlightEventKind::kWorkerQuarantined, end_time,
                        static_cast<std::uint32_t>(job.origin), 1);
          if (config.collect_trace) {
            result.events.push_back(
                {LifecycleEvent::Kind::kWorkerQuarantined, end_time, job.origin, 1});
          }
        }
      } else {
        health.stats.audits_matched += 1;
      }
      request(v);
    });
  };

  // Winning copy finished: account it, feed the technique exactly once,
  // cancel the losing copy if one is still running.
  auto complete_copy = [&](Task* task, bool is_backup) {
    Copy& winner = is_backup ? task->backup : task->primary;
    const std::size_t w = winner.worker;
    const double end_time = engine.now();
    winner.live = false;
    running[w] = nullptr;
    task->done = true;
    WorkerStats& stats = result.workers[w];
    stats.chunks += 1;
    stats.iterations += task->range.count;
    stats.busy_time += end_time - winner.start_time;
    stats.overhead_time += config.scheduling_overhead;
    result.total_chunks += 1;
    completed_iterations += task->range.count;
    flight.record(obs::FlightEventKind::kChunkAccepted, end_time,
                  static_cast<std::uint32_t>(w), task->range.first, task->range.count);
    if (is_backup) {
      result.speculation.backups_won += 1;
      flight.record(obs::FlightEventKind::kBackupWon, end_time,
                    static_cast<std::uint32_t>(w), task->range.first, task->range.count);
    }
    technique.record(dls::ChunkResult{w, task->range.count, end_time - winner.start_time,
                                      end_time - winner.dispatch_time});
    stats.finish_time = end_time;
    result.makespan = std::max(result.makespan, end_time);
    // Ground truth for the audit layer: a gray worker's accepted result is
    // silently wrong with its failure's probability (drawn only for gray
    // workers past onset, so clean runs consume no stream).
    bool wrong = false;
    {
      const SimConfig::Failure* f = corrupt_failure[w];
      if (f != nullptr && end_time > f->time &&
          corrupt_rng->uniform01() < f->corrupt_probability) {
        wrong = true;
        health.stats.corrupt_chunks_recorded += 1;
      }
    }
    if (quarantine_armed) {
      const double expected = detail::HealthTracker::expected_elapsed(
          config.scheduling_overhead,
          input_factor * mean_iter[w] * static_cast<double>(task->range.count), weight0[w]);
      const double slowdown = (end_time - winner.dispatch_time) / expected;
      if (task->probe) {
        if (health.observe_probe(w, slowdown)) {
          health.reinstate(w, end_time);
          flight.record(obs::FlightEventKind::kWorkerRestored, end_time,
                        static_cast<std::uint32_t>(w));
          if (config.collect_trace) {
            result.events.push_back(
                {LifecycleEvent::Kind::kWorkerRestored, end_time, w, 0});
          }
        }
      } else {
        if (health.observe(w, slowdown)) {
          health.quarantine(w, end_time, /*audit_trip=*/false);
          flight.record(obs::FlightEventKind::kWorkerQuarantined, end_time,
                        static_cast<std::uint32_t>(w), 0);
          if (config.collect_trace) {
            result.events.push_back(
                {LifecycleEvent::Kind::kWorkerQuarantined, end_time, w, 0});
          }
        }
        if (audit_rng != nullptr && audit_rng->uniform01() < config.quarantine.audit_rate) {
          audits_waiting.push_back(AuditJob{task->range, w, wrong});
          // Wake one idle eligible worker for the replica (the originator
          // cannot audit itself; quarantined workers are never idle[]).
          for (std::size_t v = 0; v < processors; ++v) {
            if (idle[v] && !dead[v] && v != w) {
              idle[v] = 0;
              request(v);
              break;
            }
          }
        }
      }
    }
    Copy& loser = is_backup ? task->primary : task->backup;
    if (task->has_backup && loser.live) cancel_copy(*task, loser, !is_backup);
    request(w);
  };

  // Runs a straggler task's range a second time on idle worker v.
  auto launch_backup = [&](std::size_t v, Task* task) {
    const detail::IterationPool::Range range = task->range;
    const double dispatch_time = engine.now();
    const double start_time = dispatch_time + config.scheduling_overhead;
    const double work =
        input_factor * detail::chunk_work(application, worker_types[v], mean_iter[v],
                                          stddev_iter[v], config.iteration_cov, range.first,
                                          range.count, *workers[v].rng);
    const double end_time = workers[v].availability->finish_time(start_time, work);
    const bool lost =
        dispatch_time < workers[v].crash_time && end_time > workers[v].crash_time;
    task->has_backup = true;
    task->backup = Copy{v, !lost, lost, dispatch_time, start_time, Engine::kNoEvent, -1};
    running[v] = task;
    result.speculation.backups_launched += 1;
    flight.record(obs::FlightEventKind::kBackupLaunched, dispatch_time,
                  static_cast<std::uint32_t>(v), range.first, range.count);
    if (config.collect_trace) {
      result.events.push_back(
          {LifecycleEvent::Kind::kChunkBackup, dispatch_time, v, range.count});
      task->backup.trace_index = static_cast<std::ptrdiff_t>(result.trace.size());
      result.trace.push_back(
          {v, range.count, dispatch_time, start_time, end_time, lost, range.first, true, false});
    }
    CDSF_LOG_TRACE << "worker " << v << " backup " << range.count << " [" << dispatch_time
                   << ", " << end_time << "]" << (lost ? " LOST" : "");
    if (lost) return;  // the crash event at crash_time reclaims it
    task->backup.completion =
        engine.schedule_cancellable_at(end_time, [&, task] { complete_copy(task, true); });
  };

  // Dispatches a granted range onto worker w as a fresh primary copy.
  // Shared by the normal request path and the canary-probe path (a canary
  // is an ordinary chunk of real pool work, flagged `probe` and exempt
  // from straggler speculation — the quarantined worker is deliberately
  // running it, so a backup would defeat the measurement).
  auto launch_task = [&](std::size_t w, detail::IterationPool::Range range, bool is_probe) {
    const double dispatch_time = engine.now();
    const double start_time = dispatch_time + config.scheduling_overhead;
    const double work =
        input_factor * detail::chunk_work(application, worker_types[w], mean_iter[w],
                                          stddev_iter[w], config.iteration_cov, range.first,
                                          range.count, *workers[w].rng);
    const double end_time = workers[w].availability->finish_time(start_time, work);
    // Lost iff the execution window straddles the crash (a permanent crash
    // makes end_time +infinity, which also lands here). Dead workers never
    // request, so dispatch_time < crash_time holds for every pre-crash
    // chunk and is false for every post-recovery one.
    const bool lost =
        dispatch_time < workers[w].crash_time && end_time > workers[w].crash_time;

    tasks.push_back(std::make_unique<Task>());
    Task* task = tasks.back().get();
    task->range = range;
    task->probe = is_probe;
    task->primary = Copy{w, !lost, lost, dispatch_time, start_time, Engine::kNoEvent, -1};
    running[w] = task;
    flight.record(obs::FlightEventKind::kChunkDispatched, dispatch_time,
                  static_cast<std::uint32_t>(w), range.first, range.count);
    if (config.collect_trace) {
      task->primary.trace_index = static_cast<std::ptrdiff_t>(result.trace.size());
      result.trace.push_back({w, range.count, dispatch_time, start_time, end_time, lost,
                              range.first, false, false, false, false, is_probe});
    }
    CDSF_LOG_TRACE << "worker " << w << (is_probe ? " canary " : " chunk ") << range.count
                   << " [" << dispatch_time << ", " << end_time << "]"
                   << (lost ? " LOST" : "");

    if (speculate && !is_probe) {
      // Expected compute time: the technique's measured wall-clock estimate
      // when it has one (AWF/AF — availability-aware), else the a-priori
      // dedicated-time profile. A degraded-but-alive worker blows through
      // mu + quantile * sigma without ever tripping the crash detector.
      double mu_it = technique.estimated_iteration_time(w);
      if (!(mu_it > 0.0)) mu_it = input_factor * mean_iter[w];
      const double count = static_cast<double>(range.count);
      const double threshold =
          std::max(config.speculation.min_elapsed,
                   mu_it * count + quantile * input_factor * stddev_iter[w] * std::sqrt(count));
      engine.schedule_at(start_time + threshold, [&, task, w] {
        if (task->done || task->flagged || task->has_backup) return;
        task->flagged = true;
        result.speculation.stragglers_flagged += 1;
        flight.record(obs::FlightEventKind::kStragglerFlagged, engine.now(),
                      static_cast<std::uint32_t>(w), task->range.first,
                      task->range.count);
        if (config.collect_trace) {
          result.events.push_back(
              {LifecycleEvent::Kind::kChunkStraggler, engine.now(), w, task->range.count});
        }
        for (std::size_t v = 0; v < processors; ++v) {
          if (idle[v] && !dead[v]) {
            idle[v] = 0;
            launch_backup(v, task);
            return;
          }
        }
        stragglers.push_back(task);  // next idle worker picks it up
      });
    }
    if (lost) return;  // never completes; the crash event at crash_time reclaims it
    task->primary.completion =
        engine.schedule_cancellable_at(end_time, [&, task] { complete_copy(task, false); });
  };

  // Self-scheduling protocol: an idle worker requests a chunk; the chunk
  // completion event records feedback and triggers the next request. Fresh
  // work always outranks speculation — backups launch only when the pool is
  // empty (an idle worker exists only when nothing is undispatched) — and
  // audits run last of all (pure validation, never ahead of real work).
  request = [&](std::size_t w) {
    WorkerStats& stats = result.workers[w];
    if (dead[w]) return;
    if (quarantine_armed && health.quarantined(w)) {
      // Drained: no pool work, no backups, no audits. Canary probes arrive
      // through the probe timer. Deliberately NOT marked idle[], so the
      // give-back / straggler / audit wake scans skip this worker.
      stats.finish_time = std::max(stats.finish_time, engine.now());
      return;
    }
    const std::int64_t pending = pool.pending();
    if (pending <= 0) {
      if (speculate) {
        while (!stragglers.empty() && stragglers.front()->done) stragglers.pop_front();
        if (!stragglers.empty()) {
          Task* task = stragglers.front();
          stragglers.pop_front();
          launch_backup(w, task);
          return;
        }
      }
      if (quarantine_armed && !audits_waiting.empty()) {
        for (auto it = audits_waiting.begin(); it != audits_waiting.end(); ++it) {
          if (it->origin == w) continue;  // a worker never audits itself
          const AuditJob job = *it;
          audits_waiting.erase(it);
          launch_audit(w, job);
          return;
        }
      }
      // Nothing undispatched NOW — but a crash may still return work, so
      // stay wakeable instead of retiring.
      idle[w] = 1;
      stats.finish_time = std::max(stats.finish_time, engine.now());
      return;
    }
    std::int64_t chunk = technique.next_chunk(dls::SchedulingContext{pending, w, engine.now()});
    if (chunk <= 0) {
      if (!crash_mode) {
        // Technique has nothing (ever) for this worker (STATIC share spent).
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }
      // Fault-tolerant fallback: the technique considers its plan spent
      // (STATIC after a crash returned iterations to the pool), yet work is
      // pending — drain it in equal shares so every run completes.
      std::size_t alive = 0;
      for (std::size_t v = 0; v < processors; ++v) alive += dead[v] ? 0u : 1u;
      const auto alive64 = static_cast<std::int64_t>(alive);
      chunk = (pending + alive64 - 1) / alive64;
    }
    const detail::IterationPool::Range range = pool.take(chunk);
    if (range.count <= 0) {
      idle[w] = 1;
      stats.finish_time = std::max(stats.finish_time, engine.now());
      return;
    }
    launch_task(w, range, /*is_probe=*/false);
  };

  // One canary: real pool work, technique-sized, flagged `probe` so its
  // completion feeds the recovery streak instead of the fail-slow EWMA.
  auto launch_canary = [&](std::size_t w) {
    const std::int64_t pending = pool.pending();
    if (pending <= 0) return;  // nothing left to probe with; keep waiting
    std::int64_t chunk = technique.next_chunk(dls::SchedulingContext{pending, w, engine.now()});
    if (chunk <= 0) chunk = 1;  // plan spent; a single iteration still probes
    const detail::IterationPool::Range range = pool.take(chunk);
    if (range.count <= 0) return;
    health.stats.probes_launched += 1;
    flight.record(obs::FlightEventKind::kCanaryProbe, engine.now(),
                  static_cast<std::uint32_t>(w), range.first, range.count);
    if (config.collect_trace) {
      result.events.push_back(
          {LifecycleEvent::Kind::kQuarantineProbe, engine.now(), w, range.count});
    }
    launch_task(w, range, /*is_probe=*/true);
  };

  if (application.parallel_iterations() > 0) {
    // Crash lifecycle events FIRST so that, on a timestamp tie, a worker is
    // marked dead before any request or completion at the same instant.
    for (std::size_t w = 0; w < processors; ++w) {
      if (!workers[w].crashes()) continue;
      engine.schedule_at(workers[w].crash_time, [&, w] {
        dead[w] = 1;
        flight.record(obs::FlightEventKind::kWorkerCrashed, engine.now(),
                      static_cast<std::uint32_t>(w));
        Task* task = running[w];
        if (task == nullptr) return;
        const bool is_backup = task->has_backup && task->backup.worker == w;
        Copy& copy = is_backup ? task->backup : task->primary;
        if (!copy.lost) return;  // completes exactly at crash time; allowed
        running[w] = nullptr;
        copy.lost = false;
        result.faults.chunks_lost += 1;
        flight.record(obs::FlightEventKind::kChunkLost, engine.now(),
                      static_cast<std::uint32_t>(w), task->range.first,
                      task->range.count);
        if (config.collect_trace) {
          result.events.push_back(
              {LifecycleEvent::Kind::kChunkLost, engine.now(), w, task->range.count});
        }
        double wasted =
            std::min(config.scheduling_overhead, std::max(0.0, engine.now() - copy.dispatch_time));
        if (copy.start_time < engine.now()) {
          wasted += workers[w].availability->work_delivered(copy.start_time, engine.now());
        }
        result.faults.wasted_work += wasted;
        if (is_backup) result.speculation.backups_lost += 1;
        // Exactly-once: the range returns to the pool ONLY when no other
        // copy of the task can still deliver it (the winner already did, or
        // a live/pending-reclaim sibling copy covers it).
        const Copy& other = is_backup ? task->primary : task->backup;
        if (task->done || (task->has_backup && (other.live || other.lost))) return;
        task->done = true;
        result.faults.iterations_reexecuted += task->range.count;
        pool.give_back(task->range);
        // Wake idle survivors for the returned iterations.
        for (std::size_t v = 0; v < processors; ++v) {
          if (!dead[v] && idle[v]) {
            idle[v] = 0;
            request(v);
          }
        }
      });
      if (std::isfinite(workers[w].recovery_time) && workers[w].recovery_time > serial_end) {
        engine.schedule_at(workers[w].recovery_time, [&, w] {
          dead[w] = 0;
          flight.record(obs::FlightEventKind::kWorkerRecovered, engine.now(),
                        static_cast<std::uint32_t>(w));
          request(w);
        });
      }
    }
    // Deadline-risk monitor: every check_interval, project the makespan
    // from the realized completion rate and escalate the straggler quantile
    // while Pr(makespan <= deadline) sits under the floor. Self-terminating
    // (it must stop rescheduling for the event queue to drain). The timer
    // closures live in this scope and reschedule themselves by reference —
    // a shared_ptr-owned std::function capturing its own owner would leak.
    std::function<void()> risk_check;
    std::function<void()> probe_tick;
    if (config.deadline_risk.enabled) {
      const double deadline = config.deadline_risk.deadline;
      risk_check = [&, deadline] {
        if (completed_iterations >= total_parallel) return;
        bool rescuable = false;
        for (std::size_t v = 0; v < processors && !rescuable; ++v) {
          rescuable = !dead[v] || (std::isfinite(workers[v].recovery_time) &&
                                   workers[v].recovery_time > engine.now());
        }
        if (!rescuable) return;  // stranded; the post-run check reports it
        const double elapsed = engine.now() - serial_end;
        if (completed_iterations > 0 && elapsed > 0.0) {
          const double rate = static_cast<double>(completed_iterations) / elapsed;
          const double remaining =
              static_cast<double>(total_parallel - completed_iterations);
          const double projected = engine.now() + remaining / rate;
          // CLT over the remaining iid iterations at the realized rate.
          const double sigma =
              std::max(1e-12, std::sqrt(remaining) * config.iteration_cov / rate);
          const double p = stats::standard_normal_cdf((deadline - projected) / sigma);
          if (p < config.deadline_risk.risk_floor &&
              quantile > config.speculation.min_quantile) {
            quantile = std::max(config.speculation.min_quantile,
                                quantile * config.speculation.escalation_factor);
            result.speculation.risk_escalations += 1;
            flight.record(obs::FlightEventKind::kRiskEscalated, engine.now(),
                          obs::kFlightMasterTrack,
                          static_cast<std::int64_t>(result.speculation.risk_escalations));
            if (config.collect_trace) {
              result.events.push_back(
                  {LifecycleEvent::Kind::kRiskEscalated, engine.now(), 0,
                   static_cast<std::int64_t>(result.speculation.risk_escalations)});
            }
          }
        }
        engine.schedule_after(config.deadline_risk.check_interval, risk_check);
      };
      engine.schedule_at(serial_end + config.deadline_risk.check_interval, risk_check);
    }
    // Canary-probe timer: every probe_interval, each quarantined worker
    // that is not already busy receives one chunk of real pool work to
    // measure recovery. Self-terminating like the deadline-risk monitor
    // (and created only when the gray machinery is armed, so disarmed
    // runs schedule nothing).
    if (quarantine_armed) {
      probe_tick = [&] {
        if (completed_iterations >= total_parallel) return;
        bool rescuable = false;
        for (std::size_t v = 0; v < processors && !rescuable; ++v) {
          rescuable = !dead[v] || (std::isfinite(workers[v].recovery_time) &&
                                   workers[v].recovery_time > engine.now());
        }
        if (!rescuable) return;  // stranded; the post-run check reports it
        for (std::size_t w = 0; w < processors; ++w) {
          if (health.quarantined(w) && !dead[w] && running[w] == nullptr && !auditing[w]) {
            launch_canary(w);
          }
        }
        engine.schedule_after(config.quarantine.probe_interval, probe_tick);
      };
      engine.schedule_at(serial_end + config.quarantine.probe_interval, probe_tick);
    }
    // All workers become available for parallel work once the serial
    // portion completes on the master; workers already down then are
    // skipped (their recovery event, if any, revives them).
    engine.schedule_at(serial_end, [&] {
      for (std::size_t w = 0; w < processors; ++w) request(w);
    });
    engine.run();
  }

  if (crash_mode && pool.pending() > 0) {
    const std::string detail = std::to_string(pool.pending()) +
                               " iterations stranded by crashes with no surviving worker "
                               "to re-dispatch to";
    // finalize_run never runs for a stranded run, so the postmortem dumps
    // here, at the detection site.
    obs::FlightSink::global().maybe_dump(flight.finish(),
                                         obs::FlightAnomaly{"strand", detail, engine.now()});
    throw std::runtime_error("simulate_loop: " + detail);
  }

  // Gray-failure epilogue: audits still queued when the run drained were
  // never dispatched, so they are dropped without touching the counters
  // (audits_abandoned tracks LAUNCHED replicas only — keeping
  // launched == matched + mismatches + abandoned exact). Open quarantine
  // windows close at the end of simulated activity (all zero when
  // disarmed).
  audits_waiting.clear();
  health.finish(std::max(result.makespan, engine.now()));
  result.quarantine = health.stats;

  for (WorkerStats& w : result.workers) {
    if (w.finish_time == 0.0) w.finish_time = serial_end;
  }
  detail::finalize_run(result, config, flight);
  return result;
}

}  // namespace

double RunResult::finish_time_cov() const {
  stats::OnlineSummary summary;
  for (const WorkerStats& w : workers) summary.add(w.finish_time);
  return summary.cov();
}

RunResult simulate_loop(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors, const sysmodel::AvailabilitySpec& availability,
                        const TechniqueFactory& factory, const SimConfig& config,
                        std::uint64_t seed) {
  detail::PreparedRun prepared =
      detail::prepare_run(application, processor_type, processors, availability, config, seed);

  const std::unique_ptr<dls::Technique> technique = factory(prepared.params);
  if (technique == nullptr) throw std::invalid_argument("simulate_loop: factory returned null");
  technique->reset();

  const std::vector<std::size_t> worker_types(processors, processor_type);
  const std::vector<double> mean_iter(processors, prepared.mean_iter);
  const std::vector<double> stddev_iter(processors, prepared.stddev_iter);
  return run_ideal_loop(application, config, prepared.input_factor, worker_types, mean_iter,
                        stddev_iter, prepared.workers, *technique, prepared.run_rng, seed);
}

RunResult simulate_loop(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors, const sysmodel::AvailabilitySpec& availability,
                        dls::TechniqueId technique, const SimConfig& config, std::uint64_t seed) {
  return simulate_loop(
      application, processor_type, processors, availability,
      [technique](const dls::TechniqueParams& params) {
        return dls::make_technique(technique, params);
      },
      config, seed);
}

RunResult simulate_loop(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors, const sysmodel::AvailabilitySpec& availability,
                        dls::Technique& technique, const SimConfig& config, std::uint64_t seed) {
  return simulate_loop(
      application, processor_type, processors, availability,
      [&technique](const dls::TechniqueParams&) {
        return std::make_unique<ForwardingTechnique>(technique);
      },
      config, seed);
}

ReplicationSummary simulate_replicated(const workload::Application& application,
                                       std::size_t processor_type, std::size_t processors,
                                       const sysmodel::AvailabilitySpec& availability,
                                       dls::TechniqueId technique, const SimConfig& config,
                                       std::uint64_t seed, std::size_t replications,
                                       double deadline, std::size_t threads) {
  if (replications == 0) {
    throw std::invalid_argument("simulate_replicated: replications must be >= 1");
  }
  const util::SeedSequence seeds(seed);
  // Per-run deadline for the flight recorder's deadline-miss postmortem
  // trigger (mirrors the deadline_risk fill in Framework::run_stage_two).
  SimConfig run_config = config;
  if (run_config.flight.deadline == 0.0 && deadline > 0.0 && std::isfinite(deadline)) {
    run_config.flight.deadline = deadline;
  }
  // Replications are embarrassingly parallel: each derives all randomness
  // from its own child seed, so the aggregation below is bit-identical for
  // any thread count.
  std::vector<double> samples(replications);
  std::vector<FaultStats> faults(replications);
  std::vector<SpeculationStats> speculation(replications);
  std::vector<QuarantineStats> quarantine(replications);
  util::parallel_for_index(replications, threads, [&](std::size_t r) {
    // Monte-Carlo checkpoint boundary: a cancelled token aborts the sweep
    // within one replication (the exception propagates out of
    // parallel_for_index after all threads join).
    util::throw_if_cancelled(run_config.cancel);
    const RunResult run = simulate_loop(application, processor_type, processors, availability,
                                        technique, run_config, seeds.child(r));
    samples[r] = run.makespan;
    faults[r] = run.faults;
    speculation[r] = run.speculation;
    quarantine[r] = run.quarantine;
  });
  ReplicationSummary summary;
  // Summed in replication order — independent of the thread count. The
  // idealized executor never touches the channel or the checkpoint log, so
  // channel_total / checkpoint_total stay zero here (simulate_replicated_mpi
  // fills them).
  for (const FaultStats& f : faults) accumulate_faults(summary.faults_total, f);
  for (const SpeculationStats& s : speculation) summary.speculation_total.accumulate(s);
  for (const QuarantineStats& q : quarantine) summary.quarantine_total.accumulate(q);
  detail::summarize_makespans(summary, std::move(samples), deadline);
  return summary;
}

RunResult simulate_loop_mixed(const workload::Application& application,
                              const std::vector<std::size_t>& worker_types,
                              const sysmodel::AvailabilitySpec& availability,
                              dls::TechniqueId technique, const SimConfig& config,
                              std::uint64_t seed) {
  if (worker_types.empty()) {
    throw std::invalid_argument("simulate_loop_mixed: at least one worker required");
  }
  for (std::size_t type : worker_types) {
    if (type >= availability.type_count() || type >= application.type_count()) {
      throw std::invalid_argument("simulate_loop_mixed: unknown processor type");
    }
  }
  detail::validate_config(config);

  const std::size_t processors = worker_types.size();
  const util::SeedSequence seeds(seed);
  util::RngStream run_rng = seeds.stream(0);
  double input_factor = 1.0;
  if (config.input_factor_cov > 0.0) {
    input_factor = std::max(run_rng.normal(1.0, config.input_factor_cov), 0.1);
  }

  // Per-worker iteration statistics and availability processes, each from
  // ITS OWN type. (prepare_run assumes a homogeneous group; this path
  // builds the heterogeneous equivalent directly.)
  std::vector<double> mean_iter(processors, 0.0);
  std::vector<double> stddev_iter(processors, 0.0);
  std::vector<detail::Worker> group(processors);
  for (std::size_t w = 0; w < processors; ++w) {
    const std::size_t type = worker_types[w];
    mean_iter[w] = application.mean_iteration_time(type);
    stddev_iter[w] = mean_iter[w] * config.iteration_cov;
    group[w].rng = std::make_unique<util::RngStream>(seeds.child(100 + 2 * w));
    const pmf::Pmf& law = availability.of_type(type);
    switch (config.availability_mode) {
      case AvailabilityMode::kIidEpoch:
        group[w].availability = std::make_unique<sysmodel::IidEpochAvailability>(
            law, config.epoch_length, seeds.child(101 + 2 * w));
        break;
      case AvailabilityMode::kMarkovEpoch:
        group[w].availability = std::make_unique<sysmodel::MarkovEpochAvailability>(
            law, config.epoch_length, config.markov_persistence, seeds.child(101 + 2 * w));
        break;
      case AvailabilityMode::kConstantMean:
        group[w].availability =
            std::make_unique<sysmodel::ConstantAvailability>(law.expectation());
        break;
      case AvailabilityMode::kSampleOnce:
        group[w].availability = std::make_unique<sysmodel::ConstantAvailability>(
            law.sample_with(run_rng.uniform01()));
        break;
      case AvailabilityMode::kDiurnal: {
        const double mean = law.expectation();
        const double amplitude =
            std::min({config.diurnal_amplitude, mean - 1e-6, 1.0 - mean});
        const double phase = static_cast<double>(w) /
                             static_cast<double>(processors) * config.diurnal_period;
        group[w].availability = std::make_unique<sysmodel::DiurnalAvailability>(
            mean, std::max(amplitude, 0.0), config.diurnal_period, phase);
        break;
      }
    }
  }
  detail::validate_failures(config.failures, processors);
  for (const SimConfig::Failure& failure : config.failures) {
    detail::apply_failure(group[failure.worker], failure);
  }

  // The technique sees combined speed x availability weights: the rate of
  // worker w relative to the group (1/mean_iter scaled by observed
  // availability at t = 0, pre-crash for a worker already down at t = 0).
  dls::TechniqueParams params;
  params.workers = processors;
  params.total_iterations = std::max<std::int64_t>(1, application.parallel_iterations());
  double mean_iter_sum = 0.0;
  for (double m : mean_iter) mean_iter_sum += m;
  params.mean_iteration_time = mean_iter_sum / static_cast<double>(processors);
  params.stddev_iteration_time = params.mean_iteration_time * config.iteration_cov;
  params.scheduling_overhead = config.scheduling_overhead;
  params.weights.reserve(processors);
  for (std::size_t w = 0; w < processors; ++w) {
    const double avail0 = group[w].crashes() && group[w].crash_time <= 0.0
                              ? group[w].weight_at_zero
                              : group[w].availability->availability_at(0.0);
    params.weights.push_back(avail0 / mean_iter[w] * params.mean_iteration_time);
  }
  const std::unique_ptr<dls::Technique> tech = dls::make_technique(technique, params);
  tech->reset();

  return run_ideal_loop(application, config, input_factor, worker_types, mean_iter,
                        stddev_iter, group, *tech, run_rng, seed);
}

TechniqueComparison compare_techniques(const workload::Application& application,
                                       std::size_t processor_type, std::size_t processors,
                                       const sysmodel::AvailabilitySpec& availability,
                                       dls::TechniqueId technique_a,
                                       dls::TechniqueId technique_b, const SimConfig& config,
                                       std::uint64_t seed, std::size_t replications,
                                       double level) {
  if (replications == 0) {
    throw std::invalid_argument("compare_techniques: replications must be >= 1");
  }
  const util::SeedSequence seeds(seed);
  std::vector<double> a(replications);
  std::vector<double> b(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    // Common random numbers: the SAME child seed drives both techniques, so
    // they face identical availability paths and iteration noise.
    const std::uint64_t child = seeds.child(r);
    a[r] = simulate_loop(application, processor_type, processors, availability, technique_a,
                         config, child)
               .makespan;
    b[r] = simulate_loop(application, processor_type, processors, availability, technique_b,
                         config, child)
               .makespan;
  }
  TechniqueComparison comparison;
  comparison.technique_a = technique_a;
  comparison.technique_b = technique_b;
  comparison.makespan_difference =
      stats::paired_median_comparison(a, b, level, 2000, seeds.child(1 << 20));
  comparison.median_a = stats::percentile(a, 0.5);
  comparison.median_b = stats::percentile(b, 0.5);
  return comparison;
}

}  // namespace cdsf::sim
