#include "sim/loop_executor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/engine.hpp"
#include "sim/sim_common.hpp"
#include "stats/summary.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cdsf::sim {

namespace {

/// Delegates every call to a caller-owned technique (for the Technique&
/// overload of simulate_loop).
class ForwardingTechnique final : public dls::Technique {
 public:
  explicit ForwardingTechnique(dls::Technique& inner) : inner_(&inner) {}
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] std::int64_t next_chunk(const dls::SchedulingContext& ctx) override {
    return inner_->next_chunk(ctx);
  }
  void record(const dls::ChunkResult& result) override { inner_->record(result); }
  void reset() override { inner_->reset(); }

 private:
  dls::Technique* inner_;
};

}  // namespace

double RunResult::finish_time_cov() const {
  stats::OnlineSummary summary;
  for (const WorkerStats& w : workers) summary.add(w.finish_time);
  return summary.cov();
}

RunResult simulate_loop(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors, const sysmodel::AvailabilitySpec& availability,
                        const TechniqueFactory& factory, const SimConfig& config,
                        std::uint64_t seed) {
  detail::PreparedRun prepared =
      detail::prepare_run(application, processor_type, processors, availability, config, seed);

  const std::unique_ptr<dls::Technique> technique = factory(prepared.params);
  if (technique == nullptr) throw std::invalid_argument("simulate_loop: factory returned null");
  technique->reset();

  RunResult result;
  result.workers.assign(processors, WorkerStats{});

  // Serial iterations on the master (worker 0).
  double serial_end = 0.0;
  if (application.serial_iterations() > 0) {
    const double serial_work =
        prepared.input_factor * detail::sample_work(application.serial_iterations(),
                                                    prepared.mean_iter, prepared.stddev_iter,
                                                    prepared.run_rng);
    serial_end = prepared.workers[0].availability->finish_time(0.0, serial_work);
  }
  result.serial_end = serial_end;
  result.makespan = serial_end;

  Engine engine;
  std::int64_t remaining = application.parallel_iterations();

  // Self-scheduling protocol: an idle worker requests a chunk; the chunk
  // completion event records feedback and triggers the next request.
  std::function<void(std::size_t)> request = [&](std::size_t w) {
    WorkerStats& stats = result.workers[w];
    if (remaining <= 0) {
      stats.finish_time = std::max(stats.finish_time, engine.now());
      return;
    }
    const dls::SchedulingContext ctx{remaining, w, engine.now()};
    std::int64_t chunk = technique->next_chunk(ctx);
    if (chunk <= 0) {
      // Technique has nothing (ever) for this worker (STATIC share spent).
      stats.finish_time = std::max(stats.finish_time, engine.now());
      return;
    }
    chunk = std::min(chunk, remaining);
    // Chunks cover contiguous index ranges from the front of the loop (the
    // iteration profile makes index position meaningful).
    const std::int64_t first_index = application.parallel_iterations() - remaining;
    remaining -= chunk;

    const double dispatch_time = engine.now();
    const double start_time = dispatch_time + config.scheduling_overhead;
    const double work = prepared.input_factor *
                        detail::chunk_work(application, processor_type, prepared.mean_iter,
                                           prepared.stddev_iter, config.iteration_cov,
                                           first_index, chunk, *prepared.workers[w].rng);
    const double end_time = prepared.workers[w].availability->finish_time(start_time, work);

    stats.chunks += 1;
    stats.iterations += chunk;
    stats.busy_time += end_time - start_time;
    stats.overhead_time += config.scheduling_overhead;
    result.total_chunks += 1;
    if (config.collect_trace) {
      result.trace.push_back({w, chunk, dispatch_time, start_time, end_time});
    }
    CDSF_LOG_TRACE << "worker " << w << " chunk " << chunk << " [" << dispatch_time << ", "
                   << end_time << "]";

    engine.schedule_at(end_time, [&, w, chunk, start_time, dispatch_time, end_time] {
      technique->record(dls::ChunkResult{w, chunk, end_time - start_time,
                                         end_time - dispatch_time});
      result.workers[w].finish_time = end_time;
      result.makespan = std::max(result.makespan, end_time);
      request(w);
    });
  };

  if (application.parallel_iterations() > 0) {
    // All workers become available for parallel work once the serial
    // portion completes on the master.
    engine.schedule_at(serial_end, [&] {
      for (std::size_t w = 0; w < processors; ++w) request(w);
    });
    engine.run();
  }

  for (WorkerStats& w : result.workers) {
    if (w.finish_time == 0.0) w.finish_time = serial_end;
  }
  return result;
}

RunResult simulate_loop(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors, const sysmodel::AvailabilitySpec& availability,
                        dls::TechniqueId technique, const SimConfig& config, std::uint64_t seed) {
  return simulate_loop(
      application, processor_type, processors, availability,
      [technique](const dls::TechniqueParams& params) {
        return dls::make_technique(technique, params);
      },
      config, seed);
}

RunResult simulate_loop(const workload::Application& application, std::size_t processor_type,
                        std::size_t processors, const sysmodel::AvailabilitySpec& availability,
                        dls::Technique& technique, const SimConfig& config, std::uint64_t seed) {
  return simulate_loop(
      application, processor_type, processors, availability,
      [&technique](const dls::TechniqueParams&) {
        return std::make_unique<ForwardingTechnique>(technique);
      },
      config, seed);
}

ReplicationSummary simulate_replicated(const workload::Application& application,
                                       std::size_t processor_type, std::size_t processors,
                                       const sysmodel::AvailabilitySpec& availability,
                                       dls::TechniqueId technique, const SimConfig& config,
                                       std::uint64_t seed, std::size_t replications,
                                       double deadline, std::size_t threads) {
  if (replications == 0) {
    throw std::invalid_argument("simulate_replicated: replications must be >= 1");
  }
  const util::SeedSequence seeds(seed);
  // Replications are embarrassingly parallel: each derives all randomness
  // from its own child seed, so the aggregation below is bit-identical for
  // any thread count.
  std::vector<double> samples(replications);
  util::parallel_for_index(replications, threads, [&](std::size_t r) {
    samples[r] = simulate_loop(application, processor_type, processors, availability,
                               technique, config, seeds.child(r))
                     .makespan;
  });
  stats::OnlineSummary makespans;
  std::size_t hits = 0;
  for (double makespan : samples) {
    makespans.add(makespan);
    if (makespan <= deadline) ++hits;
  }
  ReplicationSummary summary;
  summary.replications = replications;
  summary.mean_makespan = makespans.mean();
  summary.median_makespan = stats::percentile(std::move(samples), 0.5);
  summary.stddev_makespan = makespans.stddev();
  summary.min_makespan = makespans.min();
  summary.max_makespan = makespans.max();
  summary.deadline_hit_rate = static_cast<double>(hits) / static_cast<double>(replications);
  summary.mean_ci =
      stats::mean_interval(summary.mean_makespan, summary.stddev_makespan, replications);
  summary.hit_rate_ci = stats::wilson_interval(hits, replications);
  return summary;
}

RunResult simulate_loop_mixed(const workload::Application& application,
                              const std::vector<std::size_t>& worker_types,
                              const sysmodel::AvailabilitySpec& availability,
                              dls::TechniqueId technique, const SimConfig& config,
                              std::uint64_t seed) {
  if (worker_types.empty()) {
    throw std::invalid_argument("simulate_loop_mixed: at least one worker required");
  }
  for (std::size_t type : worker_types) {
    if (type >= availability.type_count() || type >= application.type_count()) {
      throw std::invalid_argument("simulate_loop_mixed: unknown processor type");
    }
  }
  detail::validate_config(config);

  const std::size_t processors = worker_types.size();
  const util::SeedSequence seeds(seed);
  util::RngStream run_rng = seeds.stream(0);
  double input_factor = 1.0;
  if (config.input_factor_cov > 0.0) {
    input_factor = std::max(run_rng.normal(1.0, config.input_factor_cov), 0.1);
  }

  // Per-worker iteration statistics and availability processes, each from
  // ITS OWN type. (prepare_run assumes a homogeneous group; this path
  // builds the heterogeneous equivalent directly.)
  struct MixedWorker {
    double mean_iter = 0.0;
    double stddev_iter = 0.0;
    std::unique_ptr<sysmodel::AvailabilityProcess> availability;
    std::unique_ptr<util::RngStream> rng;
  };
  std::vector<MixedWorker> group(processors);
  for (std::size_t w = 0; w < processors; ++w) {
    const std::size_t type = worker_types[w];
    group[w].mean_iter = application.mean_iteration_time(type);
    group[w].stddev_iter = group[w].mean_iter * config.iteration_cov;
    group[w].rng = std::make_unique<util::RngStream>(seeds.child(100 + 2 * w));
    const pmf::Pmf& law = availability.of_type(type);
    switch (config.availability_mode) {
      case AvailabilityMode::kIidEpoch:
        group[w].availability = std::make_unique<sysmodel::IidEpochAvailability>(
            law, config.epoch_length, seeds.child(101 + 2 * w));
        break;
      case AvailabilityMode::kMarkovEpoch:
        group[w].availability = std::make_unique<sysmodel::MarkovEpochAvailability>(
            law, config.epoch_length, config.markov_persistence, seeds.child(101 + 2 * w));
        break;
      case AvailabilityMode::kConstantMean:
        group[w].availability =
            std::make_unique<sysmodel::ConstantAvailability>(law.expectation());
        break;
      case AvailabilityMode::kSampleOnce:
        group[w].availability = std::make_unique<sysmodel::ConstantAvailability>(
            law.sample_with(run_rng.uniform01()));
        break;
      case AvailabilityMode::kDiurnal: {
        const double mean = law.expectation();
        const double amplitude =
            std::min({config.diurnal_amplitude, mean - 1e-6, 1.0 - mean});
        const double phase = static_cast<double>(w) /
                             static_cast<double>(processors) * config.diurnal_period;
        group[w].availability = std::make_unique<sysmodel::DiurnalAvailability>(
            mean, std::max(amplitude, 0.0), config.diurnal_period, phase);
        break;
      }
    }
  }
  for (const SimConfig::Failure& failure : config.failures) {
    if (failure.worker >= processors) {
      throw std::invalid_argument("simulate_loop_mixed: failure targets an unknown worker");
    }
    group[failure.worker].availability = std::make_unique<sysmodel::FailingAvailability>(
        std::move(group[failure.worker].availability), failure.time,
        failure.residual_availability);
  }

  // The technique sees combined speed x availability weights: the rate of
  // worker w relative to the group (1/mean_iter scaled by observed
  // availability at t = 0).
  dls::TechniqueParams params;
  params.workers = processors;
  params.total_iterations = std::max<std::int64_t>(1, application.parallel_iterations());
  double mean_iter_sum = 0.0;
  for (const MixedWorker& w : group) mean_iter_sum += w.mean_iter;
  params.mean_iteration_time = mean_iter_sum / static_cast<double>(processors);
  params.stddev_iteration_time = params.mean_iteration_time * config.iteration_cov;
  params.scheduling_overhead = config.scheduling_overhead;
  params.weights.reserve(processors);
  for (std::size_t w = 0; w < processors; ++w) {
    params.weights.push_back(group[w].availability->availability_at(0.0) /
                             group[w].mean_iter * params.mean_iteration_time);
  }
  const std::unique_ptr<dls::Technique> tech = dls::make_technique(technique, params);
  tech->reset();

  RunResult result;
  result.workers.assign(processors, WorkerStats{});

  double serial_end = 0.0;
  if (application.serial_iterations() > 0) {
    const double serial_work =
        input_factor * detail::sample_work(application.serial_iterations(),
                                           group[0].mean_iter, group[0].stddev_iter, run_rng);
    serial_end = group[0].availability->finish_time(0.0, serial_work);
  }
  result.serial_end = serial_end;
  result.makespan = serial_end;

  Engine engine;
  std::int64_t remaining = application.parallel_iterations();
  std::function<void(std::size_t)> request = [&](std::size_t w) {
    WorkerStats& stats = result.workers[w];
    if (remaining <= 0) {
      stats.finish_time = std::max(stats.finish_time, engine.now());
      return;
    }
    std::int64_t chunk = tech->next_chunk(dls::SchedulingContext{remaining, w, engine.now()});
    if (chunk <= 0) {
      stats.finish_time = std::max(stats.finish_time, engine.now());
      return;
    }
    chunk = std::min(chunk, remaining);
    const std::int64_t first_index = application.parallel_iterations() - remaining;
    remaining -= chunk;

    const double dispatch_time = engine.now();
    const double start_time = dispatch_time + config.scheduling_overhead;
    // Worker-local cost: the application's profile-weighted range cost on
    // THIS worker's type (chunk_work handles flat/profiled paths).
    const double work = input_factor *
                        detail::chunk_work(application, worker_types[w], group[w].mean_iter,
                                           group[w].stddev_iter, config.iteration_cov,
                                           first_index, chunk, *group[w].rng);
    const double end_time = group[w].availability->finish_time(start_time, work);

    stats.chunks += 1;
    stats.iterations += chunk;
    stats.busy_time += end_time - start_time;
    stats.overhead_time += config.scheduling_overhead;
    result.total_chunks += 1;
    if (config.collect_trace) {
      result.trace.push_back({w, chunk, dispatch_time, start_time, end_time});
    }
    engine.schedule_at(end_time, [&, w, chunk, start_time, dispatch_time, end_time] {
      tech->record(dls::ChunkResult{w, chunk, end_time - start_time,
                                    end_time - dispatch_time});
      result.workers[w].finish_time = end_time;
      result.makespan = std::max(result.makespan, end_time);
      request(w);
    });
  };

  if (application.parallel_iterations() > 0) {
    engine.schedule_at(serial_end, [&] {
      for (std::size_t w = 0; w < processors; ++w) request(w);
    });
    engine.run();
  }
  for (WorkerStats& w : result.workers) {
    if (w.finish_time == 0.0) w.finish_time = serial_end;
  }
  return result;
}

TechniqueComparison compare_techniques(const workload::Application& application,
                                       std::size_t processor_type, std::size_t processors,
                                       const sysmodel::AvailabilitySpec& availability,
                                       dls::TechniqueId technique_a,
                                       dls::TechniqueId technique_b, const SimConfig& config,
                                       std::uint64_t seed, std::size_t replications,
                                       double level) {
  if (replications == 0) {
    throw std::invalid_argument("compare_techniques: replications must be >= 1");
  }
  const util::SeedSequence seeds(seed);
  std::vector<double> a(replications);
  std::vector<double> b(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    // Common random numbers: the SAME child seed drives both techniques, so
    // they face identical availability paths and iteration noise.
    const std::uint64_t child = seeds.child(r);
    a[r] = simulate_loop(application, processor_type, processors, availability, technique_a,
                         config, child)
               .makespan;
    b[r] = simulate_loop(application, processor_type, processors, availability, technique_b,
                         config, child)
               .makespan;
  }
  TechniqueComparison comparison;
  comparison.technique_a = technique_a;
  comparison.technique_b = technique_b;
  comparison.makespan_difference =
      stats::paired_median_comparison(a, b, level, 2000, seeds.child(1 << 20));
  comparison.median_a = stats::percentile(a, 0.5);
  comparison.median_b = stats::percentile(b, 0.5);
  return comparison;
}

}  // namespace cdsf::sim
