// Master–worker simulation of one application execution under a DLS
// technique (Stage II of the CDSF).
//
// Execution model (matches the paper's assumptions, Section III/IV):
//  * The application runs alone on its allocated group of `processors`
//    workers, all of one processor type.
//  * Serial iterations execute first, on the master (worker 0); parallel
//    iterations are then dispatched in chunks sized by the DLS technique —
//    the classic self-scheduling protocol: an idle worker requests, the
//    technique answers with a chunk size, the worker computes.
//  * Iteration cost: one iteration's dedicated-processor time is drawn iid
//    from a law with mean = application mean time / total iterations and
//    configurable coefficient of variation. A per-run input-data factor
//    (the paper's uncertain input data) can scale a whole run.
//  * Availability: each worker owns an independent availability process
//    whose marginal law is the case PMF for the group's processor type
//    (Table I). An availability of a delivers an a-fraction of compute
//    rate, so a chunk of W dedicated time units started at t finishes at
//    the solution of the work integral (AvailabilityProcess::finish_time).
//  * Each chunk dispatch costs a fixed wall-clock overhead h before
//    computation starts.
//
// Techniques are built through a factory: the executor fills
// dls::TechniqueParams with the problem facts only it knows (worker count,
// iteration statistics, overhead h, and each worker's availability observed
// at time 0, which seeds WF/AWF weights) and then instantiates the policy.
// Everything is deterministic given the seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "dls/registry.hpp"
#include "dls/technique.hpp"
#include "obs/flight.hpp"
#include "stats/summary.hpp"
#include "sysmodel/availability.hpp"
#include "workload/application.hpp"

namespace cdsf::sim {

/// How worker availability evolves during the run.
enum class AvailabilityMode {
  /// Redrawn from the case PMF every epoch, independently.
  kIidEpoch,
  /// Epoch model with persistence (MarkovEpochAvailability).
  kMarkovEpoch,
  /// Every worker constant at the PMF's expected value.
  kConstantMean,
  /// Each worker draws once at t = 0 and keeps that value for the whole
  /// run (default). This is the paper's Stage II model: the load on a
  /// machine persists over one application execution, which is precisely
  /// why STATIC degrades and DLS pays off. It also reproduces the Stage I
  /// arithmetic E[T / a] in expectation.
  kSampleOnce,
  /// Deterministic day/night load cycle around the PMF's expected value
  /// (sysmodel::DiurnalAvailability); per-worker phases are spread evenly
  /// so the group's load rotates. Predictable drift — the regime where
  /// frozen WF weights go stale fastest. Knobs: diurnal_amplitude and
  /// diurnal_period below.
  kDiurnal,
};

/// Seeded unreliable-channel model for the message-passing executor:
/// per-direction drop / duplicate / reorder probabilities plus burst-loss
/// episodes. Every fault draw comes from a dedicated RNG stream fanned out
/// of the run seed, so a faulty channel never perturbs the work-sampling
/// or availability streams and runs stay deterministic.
struct ChannelModel {
  /// Per-message drop probability, master -> worker / worker -> master.
  double drop_to_worker = 0.0;
  double drop_to_master = 0.0;
  /// Probability a delivered message is duplicated (the copy is delivered
  /// independently, possibly reordered).
  double duplicate_to_worker = 0.0;
  double duplicate_to_master = 0.0;
  /// Probability a delivered copy is reordered: it picks up an extra
  /// delivery delay drawn uniformly from (0, reorder_delay].
  double reorder_to_worker = 0.0;
  double reorder_to_master = 0.0;
  double reorder_delay = 1.0;
  /// Burst-loss episodes (sysmodel::BurstWindows): episode gaps are
  /// exponential with mean `burst_gap_mean` (0 disables bursts), each
  /// episode lasts `burst_duration`, and EVERY message sent inside an
  /// episode is dropped (counted in ChannelStats::burst_drops).
  double burst_gap_mean = 0.0;
  double burst_duration = 0.0;
  /// Per-copy payload-corruption probability (seeded bit-flip model): a
  /// delivered copy arrives with a broken body, fails the receiver's
  /// checksum frame, and is discarded without processing or ack — the
  /// at-least-once retransmission machinery then recovers the payload, so
  /// a corrupted report can never reach Technique::record. Counted in
  /// ChannelStats::corrupted / corrupt_discarded.
  double corrupt_to_worker = 0.0;
  double corrupt_to_master = 0.0;
  /// Deterministic test hooks: unconditionally drop the first N payload
  /// messages in the given direction (before any probability draw).
  std::size_t force_drop_to_worker = 0;
  std::size_t force_drop_to_master = 0;
  /// Deterministic test hooks: unconditionally corrupt the first N
  /// delivered payload copies in the given direction (before the
  /// corruption probability draw).
  std::size_t force_corrupt_to_worker = 0;
  std::size_t force_corrupt_to_master = 0;
  /// First retransmit timeout; doubles (`rto_backoff`) after every unacked
  /// resend. Composes with the failure detector's false-suspicion timeout
  /// doubling: retransmission recovers lost MESSAGES, the detector
  /// recovers lost WORKERS.
  double rto = 2.0;
  double rto_backoff = 2.0;
  /// Retransmissions per message before the sender gives up and leaves
  /// recovery to the failure detector (0 = never retransmit — the pure
  /// timeout-recovery ablation arm).
  std::size_t max_retransmits = 8;

  /// True when any fault knob is nonzero — the switch that arms the
  /// hardened at-least-once protocol.
  [[nodiscard]] bool faulty() const noexcept {
    return drop_to_worker > 0.0 || drop_to_master > 0.0 || duplicate_to_worker > 0.0 ||
           duplicate_to_master > 0.0 || reorder_to_worker > 0.0 || reorder_to_master > 0.0 ||
           burst_gap_mean > 0.0 || force_drop_to_worker > 0 || force_drop_to_master > 0 ||
           corrupting();
  }

  /// True when any payload-corruption knob is nonzero (subset of faulty()).
  [[nodiscard]] bool corrupting() const noexcept {
    return corrupt_to_worker > 0.0 || corrupt_to_master > 0.0 || force_corrupt_to_worker > 0 ||
           force_corrupt_to_master > 0;
  }
};

/// Simulation knobs. Defaults reproduce the paper-scale experiments.
struct SimConfig {
  /// Wall-clock scheduling overhead h per chunk dispatch.
  double scheduling_overhead = 0.5;
  /// Coefficient of variation of a single iteration's dedicated time.
  double iteration_cov = 0.3;
  /// Per-run input-data factor ~ Normal(1, input_factor_cov), truncated to
  /// [0.1, inf); 0 disables it.
  double input_factor_cov = 0.0;
  /// Availability epoch length for the epoch-based modes.
  double epoch_length = 300.0;
  /// Markov persistence (probability an epoch repeats the previous value).
  /// The default correlation time epoch / (1 - persistence) = 1200 time
  /// units is long against chunk times (load persists — STATIC suffers,
  /// initial observations are meaningful) but short against a full
  /// execution (load drifts — WF's frozen weights go stale and the
  /// adaptive techniques earn their keep), matching the paper's A = 1 - Λ
  /// runtime-fluctuation model.
  double markov_persistence = 0.75;
  AvailabilityMode availability_mode = AvailabilityMode::kMarkovEpoch;
  /// kDiurnal only: oscillation amplitude around E[a] (clamped so the cycle
  /// stays within (0, 1]) and cycle period.
  double diurnal_amplitude = 0.2;
  double diurnal_period = 2000.0;
  /// When true, every worker of the group shares ONE availability process
  /// realization instead of drawing independently. With kSampleOnce this
  /// reproduces Stage I's arithmetic exactly: the whole group scales by a
  /// single availability draw, so a STATIC execution costs
  /// (s + p/n) * T / a (the model behind Table V and phi_1).
  bool shared_group_availability = false;
  /// Record per-chunk trace entries (costs memory; off by default).
  bool collect_trace = false;
  /// What an injected failure does to its worker.
  enum class FailureKind {
    /// Availability drops to `residual_availability` forever
    /// (sysmodel::FailingAvailability) — the worker limps, the in-flight
    /// chunk still (slowly) completes. The historical behavior.
    kDegrade,
    /// Availability drops to 0 forever (sysmodel::CrashingAvailability) —
    /// the worker is gone, its in-flight chunk is LOST and re-dispatched
    /// to the survivors by the fault-tolerance layer.
    kCrash,
    /// As kCrash, but the worker rejoins at `recovery_time` and resumes
    /// requesting work (with a clean slate; the lost chunk stays lost).
    kCrashRecover,
    /// MPI executor only: the MASTER process dies at `time` and restarts
    /// at `recovery_time` from its latest checkpoint + write-ahead log
    /// (see SimConfig::MasterCheckpoint). The `worker` field is ignored
    /// (the master is a dedicated coordinator, not a worker); at most one
    /// master failure per run, and `recovery_time` must be finite — a run
    /// without a master can never finish. The idealized executors have no
    /// explicit coordinator and ignore this kind (like fault_detection).
    kMasterCrashRestart,
    /// Gray failure: from `time` on the worker computes at FULL speed but
    /// each chunk it completes is silently WRONG with probability
    /// `corrupt_probability` — well-formed results that pass every
    /// checksum, invisible to the channel layer and the failure detector.
    /// Only audit-based re-execution (Quarantine::audit_rate) can catch
    /// it. No availability decorator is applied.
    kSilentCorrupt,
  };
  /// Injected processor failures, at most one per worker (duplicates are
  /// rejected with std::invalid_argument — stacking decorators silently
  /// would make the semantics order-dependent).
  struct Failure {
    std::size_t worker = 0;
    double time = 0.0;
    double residual_availability = 1e-3;  // kDegrade only
    FailureKind kind = FailureKind::kDegrade;
    /// kCrashRecover only: absolute time the worker rejoins (> time).
    double recovery_time = std::numeric_limits<double>::infinity();
    /// kSilentCorrupt only: probability in (0, 1] that a chunk completed
    /// after onset carries a wrong result.
    double corrupt_probability = 1.0;
  };
  std::vector<Failure> failures;
  /// Master-side dead-worker detection for the message-passing model
  /// (simulate_loop_mpi). The idealized executors observe crash events
  /// directly (zero detection latency); the MPI master only sees missing
  /// completion reports, so it arms a timeout per outstanding chunk and
  /// declares the worker dead after `max_probes` expirations with
  /// exponential backoff. Only armed when a crash-kind failure is
  /// configured, so non-crash runs are bit-identical to the legacy model.
  struct FaultDetection {
    /// When false, crash faults in the MPI model go undetected; a run that
    /// strands iterations then throws std::runtime_error instead of
    /// deadlocking (the ablation baseline).
    bool enabled = true;
    /// First timeout = factor x expected chunk round-trip (assignment
    /// latency + a-priori compute estimate + report latency).
    double timeout_factor = 3.0;
    /// Lower bound on any armed timeout.
    double min_timeout = 1.0;
    /// Multiplier on the probe interval after each expiration.
    double backoff = 2.0;
    /// Timeout expirations tolerated before the worker is declared dead.
    std::size_t max_probes = 2;
  };
  FaultDetection fault_detection;
  /// Speculative re-execution of straggler chunks. A worker that is alive
  /// but degraded (load spike, kDegrade failure) never trips the crash
  /// detector, yet a single slow chunk at the tail of the loop can push the
  /// makespan past the deadline. When enabled, the master flags a
  /// dispatched chunk as a *straggler* once its elapsed time exceeds a
  /// quantile of its expected completion distribution (a-priori weights
  /// refined by the technique's runtime mu/sigma estimates when available)
  /// and launches a backup copy on an idle worker. First finisher wins;
  /// the loser is cancelled, and only the winner's timing is record()ed
  /// into the technique — duplicate iterations never count twice.
  struct Speculation {
    bool enabled = false;
    /// Straggler threshold in sigmas: elapsed > mu + quantile * sigma of
    /// the chunk's expected compute time flags the chunk.
    double quantile = 3.0;
    /// Lower bound on any straggler threshold (guards tiny chunks whose
    /// sigma is smaller than the scheduling overhead).
    double min_elapsed = 1.0;
    /// Deadline-risk escalation multiplies the quantile by this factor
    /// (more aggressive speculation) down to min_quantile.
    double escalation_factor = 0.5;
    double min_quantile = 0.5;
  };
  Speculation speculation;
  /// Deadline-risk monitor above the speculation layer (idealized
  /// executors): every check_interval the master projects the makespan
  /// from in-flight progress and, when Pr(makespan <= deadline) falls
  /// below risk_floor, escalates speculation aggressiveness — graceful
  /// degradation in stages before the framework's rho_2 re-map cliff.
  /// Requires speculation.enabled (there is nothing else to escalate).
  struct DeadlineRisk {
    bool enabled = false;
    /// Delta. Framework::run_stage_two / execute_plan fill this with the
    /// framework deadline when it is left at 0.
    double deadline = 0.0;
    double check_interval = 250.0;
    /// Escalate when the projected Pr(makespan <= deadline) < risk_floor.
    double risk_floor = 0.5;
  };
  DeadlineRisk deadline_risk;
  /// Gray-failure containment: fail-slow quarantine and audit-based
  /// result validation (both executors). The master keeps a per-worker
  /// EWMA of realized chunk slowdown — elapsed wall-clock over the
  /// a-priori dedicated-time estimate, the same signal the speculation
  /// layer thresholds per chunk — and quarantines a worker whose EWMA
  /// stays above `slowdown_threshold` after `min_observations` accepted
  /// chunks. A quarantined worker is DRAINED: its in-flight chunk still
  /// completes and records, but it receives no new assignments, hosts no
  /// speculative backups, and serves no audits. Every `probe_interval`
  /// the master sends it one canary chunk of real pool work;
  /// `probe_successes` consecutive healthy canaries reinstate it (EWMA
  /// reset). Independently, `audit_rate` of accepted chunks are
  /// re-executed on a different worker and compared; `audit_mismatch_limit`
  /// mismatches quarantine the originator — the only defense against
  /// kSilentCorrupt workers, whose results are wrong but well-formed.
  /// Everything is structurally disarmed by default: with enabled ==
  /// false and audit_rate == 0 no extra RNG stream is created and runs
  /// are bit-identical to the pre-quarantine executor.
  struct Quarantine {
    bool enabled = false;
    /// EWMA smoothing factor in (0, 1] (weight of the newest observation).
    double ewma_alpha = 0.3;
    /// Quarantine when EWMA slowdown exceeds this factor. Healthy workers
    /// sit near 1/availability (typically 1–2.5 under the paper's cases),
    /// so the default cleanly separates 10x fail-slow workers.
    double slowdown_threshold = 4.0;
    /// Accepted chunks required before the EWMA is trusted.
    std::uint64_t min_observations = 3;
    /// Simulated time between canary probes of a quarantined worker (> 0).
    double probe_interval = 200.0;
    /// Consecutive healthy canaries required for reinstatement (>= 1).
    std::size_t probe_successes = 2;
    /// Audit mismatches tolerated before the worker is quarantined (>= 1).
    std::size_t audit_mismatch_limit = 1;
    /// Fraction of accepted chunks re-executed on an independent worker
    /// and compared (0 disables auditing).
    double audit_rate = 0.0;

    /// True when any part of the gray-failure machinery must run.
    [[nodiscard]] bool armed() const noexcept { return enabled || audit_rate > 0.0; }
  };
  Quarantine quarantine;
  /// Unreliable master–worker channel (MPI executor only; the idealized
  /// executors abstract the network away and ignore it, like
  /// fault_detection). All probabilities default to 0: with `faulty()`
  /// false and checkpointing off, simulate_loop_mpi is bit-identical to
  /// the reliable protocol. Any nonzero knob arms the hardened
  /// at-least-once protocol: sequence-numbered assignments/reports with
  /// master- and worker-side dedup, explicit acks, and retransmission
  /// with exponential backoff (see ChannelStats).
  ChannelModel channel;
  /// Master checkpoint/restart (MPI executor only). When enabled the
  /// master appends every assignment, ack, and accepted completion to a
  /// compact write-ahead log (RunResult::wal) and takes a snapshot record
  /// every `interval` simulated time units. A kMasterCrashRestart failure
  /// implies checkpointing (restart needs the WAL) and also arms the
  /// hardened channel protocol: messages arriving at a down master are
  /// lost, so workers must retransmit.
  struct MasterCheckpoint {
    bool enabled = false;
    /// Snapshot period in simulated time (> 0).
    double interval = 500.0;
    /// When non-empty, the final checkpoint state (snapshot + WAL) is
    /// written to this path as schema-tagged JSON at the end of the run.
    std::string json_path;
  };
  MasterCheckpoint checkpoint;
  /// Flight recorder (both executors): an always-on bounded ring of
  /// structured lifecycle events, merged into RunResult::flight at end of
  /// run and dumped as a `cdsf.flight_record/1` postmortem when the run
  /// ends badly (deadline miss, strand, master restart, quarantine trip,
  /// chaos invariant violation) AND the process-global obs::FlightSink is
  /// armed. Recording is structurally inert — no RNG, no clock, no effect
  /// on trace/report output — so default runs stay byte-identical with it
  /// on. The CDSF_FLIGHT environment variable (obs::flight_recording_
  /// enabled) is the process-wide kill switch used by the overhead bench.
  struct Flight {
    bool enabled = true;
    /// Ring capacity per worker track (one extra track for the master).
    std::size_t track_capacity = 64;
    /// Deadline for the deadline-miss anomaly trigger; 0 disables it.
    /// Framework::run_stage_two / execute_plan and the replicated drivers
    /// fill it with the run deadline when left at 0 (the deadline_risk
    /// pattern).
    double deadline = 0.0;
  };
  Flight flight;
  /// Cooperative cancellation hook (util::CancelToken::flag()); polled at
  /// every Monte-Carlo boundary (the start of each replication in
  /// simulate_replicated / simulate_replicated_mpi), so a long replication
  /// sweep unwinds with util::Cancelled within one replication of the
  /// owning watchdog firing. Null = never cancelled; individual runs are
  /// unaffected. The pointee must outlive the simulation.
  const std::atomic<bool>* cancel = nullptr;
};

/// Per-worker accounting.
struct WorkerStats {
  std::uint64_t chunks = 0;
  std::int64_t iterations = 0;
  double busy_time = 0.0;      // wall-clock computing
  double overhead_time = 0.0;  // wall-clock in dispatch overhead
  double finish_time = 0.0;    // when the worker went permanently idle
};

/// One dispatched chunk (trace mode).
struct ChunkTraceEntry {
  std::size_t worker = 0;
  std::int64_t iterations = 0;
  double dispatch_time = 0.0;  // request granted (overhead starts)
  double start_time = 0.0;     // computation starts
  double end_time = 0.0;       // computation ends (would-be end if lost;
                               // cancellation instant if cancelled)
  bool lost = false;           // chunk stranded by a crash; re-dispatched
  /// First parallel-iteration index of the chunk's range (the chaos
  /// harness reconstructs exactly-once coverage from [first, first + n)).
  std::int64_t first = 0;
  /// Speculative backup copy of a straggler chunk.
  bool speculative = false;
  /// Losing copy of a speculated chunk, stopped when the winner finished.
  bool cancelled = false;
  /// The assignment needed at least one channel retransmission before the
  /// worker received it (hardened MPI protocol only).
  bool retransmitted = false;
  /// Audit replica: a re-execution of an already-accepted chunk on an
  /// independent worker for result comparison. Audit entries never feed
  /// record() and are excluded from exactly-once coverage accounting.
  bool audit = false;
  /// Canary probe: real pool work dispatched to a quarantined worker to
  /// test recovery (counts normally toward coverage).
  bool probe = false;
};

/// Scheduler lifecycle moment recorded alongside the chunk trace (only
/// with SimConfig::collect_trace) for the observability layer — the
/// events obs::TraceSink renders as instant markers on the worker tracks.
struct LifecycleEvent {
  enum class Kind {
    kWorkerCrash,         // availability process crashed (physical event)
    kWorkerRecover,       // crashed worker rejoined
    kWorkerSuspected,     // MPI master: a chunk timeout expired (probe #value)
    kWorkerDeclaredDead,  // MPI master: probe budget exhausted
    kWorkerReinstated,    // MPI master: late report from a falsely-suspected worker
    kChunkLost,           // in-flight chunk reclaimed (value = iterations)
    kChunkStraggler,      // chunk exceeded its straggler threshold (value = iterations)
    kChunkBackup,         // speculative backup launched (value = iterations)
    kChunkCancelled,      // losing copy stopped after the winner finished
    kRiskEscalated,       // deadline-risk monitor tightened speculation
                          // (value = escalation ordinal)
    kRetransmit,          // hardened MPI protocol: a message to/from worker
                          // `worker` was retransmitted (value = sequence)
    kDedupHit,            // hardened MPI protocol: a re-delivered message
                          // was dropped by sequence dedup (value = sequence)
    kMasterCrash,         // the master process died (worker field unused)
    kMasterRestart,       // the master resumed from checkpoint + WAL
    kCheckpoint,          // periodic master snapshot (value = WAL length)
    kWorkerQuarantined,   // health tracker quarantined the worker
                          // (value = 0 fail-slow EWMA trip, 1 audit trip)
    kQuarantineProbe,     // canary chunk sent to a quarantined worker
                          // (value = iterations)
    kWorkerRestored,      // quarantined worker reinstated after
                          // probe_successes healthy canaries
    kAuditLaunched,       // audit replica dispatched (value = iterations;
                          // worker = auditing worker)
    kAuditMismatch,       // audit result disagreed with the original
                          // (worker = the suspect originating worker)
    kMessageCorrupted,    // hardened MPI protocol: a delivered copy failed
                          // its checksum and was discarded (value = sequence)
  };
  Kind kind = Kind::kWorkerCrash;
  double time = 0.0;
  std::size_t worker = 0;
  std::int64_t value = 0;
};

/// Fault-tolerance accounting for one run. All zero when no crash-kind
/// failure is configured.
struct FaultStats {
  std::size_t workers_crashed = 0;
  std::size_t workers_recovered = 0;
  /// In-flight chunks stranded by crashes (each later re-dispatched).
  std::uint64_t chunks_lost = 0;
  /// Iterations from lost chunks that had to be executed again.
  std::int64_t iterations_reexecuted = 0;
  /// Wall-clock x availability the crashed workers sank into chunks that
  /// never completed (compute delivered before the crash, plus overhead).
  double wasted_work = 0.0;
  /// Sum over lost chunks of (declared-dead time - crash time). Zero in
  /// the idealized executors, which observe the crash event directly.
  double detection_latency_total = 0.0;
  double max_detection_latency = 0.0;
  /// MPI model: timeouts that expired for a worker that was NOT dead
  /// (a slow chunk probed before its report arrived).
  std::size_t false_suspicions = 0;
};

/// Speculative-execution accounting for one run. All zero when
/// SimConfig::speculation is off. Bookkeeping identity (checked by the
/// chaos harness): backups_launched = backups_won + backups_cancelled +
/// backups_lost once the run completes.
struct SpeculationStats {
  /// Chunks that exceeded their straggler threshold (each counted once).
  std::uint64_t stragglers_flagged = 0;
  std::uint64_t backups_launched = 0;
  /// Backups that finished first (or whose primary died) — the rescues.
  std::uint64_t backups_won = 0;
  /// Backups cancelled because the primary finished first.
  std::uint64_t backups_cancelled = 0;
  /// Backups stranded by a crash of the backup worker.
  std::uint64_t backups_lost = 0;
  /// Primaries cancelled because their backup finished first.
  std::uint64_t primaries_cancelled = 0;
  /// Wall-clock x availability sunk into cancelled copies (the price of
  /// speculation, the analogue of FaultStats::wasted_work).
  double cancelled_work = 0.0;
  /// Deadline-risk monitor escalations.
  std::uint64_t risk_escalations = 0;

  /// Order-independent element-wise sum (aggregation across runs).
  void accumulate(const SpeculationStats& other) noexcept {
    stragglers_flagged += other.stragglers_flagged;
    backups_launched += other.backups_launched;
    backups_won += other.backups_won;
    backups_cancelled += other.backups_cancelled;
    backups_lost += other.backups_lost;
    primaries_cancelled += other.primaries_cancelled;
    cancelled_work += other.cancelled_work;
    risk_escalations += other.risk_escalations;
  }
};

/// Unreliable-channel accounting for one run (hardened MPI protocol; all
/// zero when the channel is clean and checkpointing is off). Bookkeeping
/// identities checked by the chaos harness: burst_drops <= drops, and
/// dedup_hits <= duplicates + retransmits (every surplus delivery stems
/// from a channel duplicate or a protocol retransmission).
struct ChannelStats {
  /// Payload messages offered to the channel (including retransmissions;
  /// acks are counted separately in acks_sent).
  std::uint64_t messages_sent = 0;
  std::uint64_t drops = 0;
  /// Subset of drops that fell inside a burst-loss episode.
  std::uint64_t burst_drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  /// Protocol-level resends (unacked assignment, unanswered request,
  /// unacked report).
  std::uint64_t retransmits = 0;
  /// Re-delivered messages dropped by sequence-number dedup — a
  /// re-delivered assignment is never executed twice and a duplicated
  /// report never double-feeds Technique::record.
  std::uint64_t dedup_hits = 0;
  std::uint64_t acks_sent = 0;
  /// Messages whose sender exhausted max_retransmits; recovery falls to
  /// the failure detector.
  std::uint64_t retransmits_abandoned = 0;
  /// Delivered copies the channel corrupted in flight...
  std::uint64_t corrupted = 0;
  /// ...and copies the receiver's checksum frame rejected. The chaos
  /// harness checks corrupted == corrupt_discarded: checksum detection is
  /// assumed perfect, so no corrupted payload is ever processed (a
  /// corrupted report never reaches Technique::record).
  std::uint64_t corrupt_discarded = 0;

  /// Order-independent element-wise sum (aggregation across runs).
  void accumulate(const ChannelStats& other) noexcept {
    messages_sent += other.messages_sent;
    drops += other.drops;
    burst_drops += other.burst_drops;
    duplicates += other.duplicates;
    reorders += other.reorders;
    retransmits += other.retransmits;
    dedup_hits += other.dedup_hits;
    acks_sent += other.acks_sent;
    retransmits_abandoned += other.retransmits_abandoned;
    corrupted += other.corrupted;
    corrupt_discarded += other.corrupt_discarded;
  }

  /// True when the hardened protocol ran (used to gate report emission).
  [[nodiscard]] bool active() const noexcept {
    return messages_sent > 0 || acks_sent > 0;
  }
};

/// Gray-failure containment accounting for one run (all zero when
/// SimConfig::Quarantine is disarmed). Bookkeeping identities checked by
/// the chaos harness: quarantines == fail_slow_trips + audit_trips,
/// reinstatements <= quarantines, probes_healthy <= probes_launched, and
/// audits_launched == audits_matched + audit_mismatches +
/// audits_abandoned once the run completes.
struct QuarantineStats {
  /// Quarantines triggered by the fail-slow EWMA threshold...
  std::uint64_t fail_slow_trips = 0;
  /// ...and by reaching the audit-mismatch limit.
  std::uint64_t audit_trips = 0;
  std::uint64_t quarantines = 0;
  /// Quarantined workers reinstated after sustained canary recovery.
  std::uint64_t reinstatements = 0;
  /// Canary probe chunks dispatched to quarantined workers...
  std::uint64_t probes_launched = 0;
  /// ...and canaries that came back under the slowdown threshold.
  std::uint64_t probes_healthy = 0;
  /// Total simulated time workers spent quarantined (run end closes any
  /// still-open quarantine window).
  double quarantined_time = 0.0;
  /// Audit replicas dispatched...
  std::uint64_t audits_launched = 0;
  /// ...that agreed with the original result,
  std::uint64_t audits_matched = 0;
  /// ...that disagreed (the originating worker is marked suspect),
  std::uint64_t audit_mismatches = 0;
  /// ...and that never completed (auditing worker crashed / run ended).
  std::uint64_t audits_abandoned = 0;
  /// Ground truth: accepted chunks whose result was silently wrong
  /// (kSilentCorrupt onset). The audit layer's catch rate is
  /// audit_mismatches against this baseline.
  std::uint64_t corrupt_chunks_recorded = 0;

  /// Order-independent element-wise sum (aggregation across runs).
  void accumulate(const QuarantineStats& other) noexcept {
    fail_slow_trips += other.fail_slow_trips;
    audit_trips += other.audit_trips;
    quarantines += other.quarantines;
    reinstatements += other.reinstatements;
    probes_launched += other.probes_launched;
    probes_healthy += other.probes_healthy;
    quarantined_time += other.quarantined_time;
    audits_launched += other.audits_launched;
    audits_matched += other.audits_matched;
    audit_mismatches += other.audit_mismatches;
    audits_abandoned += other.audits_abandoned;
    corrupt_chunks_recorded += other.corrupt_chunks_recorded;
  }

  /// True when the gray-failure machinery ran (gates report emission).
  [[nodiscard]] bool active() const noexcept {
    return quarantines > 0 || audits_launched > 0 || probes_launched > 0 ||
           corrupt_chunks_recorded > 0;
  }
};

/// Master checkpoint/restart accounting (all zero when checkpointing is
/// off and no kMasterCrashRestart failure is configured).
struct CheckpointStats {
  std::uint64_t wal_records = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t master_restarts = 0;
  /// Restart reconciliation: assignments in the WAL without an ack were
  /// reclaimed into the pool and re-dispatched...
  std::uint64_t restart_ranges_redispatched = 0;
  /// ...acked-but-incomplete assignments stayed outstanding on their
  /// workers (their reports are still good)...
  std::uint64_t restart_chunks_preserved = 0;
  /// ...and WAL completions were replayed into the dedup table so a
  /// completed chunk is never record()ed twice.
  std::uint64_t restart_completions_replayed = 0;

  void accumulate(const CheckpointStats& other) noexcept {
    wal_records += other.wal_records;
    snapshots += other.snapshots;
    master_restarts += other.master_restarts;
    restart_ranges_redispatched += other.restart_ranges_redispatched;
    restart_chunks_preserved += other.restart_chunks_preserved;
    restart_completions_replayed += other.restart_completions_replayed;
  }

  [[nodiscard]] bool active() const noexcept { return wal_records > 0 || snapshots > 0; }
};

/// One master write-ahead-log record. The log is append-only and ordered
/// by time; restart reconciliation scans it to rebuild the assignment
/// table (SimConfig::MasterCheckpoint::json_path serializes it as JSON).
struct WalRecord {
  enum class Kind {
    kAssign,    // chunk [first, first+count) assigned to `worker` as `seq`
    kAck,       // worker acknowledged assignment `seq`
    kComplete,  // completion report for `seq` accepted (record() fed)
    kSnapshot,  // periodic snapshot (count = iterations completed so far)
    kRestart,   // master restarted from this log
  };
  Kind kind = Kind::kAssign;
  double time = 0.0;
  std::size_t worker = 0;
  std::uint64_t seq = 0;
  std::int64_t first = 0;
  std::int64_t count = 0;
};

/// Outcome of one simulated application execution.
struct RunResult {
  double makespan = 0.0;    // end of the last chunk (>= serial_end)
  double serial_end = 0.0;  // completion of the serial iterations
  std::uint64_t total_chunks = 0;
  std::vector<WorkerStats> workers;
  std::vector<ChunkTraceEntry> trace;
  /// Lifecycle markers, sorted by time (empty unless collect_trace).
  std::vector<LifecycleEvent> events;
  FaultStats faults;
  SpeculationStats speculation;
  /// Gray-failure containment accounting (zero when disarmed).
  QuarantineStats quarantine;
  /// Hardened-channel accounting (MPI executor; zero elsewhere).
  ChannelStats channel;
  /// Master checkpoint/restart accounting (MPI executor; zero elsewhere).
  CheckpointStats checkpoint;
  /// Master write-ahead log (empty unless checkpointing was on).
  std::vector<WalRecord> wal;
  /// Merged flight recording (enabled == false when the recorder was off).
  obs::FlightRecord flight;

  /// Coefficient of variation of per-worker finish times — the classic
  /// load-imbalance metric (0 = perfectly balanced).
  [[nodiscard]] double finish_time_cov() const;
};

/// Builds a technique from executor-populated params.
using TechniqueFactory =
    std::function<std::unique_ptr<dls::Technique>(const dls::TechniqueParams&)>;

/// Simulates `application` on `processors` workers of `processor_type`,
/// availability drawn from `availability` (one independent process per
/// worker), chunks sized by the technique the factory builds.
/// Throws std::invalid_argument for zero processors, an unknown processor
/// type, or invalid config values.
[[nodiscard]] RunResult simulate_loop(const workload::Application& application,
                                      std::size_t processor_type, std::size_t processors,
                                      const sysmodel::AvailabilitySpec& availability,
                                      const TechniqueFactory& factory, const SimConfig& config,
                                      std::uint64_t seed);

/// Convenience: technique by registry id.
[[nodiscard]] RunResult simulate_loop(const workload::Application& application,
                                      std::size_t processor_type, std::size_t processors,
                                      const sysmodel::AvailabilitySpec& availability,
                                      dls::TechniqueId technique, const SimConfig& config,
                                      std::uint64_t seed);

/// Convenience: caller-owned technique instance (reset() before use);
/// executor-known hints and weights are NOT applied.
[[nodiscard]] RunResult simulate_loop(const workload::Application& application,
                                      std::size_t processor_type, std::size_t processors,
                                      const sysmodel::AvailabilitySpec& availability,
                                      dls::Technique& technique, const SimConfig& config,
                                      std::uint64_t seed);

/// Aggregate over independent replications. Each replication redraws
/// availability processes, iteration noise, and (via the factory) technique
/// weights.
struct ReplicationSummary {
  std::size_t replications = 0;
  double mean_makespan = 0.0;
  /// Median makespan — the representative-execution statistic used for
  /// deadline decisions (the mean is dominated by the rare runs whose
  /// master drew the lowest availability pulse for the serial phase).
  double median_makespan = 0.0;
  double stddev_makespan = 0.0;
  double min_makespan = 0.0;
  double max_makespan = 0.0;
  /// Fraction of replications with makespan <= deadline.
  double deadline_hit_rate = 0.0;
  /// 95% confidence interval for the mean makespan.
  stats::ConfidenceInterval mean_ci;
  /// 95% Wilson interval for the deadline hit rate.
  stats::ConfidenceInterval hit_rate_ci;
  /// Fault accounting summed over all replications (order-independent, so
  /// bit-identical for any thread count).
  FaultStats faults_total;
  /// Speculation accounting summed over all replications.
  SpeculationStats speculation_total;
  /// Gray-failure containment accounting summed over all replications.
  QuarantineStats quarantine_total;
  /// Channel + checkpoint accounting summed over all replications (only
  /// nonzero for the MPI replication path, simulate_replicated_mpi).
  ChannelStats channel_total;
  CheckpointStats checkpoint_total;
};

/// Mixed-type group execution: the paper restricts every group to ONE
/// processor type; this relaxation (a natural extension for clusters whose
/// free processors span generations) gives each worker its own type, so
/// iteration costs AND availability laws differ per worker — the speed
/// heterogeneity WF/AWF were originally designed for, on top of the
/// availability heterogeneity the other executors model.
/// `worker_types[w]` is the processor type of worker w; the serial phase
/// runs on worker 0. Iteration-index profiles use the group's mean cost
/// scaled per worker by its type's relative speed.
/// Throws std::invalid_argument on empty worker list, unknown types, or
/// invalid config.
[[nodiscard]] RunResult simulate_loop_mixed(const workload::Application& application,
                                            const std::vector<std::size_t>& worker_types,
                                            const sysmodel::AvailabilitySpec& availability,
                                            dls::TechniqueId technique, const SimConfig& config,
                                            std::uint64_t seed);

/// Statistically sound technique comparison using common random numbers:
/// both techniques run on the SAME per-replication environments (identical
/// availability processes and iteration noise), and the per-replication
/// makespan differences (a - b) are summarized by a paired bootstrap CI.
/// `significant` means the CI excludes zero — the basis for Table VI-style
/// "best technique" claims.
struct TechniqueComparison {
  dls::TechniqueId technique_a = dls::TechniqueId::kStatic;
  dls::TechniqueId technique_b = dls::TechniqueId::kStatic;
  stats::PairedComparison makespan_difference;  // a - b, time units
  double median_a = 0.0;
  double median_b = 0.0;
};

/// Throws std::invalid_argument if replications == 0.
[[nodiscard]] TechniqueComparison compare_techniques(
    const workload::Application& application, std::size_t processor_type,
    std::size_t processors, const sysmodel::AvailabilitySpec& availability,
    dls::TechniqueId technique_a, dls::TechniqueId technique_b, const SimConfig& config,
    std::uint64_t seed, std::size_t replications, double level = 0.95);

/// Runs `replications` independent simulations and summarizes makespans
/// against `deadline`. With `threads` > 1 the replications run on that many
/// threads; every replication derives its randomness from its own child
/// seed, so the summary is bit-identical for ANY thread count.
/// Throws std::invalid_argument if replications == 0.
[[nodiscard]] ReplicationSummary simulate_replicated(
    const workload::Application& application, std::size_t processor_type,
    std::size_t processors, const sysmodel::AvailabilitySpec& availability,
    dls::TechniqueId technique, const SimConfig& config, std::uint64_t seed,
    std::size_t replications, double deadline, std::size_t threads = 1);

}  // namespace cdsf::sim
