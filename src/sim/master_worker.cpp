#include "sim/master_worker.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/engine.hpp"
#include "sim/sim_common.hpp"
#include "util/log.hpp"

namespace cdsf::sim {

MpiRunResult simulate_loop_mpi(const workload::Application& application,
                               std::size_t processor_type, std::size_t processors,
                               const sysmodel::AvailabilitySpec& availability,
                               const TechniqueFactory& factory, const SimConfig& config,
                               const MessageModel& messages, std::uint64_t seed) {
  if (messages.latency < 0.0 || messages.master_service_time < 0.0) {
    throw std::invalid_argument("simulate_loop_mpi: message costs must be >= 0");
  }
  detail::PreparedRun prepared =
      detail::prepare_run(application, processor_type, processors, availability, config, seed);

  const std::unique_ptr<dls::Technique> technique = factory(prepared.params);
  if (technique == nullptr) {
    throw std::invalid_argument("simulate_loop_mpi: factory returned null");
  }
  technique->reset();

  // Fault tolerance is armed only when a crash-kind failure exists, so
  // degrade-only and failure-free runs stay bit-identical to the legacy
  // protocol. With crashes, the master only ever observes MESSAGES: a dead
  // worker simply stops reporting, so each outstanding chunk carries a
  // timeout; after fault_detection.max_probes expirations (exponential
  // backoff between probes) the worker is declared dead and its chunk
  // re-dispatched. A recovering worker's fresh request also exposes the
  // loss (even with detection disabled), mirroring an MPI reconnect.
  const bool crash_mode = detail::has_crash_failures(config);
  const bool detection = crash_mode && config.fault_detection.enabled;
  // Speculation also needs report-based accounting (a cancelled loser's
  // result must be droppable), so it shares the crash-mode protocol even
  // when no crash failure is configured.
  const bool speculate = config.speculation.enabled;
  const bool managed = crash_mode || speculate;

  MpiRunResult result;
  result.run.workers.assign(processors, WorkerStats{});
  for (const SimConfig::Failure& failure : config.failures) {
    if (failure.kind == SimConfig::FailureKind::kDegrade) continue;
    result.run.faults.workers_crashed += 1;
    if (failure.kind == SimConfig::FailureKind::kCrashRecover) {
      result.run.faults.workers_recovered += 1;
    }
  }

  // Serial iterations on worker 0 before the parallel loop opens.
  double serial_end = 0.0;
  if (application.serial_iterations() > 0) {
    const double serial_work =
        prepared.input_factor * detail::sample_work(application.serial_iterations(),
                                                    prepared.mean_iter, prepared.stddev_iter,
                                                    prepared.run_rng);
    serial_end = prepared.workers[0].availability->finish_time(0.0, serial_work);
    if (!std::isfinite(serial_end)) {
      throw std::runtime_error(
          "simulate_loop_mpi: worker 0 crashed during the serial phase — the serial "
          "iterations have no fault tolerance (re-dispatch needs the loop to open)");
    }
  }
  result.run.serial_end = serial_end;
  result.run.makespan = serial_end;

  if (config.collect_trace) {
    for (std::size_t w = 0; w < processors; ++w) {
      if (!prepared.workers[w].crashes()) continue;
      result.run.events.push_back(
          {LifecycleEvent::Kind::kWorkerCrash, prepared.workers[w].crash_time, w, 0});
      if (std::isfinite(prepared.workers[w].recovery_time)) {
        result.run.events.push_back({LifecycleEvent::Kind::kWorkerRecover,
                                     prepared.workers[w].recovery_time, w, 0});
      }
    }
  }

  Engine engine;
  detail::IterationPool pool(application.parallel_iterations());
  std::int64_t completed = 0;  // accepted parallel iterations (crash mode)
  double master_free_at = 0.0;

  // Master-side fault state (all untouched in legacy mode).
  struct Outstanding {
    bool active = false;
    bool lost = false;  // physically stranded by the worker's crash
    detail::IterationPool::Range range;
    double dispatch_time = 0.0;
    double start_time = 0.0;
    double end_time = 0.0;
    std::uint64_t id = 0;
    std::size_t probes = 0;
    /// Speculation: this assignment is the backup copy of a straggler.
    bool speculative = false;
    /// Speculation: the sibling copy (partner worker + its assignment id).
    bool has_partner = false;
    std::size_t partner = 0;
    std::uint64_t partner_id = 0;
    /// Pending report-chain event (compute completion, then the report's
    /// arrival); cancelled when the partner's report wins the race.
    Engine::EventId report_event = Engine::kNoEvent;
    std::ptrdiff_t trace_index = -1;  // set only with collect_trace
  };
  std::vector<Outstanding> outstanding(processors);
  std::vector<std::uint64_t> next_id(processors, 0);
  std::vector<char> declared_dead(processors, 0);
  std::vector<char> idle(processors, 0);
  // Per-worker timeout escalation: each proven-false suspicion (a late
  // report from a worker the master declared dead) doubles that worker's
  // timeout scale. Without this, a timeout below the true round trip
  // reclaims EVERY chunk before its report lands — no report is ever
  // accepted and the run livelocks. Doubling converges the timeout above
  // the real round trip within O(log) false suspicions.
  std::vector<double> timeout_scale(processors, 1.0);
  // Straggler-flagged assignments waiting for an idle worker to host the
  // backup copy (entries may go stale when the report arrives first).
  std::deque<std::pair<std::size_t, std::uint64_t>> stragglers;
  double quantile = config.speculation.quantile;

  std::function<void(std::size_t)> master_receive_request;

  // Pulls a reclaimed/returned range back into circulation: benched workers
  // (idle because the pool momentarily drained) get the master's deferred
  // reply now.
  auto wake_idle = [&] {
    for (std::size_t v = 0; v < processors; ++v) {
      if (idle[v] && !declared_dead[v]) {
        idle[v] = 0;
        master_receive_request(v);
      }
    }
  };

  // Takes worker w's outstanding chunk away from it (it was declared dead
  // or rejoined after a crash) and returns the iterations to the pool —
  // unless a speculative sibling copy is still in flight, in which case the
  // sibling already covers the range (exactly-once execution).
  auto reclaim_outstanding = [&](std::size_t w) {
    Outstanding& out = outstanding[w];
    if (!out.active) return;
    out.active = false;
    if (config.collect_trace) {
      result.run.events.push_back(
          {LifecycleEvent::Kind::kChunkLost, engine.now(), w, out.range.count});
    }
    if (out.lost) {
      result.run.faults.chunks_lost += 1;
      const double detect_latency =
          std::max(0.0, engine.now() - prepared.workers[w].crash_time);
      result.run.faults.detection_latency_total += detect_latency;
      result.run.faults.max_detection_latency =
          std::max(result.run.faults.max_detection_latency, detect_latency);
      double wasted = out.start_time - out.dispatch_time;
      if (out.start_time < engine.now()) {
        wasted += prepared.workers[w].availability->work_delivered(out.start_time, engine.now());
      }
      result.run.faults.wasted_work += wasted;
      if (out.speculative) result.run.speculation.backups_lost += 1;
    } else if (config.collect_trace && out.trace_index >= 0) {
      // False suspicion: the worker is alive and will eventually report,
      // but the master re-dispatched the range and will drop that report —
      // mark the entry so it no longer counts as delivered work (the chaos
      // harness reconstructs exactly-once coverage from the trace).
      result.run.trace[static_cast<std::size_t>(out.trace_index)].cancelled = true;
    }
    if (out.has_partner && outstanding[out.partner].active &&
        outstanding[out.partner].id == out.partner_id) {
      return;  // the sibling copy still delivers the range
    }
    result.run.faults.iterations_reexecuted += out.range.count;
    pool.give_back(out.range);
    wake_idle();
  };

  // One timeout expiration for assignment `id` on worker w. Stale probes
  // (the report arrived, or the chunk was already reclaimed) are no-ops.
  std::function<void(std::size_t, std::uint64_t, double)> probe_fire =
      [&](std::size_t w, std::uint64_t id, double interval) {
        Outstanding& out = outstanding[w];
        if (!out.active || out.id != id) return;
        out.probes += 1;
        if (config.collect_trace) {
          result.run.events.push_back({LifecycleEvent::Kind::kWorkerSuspected, engine.now(),
                                       w, static_cast<std::int64_t>(out.probes)});
        }
        if (out.probes >= config.fault_detection.max_probes) {
          declared_dead[w] = 1;
          if (!out.lost) result.run.faults.false_suspicions += 1;
          CDSF_LOG_TRACE << "mpi master declares worker " << w << " dead at " << engine.now();
          if (config.collect_trace) {
            result.run.events.push_back(
                {LifecycleEvent::Kind::kWorkerDeclaredDead, engine.now(), w, 0});
          }
          reclaim_outstanding(w);
          return;
        }
        const double next = interval * config.fault_detection.backoff;
        engine.schedule_at(engine.now() + next,
                           [&probe_fire, w, id, next] { probe_fire(w, id, next); });
      };

  // Arms the first dead-worker timeout for assignment `id` (detection on).
  auto arm_detection = [&](std::size_t w, std::uint64_t id, std::int64_t count,
                           double dispatch_time) {
    if (!detection) return;
    // Expected round trip from the master's a-priori knowledge: the
    // weight seed (observed availability) is all it has — the actual
    // availability path is exactly what it cannot see.
    const double expected_compute = static_cast<double>(count) * prepared.mean_iter *
                                    prepared.input_factor /
                                    std::max(prepared.params.weights[w], 0.05);
    const double timeout = std::max(config.fault_detection.min_timeout,
                                    timeout_scale[w] * config.fault_detection.timeout_factor *
                                        (expected_compute + 2.0 * messages.latency));
    engine.schedule_at(dispatch_time + timeout,
                       [&probe_fire, w, id, timeout] { probe_fire(w, id, timeout); });
  };

  // The partner of an accepted report lost the race: drop its (pending)
  // report, charge the sunk work, and bring the worker back into the loop.
  // The cancel notice itself is abstracted to the master's instant; the
  // loser's next request pays the two message latencies.
  auto cancel_partner = [&](std::size_t v) {
    Outstanding& out = outstanding[v];
    out.active = false;
    const double now = engine.now();
    if (out.lost) {
      // The losing copy was already stranded by its worker's crash: the
      // winner resolves the race, but the copy is accounted as LOST (as the
      // reclaim path would do), not cancelled — there is no report to
      // cancel, no cancel notice to deliver, and no request to solicit.
      result.run.faults.chunks_lost += 1;
      double wasted = std::min(messages.latency, std::max(0.0, now - out.dispatch_time));
      const double stop = std::min(now, out.end_time);
      if (out.start_time < stop) {
        wasted += prepared.workers[v].availability->work_delivered(out.start_time, stop);
      }
      result.run.faults.wasted_work += wasted;
      if (out.speculative) result.run.speculation.backups_lost += 1;
      if (config.collect_trace) {
        result.run.events.push_back(
            {LifecycleEvent::Kind::kChunkLost, now, v, out.range.count});
      }
      return;
    }
    engine.cancel(out.report_event);
    if (out.speculative) {
      result.run.speculation.backups_cancelled += 1;
    } else {
      result.run.speculation.primaries_cancelled += 1;
    }
    double sunk = std::min(messages.latency, std::max(0.0, now - out.dispatch_time));
    const double stop = std::min(now, out.end_time);
    if (out.start_time < stop) {
      sunk += prepared.workers[v].availability->work_delivered(out.start_time, stop);
    }
    result.run.speculation.cancelled_work += sunk;
    if (config.collect_trace) {
      result.run.events.push_back(
          {LifecycleEvent::Kind::kChunkCancelled, now, v, out.range.count});
      if (out.trace_index >= 0) {
        ChunkTraceEntry& entry = result.run.trace[static_cast<std::size_t>(out.trace_index)];
        entry.cancelled = true;
        entry.end_time = std::min(now, entry.end_time);
      }
    }
    const double receive = now + messages.latency;
    if (!(prepared.workers[v].crash_time <= receive &&
          receive < prepared.workers[v].recovery_time)) {
      engine.schedule_at(receive + messages.latency, [&, v] {
        if (!declared_dead[v]) master_receive_request(v);
      });
    }
  };

  // Two-stage report chain for assignment `id` on worker w: computation
  // completes at end_time, the report reaches the master one latency later.
  // Both stages are cancellable so a losing speculated copy can be stopped;
  // out.report_event always holds the currently-pending stage.
  std::function<void(std::size_t, std::uint64_t)> schedule_report =
      [&](std::size_t w, std::uint64_t id) {
        const double start_time = outstanding[w].start_time;
        const double end_time = outstanding[w].end_time;
        const Engine::EventId first_stage =
            engine.schedule_cancellable_at(end_time, [&, w, id, start_time, end_time] {
              const Engine::EventId second_stage = engine.schedule_cancellable_at(
                  engine.now() + messages.latency, [&, w, id, start_time, end_time] {
                    Outstanding& out = outstanding[w];
                    if (!out.active || out.id != id) {
                      // Late report from a falsely-suspected worker: its
                      // iterations were already re-dispatched, so the result
                      // is dropped — but the worker is clearly alive, so
                      // reinstate it.
                      result.run.faults.wasted_work +=
                          prepared.workers[w].availability->work_delivered(start_time,
                                                                           end_time);
                      if (declared_dead[w]) {
                        declared_dead[w] = 0;
                        timeout_scale[w] *= 2.0;
                        if (config.collect_trace) {
                          result.run.events.push_back(
                              {LifecycleEvent::Kind::kWorkerReinstated, engine.now(), w, 0});
                        }
                        master_receive_request(w);
                      }
                      return;
                    }
                    out.active = false;
                    WorkerStats& ws = result.run.workers[w];
                    ws.chunks += 1;
                    ws.iterations += out.range.count;
                    ws.busy_time += out.end_time - out.start_time;
                    ws.overhead_time += out.start_time - out.dispatch_time;
                    ws.finish_time = out.end_time;
                    result.run.total_chunks += 1;
                    result.run.makespan = std::max(result.run.makespan, out.end_time);
                    completed += out.range.count;
                    if (out.speculative) result.run.speculation.backups_won += 1;
                    technique->record(dls::ChunkResult{w, out.range.count,
                                                       out.end_time - out.start_time,
                                                       out.end_time - out.dispatch_time});
                    if (out.has_partner && outstanding[out.partner].active &&
                        outstanding[out.partner].id == out.partner_id) {
                      cancel_partner(out.partner);
                    }
                    master_receive_request(w);
                  });
              Outstanding& out = outstanding[w];
              if (out.active && out.id == id) out.report_event = second_stage;
            });
        outstanding[w].report_event = first_stage;
      };

  // Runs a straggler assignment's range a second time on idle worker v.
  auto launch_backup = [&](std::size_t v, std::size_t w, std::uint64_t id) {
    Outstanding& primary = outstanding[w];
    const detail::IterationPool::Range range = primary.range;
    const double dispatch_time = engine.now();
    const double start_time = dispatch_time + messages.latency;
    const double work = prepared.input_factor *
                        detail::chunk_work(application, processor_type, prepared.mean_iter,
                                           prepared.stddev_iter, config.iteration_cov,
                                           range.first, range.count,
                                           *prepared.workers[v].rng);
    const double end_time = prepared.workers[v].availability->finish_time(start_time, work);
    const bool lost = start_time < prepared.workers[v].recovery_time &&
                      end_time > prepared.workers[v].crash_time;
    const std::uint64_t backup_id = ++next_id[v];
    Outstanding out;
    out.active = true;
    out.lost = lost;
    out.range = range;
    out.dispatch_time = dispatch_time;
    out.start_time = start_time;
    out.end_time = end_time;
    out.id = backup_id;
    out.speculative = true;
    out.has_partner = true;
    out.partner = w;
    out.partner_id = id;
    if (config.collect_trace) {
      out.trace_index = static_cast<std::ptrdiff_t>(result.run.trace.size());
      result.run.trace.push_back(
          {v, range.count, dispatch_time, start_time, end_time, lost, range.first, true,
           false});
      result.run.events.push_back(
          {LifecycleEvent::Kind::kChunkBackup, dispatch_time, v, range.count});
    }
    outstanding[v] = out;
    primary.has_partner = true;
    primary.partner = v;
    primary.partner_id = backup_id;
    result.run.speculation.backups_launched += 1;
    CDSF_LOG_TRACE << "mpi worker " << v << " backup " << range.count << " ["
                   << dispatch_time << ", " << end_time << "]" << (lost ? " LOST" : "");
    arm_detection(v, backup_id, range.count, dispatch_time);
    if (lost) return;  // the worker dies mid-backup: no report, ever
    schedule_report(v, backup_id);
  };

  // Straggler monitor for assignment `id`: fires once the chunk's elapsed
  // time exceeds mu + quantile * sigma of its expected completion (the
  // technique's runtime estimate when it has one, the a-priori weight
  // otherwise) and launches a backup on an idle worker — or queues the
  // assignment for the next worker that goes idle.
  auto arm_straggler_check = [&](std::size_t w, std::uint64_t id, std::int64_t count,
                                 double start_time) {
    double mu_it = technique->estimated_iteration_time(w);
    if (!(mu_it > 0.0)) {
      mu_it = prepared.input_factor * prepared.mean_iter /
              std::max(prepared.params.weights[w], 0.05);
    }
    const double n = static_cast<double>(count);
    const double threshold =
        std::max(config.speculation.min_elapsed,
                 mu_it * n +
                     quantile * prepared.input_factor * prepared.stddev_iter * std::sqrt(n));
    engine.schedule_at(start_time + threshold + messages.latency, [&, w, id] {
      Outstanding& out = outstanding[w];
      if (!out.active || out.id != id || out.has_partner) return;
      result.run.speculation.stragglers_flagged += 1;
      if (config.collect_trace) {
        result.run.events.push_back(
            {LifecycleEvent::Kind::kChunkStraggler, engine.now(), w, out.range.count});
      }
      for (std::size_t v = 0; v < processors; ++v) {
        if (idle[v] && !declared_dead[v]) {
          idle[v] = 0;
          launch_backup(v, w, id);
          return;
        }
      }
      stragglers.emplace_back(w, id);  // next idle worker picks it up
    });
  };

  // The master serializes request handling; each handled request either
  // assigns a chunk (reply travels back with one latency) or retires the
  // worker. Completion reports carry the technique feedback.
  master_receive_request = [&](std::size_t w) {
    const double arrival = engine.now();
    const double service_start = std::max(arrival, master_free_at);
    const double wait = service_start - arrival;
    result.master.queue_wait_time += wait;
    result.master.max_queue_wait = std::max(result.master.max_queue_wait, wait);
    master_free_at = service_start + messages.master_service_time;
    result.master.requests_handled += 1;
    result.master.busy_time += messages.master_service_time;

    engine.schedule_at(master_free_at, [&, w] {
      WorkerStats& stats = result.run.workers[w];
      if (declared_dead[w]) return;
      const std::int64_t pending = pool.pending();
      if (pending <= 0) {
        // Fresh work always outranks speculation, so backups only launch
        // when the pool is empty.
        if (speculate) {
          while (!stragglers.empty()) {
            const auto [pw, pid] = stragglers.front();
            const Outstanding& pout = outstanding[pw];
            if (!pout.active || pout.id != pid || pout.has_partner) {
              stragglers.pop_front();  // stale: the report won the race
              continue;
            }
            stragglers.pop_front();
            launch_backup(w, pw, pid);
            return;
          }
        }
        // Managed mode: stay wakeable — a reclaim may refill the pool.
        if (managed) idle[w] = 1;
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }
      const dls::SchedulingContext ctx{pending, w, engine.now()};
      std::int64_t chunk = technique->next_chunk(ctx);
      if (chunk <= 0) {
        if (!crash_mode) {
          stats.finish_time = std::max(stats.finish_time, engine.now());
          return;
        }
        // Fault-tolerant fallback: the technique's plan is spent but
        // reclaimed iterations are pending — drain them in equal shares.
        std::size_t alive = 0;
        for (std::size_t v = 0; v < processors; ++v) alive += declared_dead[v] ? 0u : 1u;
        const auto alive64 = static_cast<std::int64_t>(alive);
        chunk = (pending + alive64 - 1) / alive64;
      }
      const detail::IterationPool::Range range = pool.take(chunk);
      if (range.count <= 0) {
        if (managed) idle[w] = 1;
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }

      // Assignment message travels to the worker; computation starts on
      // arrival (the scheduling_overhead of the abstract model is the
      // message round trip here, so it is NOT charged again).
      const double dispatch_time = engine.now();
      const double start_time = dispatch_time + messages.latency;
      const double work = prepared.input_factor *
                          detail::chunk_work(application, processor_type, prepared.mean_iter,
                                             prepared.stddev_iter, config.iteration_cov,
                                             range.first, range.count,
                                             *prepared.workers[w].rng);
      const double end_time = prepared.workers[w].availability->finish_time(start_time, work);
      // Physically stranded iff the worker's outage touches the chunk's
      // lifetime: assigned before (or into) the outage and not finished by
      // the crash. A permanent crash makes end_time +infinity, which also
      // lands here.
      const bool lost = start_time < prepared.workers[w].recovery_time &&
                        end_time > prepared.workers[w].crash_time;

      const std::ptrdiff_t trace_index =
          config.collect_trace ? static_cast<std::ptrdiff_t>(result.run.trace.size()) : -1;
      if (config.collect_trace) {
        result.run.trace.push_back(
            {w, range.count, dispatch_time, start_time, end_time, lost, range.first, false,
             false});
      }
      CDSF_LOG_TRACE << "mpi worker " << w << " chunk " << range.count << " ["
                     << dispatch_time << ", " << end_time << "]" << (lost ? " LOST" : "");

      if (!managed) {
        // Legacy protocol (bit-identical): account at dispatch, report
        // always arrives.
        stats.chunks += 1;
        stats.iterations += range.count;
        stats.busy_time += end_time - start_time;
        stats.overhead_time += start_time - dispatch_time;
        result.run.total_chunks += 1;
        engine.schedule_at(end_time, [&, w, range, start_time, dispatch_time, end_time] {
          result.run.workers[w].finish_time = end_time;
          result.run.makespan = std::max(result.run.makespan, end_time);
          // Completion report + next request reach the master one latency
          // later; the feedback is recorded when the master RECEIVES it.
          engine.schedule_after(messages.latency, [&, w, range, start_time, dispatch_time,
                                                   end_time] {
            technique->record(dls::ChunkResult{w, range.count, end_time - start_time,
                                               end_time - dispatch_time});
            master_receive_request(w);
          });
        });
        return;
      }

      // Managed mode (crashes and/or speculation): account only ACCEPTED
      // completion reports, so lost, falsely-suspected (late-report), and
      // cancelled-loser chunks never pollute the worker stats or the
      // technique's adaptive weights.
      const std::uint64_t id = ++next_id[w];
      Outstanding out;
      out.active = true;
      out.lost = lost;
      out.range = range;
      out.dispatch_time = dispatch_time;
      out.start_time = start_time;
      out.end_time = end_time;
      out.id = id;
      out.trace_index = trace_index;
      outstanding[w] = out;
      arm_detection(w, id, range.count, dispatch_time);
      if (speculate) arm_straggler_check(w, id, range.count, start_time);
      if (lost) return;  // the worker dies mid-chunk: no report, ever
      schedule_report(w, id);
    });
  };

  if (application.parallel_iterations() > 0) {
    engine.schedule_at(serial_end, [&] {
      // Every worker's initial request reaches the master one latency in;
      // workers already down at the kick never send one (their recovery
      // request, if any, is their first contact).
      for (std::size_t w = 0; w < processors; ++w) {
        const detail::Worker& worker = prepared.workers[w];
        if (worker.crash_time <= serial_end && serial_end < worker.recovery_time) continue;
        engine.schedule_after(messages.latency, [&, w] { master_receive_request(w); });
      }
    });
    for (std::size_t w = 0; w < processors; ++w) {
      const detail::Worker& worker = prepared.workers[w];
      if (!worker.crashes() || !std::isfinite(worker.recovery_time)) continue;
      // An outage fully inside the serial phase is invisible to the loop:
      // the worker is alive at the kick and its initial request covers it —
      // a rejoin request here would be a duplicate entry into the loop,
      // overwriting the worker's outstanding chunk and stranding it.
      if (worker.recovery_time <= serial_end) continue;
      // The rejoining worker's request reaches the master one latency after
      // recovery (or after the loop opens); it also reveals that the old
      // chunk died with the worker, even when timeout detection is off.
      const double rejoin = std::max(worker.recovery_time, serial_end) + messages.latency;
      engine.schedule_at(rejoin, [&, w] {
        declared_dead[w] = 0;
        reclaim_outstanding(w);
        master_receive_request(w);
      });
    }
    engine.run();
  }

  if (managed && completed < application.parallel_iterations()) {
    throw std::runtime_error(
        "simulate_loop_mpi: " +
        std::to_string(application.parallel_iterations() - completed) +
        " iterations stranded by crashes (fault detection disabled or no surviving "
        "worker to re-dispatch to)");
  }

  for (WorkerStats& w : result.run.workers) {
    if (w.finish_time == 0.0) w.finish_time = serial_end;
  }
  detail::finalize_run(result.run);
  return result;
}

MpiRunResult simulate_loop_mpi(const workload::Application& application,
                               std::size_t processor_type, std::size_t processors,
                               const sysmodel::AvailabilitySpec& availability,
                               dls::TechniqueId technique, const SimConfig& config,
                               const MessageModel& messages, std::uint64_t seed) {
  return simulate_loop_mpi(
      application, processor_type, processors, availability,
      [technique](const dls::TechniqueParams& params) {
        return dls::make_technique(technique, params);
      },
      config, messages, seed);
}

}  // namespace cdsf::sim
