#include "sim/master_worker.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/json.hpp"
#include "sim/engine.hpp"
#include "sim/sim_common.hpp"
#include "sim/wal_recovery.hpp"
#include "util/cancel.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cdsf::sim {

namespace {

/// Serializes the master's final durable state (snapshot counters plus the
/// full write-ahead log) as schema-tagged JSON.
void write_checkpoint_json(const std::string& path, const RunResult& run) {
  obs::Json doc = obs::Json::object();
  doc.set("schema", "cdsf.master_checkpoint/1");
  doc.set("makespan", run.makespan);
  doc.set("wal_records", run.checkpoint.wal_records);
  doc.set("snapshots", run.checkpoint.snapshots);
  doc.set("master_restarts", run.checkpoint.master_restarts);
  obs::Json wal = obs::Json::array();
  for (const WalRecord& rec : run.wal) {
    obs::Json r = obs::Json::object();
    r.set("kind", wal_kind_name(rec.kind));
    r.set("time", rec.time);
    r.set("worker", rec.worker);
    r.set("seq", rec.seq);
    r.set("first", rec.first);
    r.set("count", rec.count);
    wal.push_back(std::move(r));
  }
  doc.set("wal", std::move(wal));
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("simulate_loop_mpi: cannot write checkpoint JSON to " + path);
  }
  out << doc.dump(2) << '\n';
}

void accumulate_faults(FaultStats& total, const FaultStats& run) {
  total.workers_crashed += run.workers_crashed;
  total.workers_recovered += run.workers_recovered;
  total.chunks_lost += run.chunks_lost;
  total.iterations_reexecuted += run.iterations_reexecuted;
  total.wasted_work += run.wasted_work;
  total.detection_latency_total += run.detection_latency_total;
  total.max_detection_latency = std::max(total.max_detection_latency, run.max_detection_latency);
  total.false_suspicions += run.false_suspicions;
}

}  // namespace

MpiRunResult simulate_loop_mpi(const workload::Application& application,
                               std::size_t processor_type, std::size_t processors,
                               const sysmodel::AvailabilitySpec& availability,
                               const TechniqueFactory& factory, const SimConfig& config,
                               const MessageModel& messages, std::uint64_t seed) {
  if (messages.latency < 0.0 || messages.master_service_time < 0.0) {
    throw std::invalid_argument("simulate_loop_mpi: message costs must be >= 0");
  }
  detail::PreparedRun prepared =
      detail::prepare_run(application, processor_type, processors, availability, config, seed);

  const std::unique_ptr<dls::Technique> technique = factory(prepared.params);
  if (technique == nullptr) {
    throw std::invalid_argument("simulate_loop_mpi: factory returned null");
  }
  technique->reset();

  // Fault tolerance is armed only when a crash-kind failure exists, so
  // degrade-only and failure-free runs stay bit-identical to the legacy
  // protocol. With crashes, the master only ever observes MESSAGES: a dead
  // worker simply stops reporting, so each outstanding chunk carries a
  // timeout; after fault_detection.max_probes expirations (exponential
  // backoff between probes) the worker is declared dead and its chunk
  // re-dispatched. A recovering worker's fresh request also exposes the
  // loss (even with detection disabled), mirroring an MPI reconnect.
  const bool crash_mode = detail::has_crash_failures(config);
  const SimConfig::Failure* master_fault = detail::master_restart_failure(config);
  const bool unreliable = config.channel.faulty();
  // A master restart needs the WAL to reconcile against, so a master fault
  // implies checkpointing; and messages arriving at a down master are lost,
  // so either condition arms the hardened at-least-once protocol.
  const bool checkpointing = config.checkpoint.enabled || master_fault != nullptr;
  const bool hardened = unreliable || checkpointing;
  const bool detection = (crash_mode || hardened) && config.fault_detection.enabled;
  // Speculation also needs report-based accounting (a cancelled loser's
  // result must be droppable), so it shares the crash-mode protocol even
  // when no crash failure is configured.
  const bool speculate = config.speculation.enabled;
  // Gray-failure machinery, structurally disarmed by default (see
  // loop_executor.cpp): quarantine/audit decisions and the silent-wrongness
  // ground truth need report-based accounting, so arming either joins the
  // managed protocol.
  const bool quarantine_armed = config.quarantine.armed();
  const bool silent_corrupt = detail::has_silent_corrupt(config);
  const bool gray = quarantine_armed || silent_corrupt;
  const bool managed = crash_mode || speculate || hardened || gray;

  MpiRunResult result;
  result.run.workers.assign(processors, WorkerStats{});
  // Always-on flight recorder: bounded per-worker rings, merged into
  // result.run.flight by finalize_run. Recording never touches the RNG,
  // the trace, or the event list, so enabling it cannot perturb the run.
  obs::FlightRecorder flight(processors, config.flight.track_capacity,
                             config.flight.enabled && obs::flight_recording_enabled());
  for (const SimConfig::Failure& failure : config.failures) {
    if (failure.kind == SimConfig::FailureKind::kDegrade ||
        failure.kind == SimConfig::FailureKind::kMasterCrashRestart ||
        failure.kind == SimConfig::FailureKind::kSilentCorrupt) {
      continue;
    }
    result.run.faults.workers_crashed += 1;
    if (failure.kind == SimConfig::FailureKind::kCrashRecover) {
      result.run.faults.workers_recovered += 1;
    }
  }

  // Serial iterations on worker 0 before the parallel loop opens.
  double serial_end = 0.0;
  if (application.serial_iterations() > 0) {
    const double serial_work =
        prepared.input_factor * detail::sample_work(application.serial_iterations(),
                                                    prepared.mean_iter, prepared.stddev_iter,
                                                    prepared.run_rng);
    serial_end = prepared.workers[0].availability->finish_time(0.0, serial_work);
    if (!std::isfinite(serial_end)) {
      throw std::runtime_error(
          "simulate_loop_mpi: worker 0 crashed during the serial phase — the serial "
          "iterations have no fault tolerance (re-dispatch needs the loop to open)");
    }
  }
  result.run.serial_end = serial_end;
  result.run.makespan = serial_end;

  if (config.collect_trace) {
    for (std::size_t w = 0; w < processors; ++w) {
      if (!prepared.workers[w].crashes()) continue;
      result.run.events.push_back(
          {LifecycleEvent::Kind::kWorkerCrash, prepared.workers[w].crash_time, w, 0});
      if (std::isfinite(prepared.workers[w].recovery_time)) {
        result.run.events.push_back({LifecycleEvent::Kind::kWorkerRecover,
                                     prepared.workers[w].recovery_time, w, 0});
      }
    }
  }
  // Crash/recovery instants are known up front (the availability process
  // carries them); the merge sort in finish() interleaves them correctly.
  for (std::size_t w = 0; w < processors; ++w) {
    if (!prepared.workers[w].crashes()) continue;
    flight.record(obs::FlightEventKind::kWorkerCrashed, prepared.workers[w].crash_time,
                  static_cast<std::uint32_t>(w));
    if (std::isfinite(prepared.workers[w].recovery_time)) {
      flight.record(obs::FlightEventKind::kWorkerRecovered,
                    prepared.workers[w].recovery_time, static_cast<std::uint32_t>(w));
    }
  }

  Engine engine;
  detail::IterationPool pool(application.parallel_iterations());
  std::int64_t completed = 0;  // accepted parallel iterations (crash mode)
  double master_free_at = 0.0;

  // Master-side fault state (all untouched in legacy mode).
  struct Outstanding {
    bool active = false;
    bool lost = false;  // physically stranded by the worker's crash
    /// Hardened protocol: the assignment message reached the worker (work
    /// draw done, computation running). An undelivered assignment reclaims
    /// with zero compute waste. Legacy/managed dispatch is synchronous with
    /// the work draw, so the default stays true there.
    bool delivered = true;
    detail::IterationPool::Range range;
    double dispatch_time = 0.0;
    double start_time = 0.0;
    double end_time = 0.0;
    std::uint64_t id = 0;
    std::size_t probes = 0;
    /// Speculation: this assignment is the backup copy of a straggler.
    bool speculative = false;
    /// Speculation: the sibling copy (partner worker + its assignment id).
    bool has_partner = false;
    std::size_t partner = 0;
    std::uint64_t partner_id = 0;
    /// Pending report-chain event (compute completion, then the report's
    /// arrival); cancelled when the partner's report wins the race.
    Engine::EventId report_event = Engine::kNoEvent;
    /// Canary chunk probing a quarantined worker: its accepted report feeds
    /// the recovery streak instead of the fail-slow EWMA.
    bool probe = false;
    std::ptrdiff_t trace_index = -1;  // set only with collect_trace
  };
  std::vector<Outstanding> outstanding(processors);
  std::vector<std::uint64_t> next_id(processors, 0);
  std::vector<char> declared_dead(processors, 0);
  std::vector<char> idle(processors, 0);
  // Per-worker timeout escalation: each proven-false suspicion (a late
  // report from a worker the master declared dead) doubles that worker's
  // timeout scale. Without this, a timeout below the true round trip
  // reclaims EVERY chunk before its report lands — no report is ever
  // accepted and the run livelocks. Doubling converges the timeout above
  // the real round trip within O(log) false suspicions.
  std::vector<double> timeout_scale(processors, 1.0);
  // Straggler-flagged assignments waiting for an idle worker to host the
  // backup copy (entries may go stale when the report arrives first).
  std::deque<std::pair<std::size_t, std::uint64_t>> stragglers;
  double quantile = config.speculation.quantile;

  // ---- Gray-failure state (dormant when disarmed; see loop_executor.cpp
  // for the shared semantics). The audit/corruption streams are fanned out
  // of the run seed on children 23/29 — disjoint from the run_rng, worker,
  // availability, channel, and burst streams — and created only when armed
  // so disarmed runs never consume them.
  detail::HealthTracker health(config.quarantine, processors);
  std::optional<util::RngStream> audit_rng;
  if (quarantine_armed && config.quarantine.audit_rate > 0.0) {
    audit_rng.emplace(util::SeedSequence(seed).child(23));
  }
  std::optional<util::RngStream> corrupt_rng;
  std::vector<const SimConfig::Failure*> corrupt_failure(processors, nullptr);
  if (silent_corrupt) {
    corrupt_rng.emplace(util::SeedSequence(seed).child(29));
    for (std::size_t w = 0; w < processors; ++w) {
      corrupt_failure[w] = detail::silent_corrupt_failure(config, w);
    }
  }
  // A-priori t = 0 weights for the slowdown baseline (pre-crash value for a
  // worker already down at t = 0, matching the technique's weight seed).
  std::vector<double> weight0(processors, 1.0);
  if (quarantine_armed) {
    for (std::size_t w = 0; w < processors; ++w) {
      weight0[w] = prepared.workers[w].crashes() && prepared.workers[w].crash_time <= 0.0
                       ? prepared.workers[w].weight_at_zero
                       : prepared.workers[w].availability->availability_at(0.0);
    }
  }
  // One queued audit: re-run `range` on a worker other than `origin` and
  // compare. `original_wrong` carries the original completion's wrongness
  // ground truth.
  struct AuditJob {
    detail::IterationPool::Range range;
    std::size_t origin = 0;
    bool original_wrong = false;
  };
  std::deque<AuditJob> audits_waiting;
  std::vector<char> auditing(processors, 0);      // worker busy on an audit replica
  std::vector<std::uint64_t> audit_epoch(processors, 0);
  std::vector<char> probe_pending(processors, 0);  // canary service queued

  // ---- Hardened at-least-once protocol state (dormant otherwise). ----
  const ChannelModel& chan = config.channel;
  // Channel fault draws come from dedicated streams fanned out of the run
  // seed (children 17/19 — prepare_run owns 0 and 100+), so arming the
  // channel never perturbs the work-sampling or availability streams.
  std::optional<util::RngStream> channel_rng;
  std::optional<sysmodel::BurstWindows> bursts;
  if (unreliable) {
    channel_rng.emplace(util::SeedSequence(seed).child(17));
    if (chan.burst_gap_mean > 0.0) {
      bursts.emplace(chan.burst_gap_mean, chan.burst_duration,
                     util::SeedSequence(seed).child(19));
    }
  }
  std::size_t force_drop_to_worker = chan.force_drop_to_worker;
  std::size_t force_drop_to_master = chan.force_drop_to_master;
  std::size_t force_corrupt_to_worker = chan.force_corrupt_to_worker;
  std::size_t force_corrupt_to_master = chan.force_corrupt_to_master;
  // Worker-side protocol memory (survives master restarts).
  std::vector<std::uint64_t> request_seq(processors, 0);   // requests issued
  std::vector<std::uint64_t> reply_seq(processors, 0);     // highest request answered
  std::vector<std::uint64_t> executed_seq(processors, 0);  // assignment dedup
  std::vector<std::uint64_t> cancelled_seq(processors, 0);  // speculation-loser suppression
  std::vector<std::uint64_t> report_acked_seq(processors, 0);
  // Master-side protocol memory (volatile: dies in a master crash and is
  // rebuilt from the WAL at restart).
  std::vector<std::uint64_t> assign_acked_seq(processors, 0);
  std::vector<std::uint64_t> processed_seq(processors, 0);  // report dedup
  // A master service for this worker is enqueued but not yet executed.
  // In that window outstanding[w] is inactive and idle[w] unset, so a
  // duplicated/retransmitted request would otherwise enqueue a SECOND
  // service — two overlapping assignments for one worker, the first of
  // which would be silently orphaned (its report drops into the
  // late-report path and its iterations strand).
  std::vector<char> service_pending(processors, 0);
  bool master_down = false;
  // Bumped at every master crash; timers armed by the old incarnation
  // (probes, assignment retransmits) carry their epoch and no-op on
  // mismatch — the crashed process's timers died with it.
  std::uint64_t master_epoch = 1;

  std::function<void(std::size_t, std::uint64_t)> master_receive_request;
  std::function<void(std::size_t, std::uint64_t, std::uint64_t, detail::IterationPool::Range,
                     double)>
      worker_receive_assignment;
  std::function<void(std::size_t, std::uint64_t, bool)> master_handle_request;
  std::function<void(std::size_t, bool)> worker_send_request;
  std::function<std::uint64_t(std::size_t, detail::IterationPool::Range, std::uint64_t, bool,
                              std::size_t, std::uint64_t, bool)>
      dispatch_hardened;
  std::function<void(std::size_t, std::uint64_t, std::int64_t, double)> arm_straggler_check;
  std::function<void()> snapshot_tick;
  std::function<void()> probe_tick;

  // Pulls a reclaimed/returned range back into circulation: benched workers
  // (idle because the pool momentarily drained) get the master's deferred
  // reply now.
  auto wake_idle = [&] {
    for (std::size_t v = 0; v < processors; ++v) {
      if (idle[v] && !declared_dead[v] &&
          !(quarantine_armed && health.quarantined(v))) {
        idle[v] = 0;
        master_receive_request(v, 0);
      }
    }
  };

  // Takes worker w's outstanding chunk away from it (it was declared dead
  // or rejoined after a crash) and returns the iterations to the pool —
  // unless a speculative sibling copy is still in flight, in which case the
  // sibling already covers the range (exactly-once execution).
  auto reclaim_outstanding = [&](std::size_t w) {
    Outstanding& out = outstanding[w];
    if (!out.active) return;
    out.active = false;
    flight.record(obs::FlightEventKind::kChunkLost, engine.now(),
                  static_cast<std::uint32_t>(w), out.range.first, out.range.count);
    if (config.collect_trace) {
      result.run.events.push_back(
          {LifecycleEvent::Kind::kChunkLost, engine.now(), w, out.range.count});
    }
    if (out.lost) {
      result.run.faults.chunks_lost += 1;
      const double detect_latency =
          std::max(0.0, engine.now() - prepared.workers[w].crash_time);
      result.run.faults.detection_latency_total += detect_latency;
      result.run.faults.max_detection_latency =
          std::max(result.run.faults.max_detection_latency, detect_latency);
      double wasted = out.start_time - out.dispatch_time;
      if (out.start_time < engine.now()) {
        wasted += prepared.workers[w].availability->work_delivered(out.start_time, engine.now());
      }
      result.run.faults.wasted_work += wasted;
      if (out.speculative) result.run.speculation.backups_lost += 1;
    } else {
      // False suspicion (or an undelivered hardened assignment): the range
      // is re-dispatched and any late report will be dropped — a reclaimed
      // backup copy resolves as cancelled (the worker is alive), keeping
      // the launched == won + cancelled + lost identity intact.
      if (out.speculative) result.run.speculation.backups_cancelled += 1;
      if (config.collect_trace && out.trace_index >= 0) {
        // Mark the entry so it no longer counts as delivered work (the
        // chaos harness reconstructs exactly-once coverage from the trace).
        result.run.trace[static_cast<std::size_t>(out.trace_index)].cancelled = true;
      }
    }
    if (out.has_partner && outstanding[out.partner].active &&
        outstanding[out.partner].id == out.partner_id) {
      return;  // the sibling copy still delivers the range
    }
    result.run.faults.iterations_reexecuted += out.range.count;
    pool.give_back(out.range);
    wake_idle();
  };

  // One timeout expiration for assignment `id` on worker w. Stale probes
  // (the report arrived, the chunk was already reclaimed, or the master
  // that armed the timer crashed) are no-ops.
  std::function<void(std::size_t, std::uint64_t, double, std::uint64_t)> probe_fire =
      [&](std::size_t w, std::uint64_t id, double interval, std::uint64_t epoch) {
        if (epoch != master_epoch) return;  // timer died with the old master
        Outstanding& out = outstanding[w];
        if (!out.active || out.id != id) return;
        out.probes += 1;
        flight.record(obs::FlightEventKind::kWorkerSuspected, engine.now(),
                      static_cast<std::uint32_t>(w), static_cast<std::int64_t>(out.probes));
        if (config.collect_trace) {
          result.run.events.push_back({LifecycleEvent::Kind::kWorkerSuspected, engine.now(),
                                       w, static_cast<std::int64_t>(out.probes)});
        }
        if (out.probes >= config.fault_detection.max_probes) {
          declared_dead[w] = 1;
          flight.record(obs::FlightEventKind::kWorkerDeclaredDead, engine.now(),
                        static_cast<std::uint32_t>(w));
          // An undelivered hardened assignment is a lost MESSAGE, not a
          // suspicion of a live worker mid-report.
          if (!out.lost && out.delivered) result.run.faults.false_suspicions += 1;
          CDSF_LOG_TRACE << "mpi master declares worker " << w << " dead at " << engine.now();
          if (config.collect_trace) {
            result.run.events.push_back(
                {LifecycleEvent::Kind::kWorkerDeclaredDead, engine.now(), w, 0});
          }
          reclaim_outstanding(w);
          return;
        }
        const double next = interval * config.fault_detection.backoff;
        engine.schedule_at(engine.now() + next, [&probe_fire, w, id, next, epoch] {
          probe_fire(w, id, next, epoch);
        });
      };

  // Arms the first dead-worker timeout for assignment `id` (detection on).
  auto arm_detection = [&](std::size_t w, std::uint64_t id, std::int64_t count,
                           double dispatch_time) {
    if (!detection) return;
    // Expected round trip from the master's a-priori knowledge: the
    // weight seed (observed availability) is all it has — the actual
    // availability path is exactly what it cannot see.
    const double expected_compute = static_cast<double>(count) * prepared.mean_iter *
                                    prepared.input_factor /
                                    std::max(prepared.params.weights[w], 0.05);
    const double timeout = std::max(config.fault_detection.min_timeout,
                                    timeout_scale[w] * config.fault_detection.timeout_factor *
                                        (expected_compute + 2.0 * messages.latency));
    const std::uint64_t epoch = master_epoch;
    engine.schedule_at(dispatch_time + timeout, [&probe_fire, w, id, timeout, epoch] {
      probe_fire(w, id, timeout, epoch);
    });
  };

  // Offers one message to the channel: applies the force-drop test hooks,
  // burst windows, and the per-direction drop / duplicate / reorder /
  // corrupt draws, then schedules `deliver` once per surviving copy. With a
  // clean channel this is exactly one delivery after the base latency.
  // Returns true when at least one copy went on the wire. `w`/`seq`
  // identify the message for the corruption trace only.
  auto channel_send = [&](bool to_worker, bool is_ack, std::size_t w, std::int64_t seq,
                          std::function<void()> deliver) {
    if (is_ack) {
      result.run.channel.acks_sent += 1;
    } else {
      result.run.channel.messages_sent += 1;
    }
    if (!unreliable) {
      engine.schedule_after(messages.latency, std::move(deliver));
      return true;
    }
    bool dropped = false;
    bool burst = false;
    std::size_t& force = to_worker ? force_drop_to_worker : force_drop_to_master;
    if (!is_ack && force > 0) {
      force -= 1;
      dropped = true;
    } else if (bursts && bursts->covers(engine.now())) {
      dropped = true;
      burst = true;
    } else {
      const double p = to_worker ? chan.drop_to_worker : chan.drop_to_master;
      if (p > 0.0 && channel_rng->uniform01() < p) dropped = true;
    }
    if (dropped) {
      result.run.channel.drops += 1;
      if (burst) result.run.channel.burst_drops += 1;
      return false;
    }
    const double dup_p = to_worker ? chan.duplicate_to_worker : chan.duplicate_to_master;
    const bool duplicated = dup_p > 0.0 && channel_rng->uniform01() < dup_p;
    if (duplicated) result.run.channel.duplicates += 1;
    const double reorder_p = to_worker ? chan.reorder_to_worker : chan.reorder_to_master;
    const double corrupt_p = to_worker ? chan.corrupt_to_worker : chan.corrupt_to_master;
    std::size_t& force_corrupt = to_worker ? force_corrupt_to_worker : force_corrupt_to_master;
    const std::size_t copies = duplicated ? 2 : 1;
    for (std::size_t c = 0; c < copies; ++c) {
      double delay = messages.latency;
      if (reorder_p > 0.0 && channel_rng->uniform01() < reorder_p) {
        result.run.channel.reorders += 1;
        delay += channel_rng->uniform(0.0, chan.reorder_delay);
      }
      // Payload corruption: the copy still travels, but its checksum fails
      // at the receiver — the frame is counted and DISCARDED there, never
      // processed, so no ack fires and the sender's retransmission loop
      // recovers it. A corrupted report can therefore never reach record().
      bool corrupt = false;
      if (!is_ack && force_corrupt > 0) {
        force_corrupt -= 1;
        corrupt = true;
      } else if (corrupt_p > 0.0 && channel_rng->uniform01() < corrupt_p) {
        corrupt = true;
      }
      if (corrupt) {
        engine.schedule_after(delay, [&, w, seq] {
          result.run.channel.corrupted += 1;
          result.run.channel.corrupt_discarded += 1;
          flight.record(obs::FlightEventKind::kMessageCorrupted, engine.now(),
                        static_cast<std::uint32_t>(w), seq);
          if (config.collect_trace) {
            result.run.events.push_back(
                {LifecycleEvent::Kind::kMessageCorrupted, engine.now(), w, seq});
          }
        });
        continue;
      }
      engine.schedule_after(delay, deliver);
    }
    return true;
  };

  // At-least-once sender: offers the message now and re-offers it with
  // exponential backoff until `resolved()` (the ack/reply arrived) or the
  // retry budget is spent. Master-side senders pass their epoch so pending
  // timers die with a master crash; worker-side senders pass epoch 0 and
  // instead stop when their own worker is down at the retry instant.
  std::function<void(bool, std::size_t, std::int64_t, double, std::size_t, std::uint64_t,
                     std::function<bool()>, std::function<void()>, std::function<void()>)>
      transmit = [&](bool to_worker, std::size_t w, std::int64_t seq, double rto,
                     std::size_t retries_left, std::uint64_t epoch,
                     std::function<bool()> resolved, std::function<void()> on_retransmit,
                     std::function<void()> deliver) {
        channel_send(to_worker, false, w, seq, deliver);
        engine.schedule_after(rto, [&, to_worker, w, seq, rto, retries_left, epoch,
                                    resolved = std::move(resolved),
                                    on_retransmit = std::move(on_retransmit),
                                    deliver = std::move(deliver)] {
          if (epoch != 0 && epoch != master_epoch) return;  // sender died with the master
          if (epoch == 0) {
            const detail::Worker& worker = prepared.workers[w];
            if (worker.crash_time <= engine.now() && engine.now() < worker.recovery_time) {
              return;  // the sending worker is down; its timers died with it
            }
          }
          if (resolved()) return;
          if (retries_left == 0) {
            result.run.channel.retransmits_abandoned += 1;
            return;
          }
          result.run.channel.retransmits += 1;
          flight.record(obs::FlightEventKind::kRetransmit, engine.now(),
                        static_cast<std::uint32_t>(w), seq);
          if (config.collect_trace) {
            result.run.events.push_back(
                {LifecycleEvent::Kind::kRetransmit, engine.now(), w, seq});
          }
          if (on_retransmit) on_retransmit();
          transmit(to_worker, w, seq, rto * chan.rto_backoff, retries_left - 1, epoch,
                   std::move(resolved), std::move(on_retransmit), std::move(deliver));
        });
      };

  // Appends one record to the master's write-ahead log (checkpointing only).
  auto wal_append = [&](WalRecord::Kind kind, std::size_t w, std::uint64_t seqno,
                        std::int64_t first, std::int64_t count) {
    if (!checkpointing) return;
    result.run.wal.push_back({kind, engine.now(), w, seqno, first, count});
    result.run.checkpoint.wal_records += 1;
    flight.record(obs::FlightEventKind::kWalAppend, engine.now(), obs::kFlightMasterTrack,
                  static_cast<std::int64_t>(seqno), count);
  };

  // Re-executes an accepted chunk on independent worker v and compares
  // (see loop_executor.cpp for the shared semantics). The replica is
  // side-channel validation traffic: it never enters the assignment
  // protocol, feeds neither record() nor the coverage accounting, and its
  // worker is simply busy until the verdict reaches the master one latency
  // after completion. A mismatch marks the ORIGINATING worker suspect.
  auto launch_audit = [&](std::size_t v, AuditJob job) {
    const double dispatch_time = engine.now();
    const double start_time = dispatch_time + messages.latency;
    const double work = prepared.input_factor *
                        detail::chunk_work(application, processor_type, prepared.mean_iter,
                                           prepared.stddev_iter, config.iteration_cov,
                                           job.range.first, job.range.count,
                                           *prepared.workers[v].rng);
    const double end_time = prepared.workers[v].availability->finish_time(start_time, work);
    const bool lost = start_time < prepared.workers[v].recovery_time &&
                      end_time > prepared.workers[v].crash_time;
    health.stats.audits_launched += 1;
    flight.record(obs::FlightEventKind::kAuditLaunched, dispatch_time,
                  static_cast<std::uint32_t>(v), job.range.first, job.range.count);
    if (config.collect_trace) {
      result.run.events.push_back(
          {LifecycleEvent::Kind::kAuditLaunched, dispatch_time, v, job.range.count});
      result.run.trace.push_back({v, job.range.count, dispatch_time, start_time, end_time,
                                  lost, job.range.first, false, false, false, true, false});
    }
    CDSF_LOG_TRACE << "mpi worker " << v << " audit " << job.range.count << " of worker "
                   << job.origin << " [" << dispatch_time << ", " << end_time << "]"
                   << (lost ? " LOST" : "");
    if (lost) {
      // The auditing worker crashes mid-replica; the verdict never lands
      // (its rejoin request, if any, re-enters it through the usual path).
      health.stats.audits_abandoned += 1;
      return;
    }
    auditing[v] = 1;
    const std::uint64_t epoch = ++audit_epoch[v];
    engine.schedule_at(
        end_time + messages.latency, [&, v, job, epoch, dispatch_time, start_time, end_time] {
          if (master_down || audit_epoch[v] != epoch || !auditing[v]) {
            return;  // the verdict died with the master (counted at restart)
          }
          auditing[v] = 0;
          WorkerStats& ws = result.run.workers[v];
          ws.busy_time += end_time - start_time;
          ws.overhead_time += start_time - dispatch_time;
          ws.finish_time = std::max(ws.finish_time, end_time);
          // The replica itself can be silently wrong when ITS worker is
          // gray — either wrongness makes the pair disagree.
          bool replica_wrong = false;
          const SimConfig::Failure* f = corrupt_failure[v];
          if (f != nullptr && end_time > f->time &&
              corrupt_rng->uniform01() < f->corrupt_probability) {
            replica_wrong = true;
          }
          if (job.original_wrong || replica_wrong) {
            health.stats.audit_mismatches += 1;
            flight.record(obs::FlightEventKind::kAuditMismatch, engine.now(),
                          static_cast<std::uint32_t>(job.origin), job.range.first,
                          job.range.count);
            if (config.collect_trace) {
              result.run.events.push_back({LifecycleEvent::Kind::kAuditMismatch, engine.now(),
                                           job.origin, job.range.count});
            }
            if (health.observe_mismatch(job.origin)) {
              health.quarantine(job.origin, engine.now(), /*audit_trip=*/true);
              flight.record(obs::FlightEventKind::kWorkerQuarantined, engine.now(),
                            static_cast<std::uint32_t>(job.origin), 1);
              if (config.collect_trace) {
                result.run.events.push_back(
                    {LifecycleEvent::Kind::kWorkerQuarantined, engine.now(), job.origin, 1});
              }
            }
          } else {
            health.stats.audits_matched += 1;
          }
          master_receive_request(v, 0);
        });
  };

  // Gray-failure hook at every ACCEPTED completion report: draws the
  // silent-wrongness ground truth, feeds the fail-slow EWMA (or the canary
  // recovery streak for probes), and enrolls a fraction of chunks for
  // audit. Mirrors complete_copy in loop_executor.cpp; corrupted frames
  // never reach this point (discarded at the checksum layer).
  auto observe_accepted = [&](std::size_t w, detail::IterationPool::Range range, bool probe,
                              double dispatch_time, double end_time) {
    if (!gray) return;
    const double now = engine.now();
    bool wrong = false;
    {
      const SimConfig::Failure* f = corrupt_failure[w];
      if (f != nullptr && end_time > f->time &&
          corrupt_rng->uniform01() < f->corrupt_probability) {
        wrong = true;
        health.stats.corrupt_chunks_recorded += 1;
      }
    }
    if (!quarantine_armed) return;
    // Dispatch-to-completion wall clock against the a-priori expectation
    // (one message latency covers the assignment's travel; the report trip
    // is not in the numerator).
    const double expected = detail::HealthTracker::expected_elapsed(
        messages.latency,
        prepared.input_factor * prepared.mean_iter * static_cast<double>(range.count),
        weight0[w]);
    const double slowdown = (end_time - dispatch_time) / expected;
    if (probe) {
      if (health.observe_probe(w, slowdown)) {
        health.reinstate(w, now);
        flight.record(obs::FlightEventKind::kWorkerRestored, now,
                      static_cast<std::uint32_t>(w));
        if (config.collect_trace) {
          result.run.events.push_back({LifecycleEvent::Kind::kWorkerRestored, now, w, 0});
        }
      }
      return;
    }
    if (health.observe(w, slowdown)) {
      health.quarantine(w, now, /*audit_trip=*/false);
      flight.record(obs::FlightEventKind::kWorkerQuarantined, now,
                    static_cast<std::uint32_t>(w), 0);
      if (config.collect_trace) {
        result.run.events.push_back({LifecycleEvent::Kind::kWorkerQuarantined, now, w, 0});
      }
    }
    if (audit_rng && audit_rng->uniform01() < config.quarantine.audit_rate) {
      audits_waiting.push_back(AuditJob{range, w, wrong});
      // Wake one idle eligible worker for the replica (the originator
      // cannot audit itself; quarantined workers stay benched).
      for (std::size_t v = 0; v < processors; ++v) {
        if (idle[v] && !declared_dead[v] && v != w && !health.quarantined(v)) {
          idle[v] = 0;
          master_receive_request(v, 0);
          break;
        }
      }
    }
  };

  auto master_receive_ack = [&](std::size_t w, std::uint64_t id) {
    if (master_down) return;
    if (id <= assign_acked_seq[w]) return;  // duplicate ack
    assign_acked_seq[w] = id;
    wal_append(WalRecord::Kind::kAck, w, id, 0, 0);
  };

  // The partner of an accepted report lost the race: drop its (pending)
  // report, charge the sunk work, and bring the worker back into the loop.
  // The cancel notice itself is abstracted to the master's instant (in the
  // hardened protocol it also annihilates in-flight report copies via
  // cancelled_seq); the loser's next request pays the message latencies.
  auto cancel_partner = [&](std::size_t v) {
    Outstanding& out = outstanding[v];
    out.active = false;
    const double now = engine.now();
    if (out.lost) {
      // The losing copy was already stranded by its worker's crash: the
      // winner resolves the race, but the copy is accounted as LOST (as the
      // reclaim path would do), not cancelled — there is no report to
      // cancel, no cancel notice to deliver, and no request to solicit.
      result.run.faults.chunks_lost += 1;
      double wasted = std::min(messages.latency, std::max(0.0, now - out.dispatch_time));
      const double stop = std::min(now, out.end_time);
      if (out.start_time < stop) {
        wasted += prepared.workers[v].availability->work_delivered(out.start_time, stop);
      }
      result.run.faults.wasted_work += wasted;
      if (out.speculative) result.run.speculation.backups_lost += 1;
      flight.record(obs::FlightEventKind::kChunkLost, now, static_cast<std::uint32_t>(v),
                    out.range.first, out.range.count);
      if (config.collect_trace) {
        result.run.events.push_back(
            {LifecycleEvent::Kind::kChunkLost, now, v, out.range.count});
      }
      return;
    }
    if (hardened) cancelled_seq[v] = std::max(cancelled_seq[v], out.id);
    engine.cancel(out.report_event);
    if (out.speculative) {
      result.run.speculation.backups_cancelled += 1;
    } else {
      result.run.speculation.primaries_cancelled += 1;
    }
    double sunk = std::min(messages.latency, std::max(0.0, now - out.dispatch_time));
    const double stop = std::min(now, out.end_time);
    if (out.start_time < stop) {
      sunk += prepared.workers[v].availability->work_delivered(out.start_time, stop);
    }
    result.run.speculation.cancelled_work += sunk;
    flight.record(obs::FlightEventKind::kChunkCancelled, now,
                  static_cast<std::uint32_t>(v), out.range.first, out.range.count);
    if (config.collect_trace) {
      result.run.events.push_back(
          {LifecycleEvent::Kind::kChunkCancelled, now, v, out.range.count});
      if (out.trace_index >= 0) {
        ChunkTraceEntry& entry = result.run.trace[static_cast<std::size_t>(out.trace_index)];
        entry.cancelled = true;
        entry.end_time = std::min(now, entry.end_time);
      }
    }
    const double receive = now + messages.latency;
    if (!(prepared.workers[v].crash_time <= receive &&
          receive < prepared.workers[v].recovery_time)) {
      if (hardened) {
        engine.schedule_at(receive, [&, v] {
          if (!declared_dead[v]) worker_send_request(v, false);
        });
      } else {
        engine.schedule_at(receive + messages.latency, [&, v] {
          if (!declared_dead[v]) master_receive_request(v, 0);
        });
      }
    }
  };

  // Two-stage report chain for assignment `id` on worker w: computation
  // completes at end_time, the report reaches the master one latency later.
  // Both stages are cancellable so a losing speculated copy can be stopped;
  // out.report_event always holds the currently-pending stage.
  // (Reliable-channel managed mode only; the hardened protocol routes
  // reports through worker_send_report instead.)
  std::function<void(std::size_t, std::uint64_t)> schedule_report =
      [&](std::size_t w, std::uint64_t id) {
        const double start_time = outstanding[w].start_time;
        const double end_time = outstanding[w].end_time;
        const Engine::EventId first_stage =
            engine.schedule_cancellable_at(end_time, [&, w, id, start_time, end_time] {
              const Engine::EventId second_stage = engine.schedule_cancellable_at(
                  engine.now() + messages.latency, [&, w, id, start_time, end_time] {
                    Outstanding& out = outstanding[w];
                    if (!out.active || out.id != id) {
                      // Late report from a falsely-suspected worker: its
                      // iterations were already re-dispatched, so the result
                      // is dropped — but the worker is clearly alive, so
                      // reinstate it.
                      result.run.faults.wasted_work +=
                          prepared.workers[w].availability->work_delivered(start_time,
                                                                           end_time);
                      if (declared_dead[w]) {
                        declared_dead[w] = 0;
                        timeout_scale[w] *= 2.0;
                        flight.record(obs::FlightEventKind::kWorkerReinstated, engine.now(),
                                      static_cast<std::uint32_t>(w));
                        if (config.collect_trace) {
                          result.run.events.push_back(
                              {LifecycleEvent::Kind::kWorkerReinstated, engine.now(), w, 0});
                        }
                        master_receive_request(w, 0);
                      }
                      return;
                    }
                    out.active = false;
                    WorkerStats& ws = result.run.workers[w];
                    ws.chunks += 1;
                    ws.iterations += out.range.count;
                    ws.busy_time += out.end_time - out.start_time;
                    ws.overhead_time += out.start_time - out.dispatch_time;
                    ws.finish_time = out.end_time;
                    result.run.total_chunks += 1;
                    result.run.makespan = std::max(result.run.makespan, out.end_time);
                    completed += out.range.count;
                    flight.record(obs::FlightEventKind::kChunkAccepted, engine.now(),
                                  static_cast<std::uint32_t>(w), out.range.first,
                                  out.range.count);
                    if (out.speculative) {
                      result.run.speculation.backups_won += 1;
                      flight.record(obs::FlightEventKind::kBackupWon, engine.now(),
                                    static_cast<std::uint32_t>(w), out.range.first,
                                    out.range.count);
                    }
                    technique->record(dls::ChunkResult{w, out.range.count,
                                                       out.end_time - out.start_time,
                                                       out.end_time - out.dispatch_time});
                    observe_accepted(w, out.range, out.probe, out.dispatch_time,
                                     out.end_time);
                    if (out.has_partner && outstanding[out.partner].active &&
                        outstanding[out.partner].id == out.partner_id) {
                      cancel_partner(out.partner);
                    }
                    master_receive_request(w, 0);
                  });
              Outstanding& out = outstanding[w];
              if (out.active && out.id == id) out.report_event = second_stage;
            });
        outstanding[w].report_event = first_stage;
      };

  // Hardened protocol: one completion report arriving at the master. Every
  // copy is acked (the previous ack may have dropped); duplicates are
  // suppressed by sequence dedup so record() is never double-fed.
  auto master_receive_report = [&](std::size_t w, std::uint64_t id, double start_time,
                                   double end_time, detail::IterationPool::Range range,
                                   double dispatch_time) {
    if (master_down) return;          // lost with the master; the worker retransmits
    if (cancelled_seq[w] >= id) return;  // cancelled loser: already resolved
    channel_send(true, true, w, static_cast<std::int64_t>(id), [&, w, id] {
      if (id > report_acked_seq[w]) report_acked_seq[w] = id;
    });
    if (id <= processed_seq[w]) {
      result.run.channel.dedup_hits += 1;
      flight.record(obs::FlightEventKind::kDedupHit, engine.now(),
                    static_cast<std::uint32_t>(w), static_cast<std::int64_t>(id));
      if (config.collect_trace) {
        result.run.events.push_back({LifecycleEvent::Kind::kDedupHit, engine.now(), w,
                                     static_cast<std::int64_t>(id)});
      }
      return;
    }
    processed_seq[w] = id;
    Outstanding& out = outstanding[w];
    if (!out.active || out.id != id) {
      // Late report from a reclaimed assignment (false suspicion or master
      // restart re-dispatch): the range was re-dispatched, drop the result.
      result.run.faults.wasted_work +=
          prepared.workers[w].availability->work_delivered(start_time, end_time);
      if (declared_dead[w]) {
        declared_dead[w] = 0;
        timeout_scale[w] *= 2.0;
        flight.record(obs::FlightEventKind::kWorkerReinstated, engine.now(),
                      static_cast<std::uint32_t>(w));
        if (config.collect_trace) {
          result.run.events.push_back(
              {LifecycleEvent::Kind::kWorkerReinstated, engine.now(), w, 0});
        }
      }
      // The worker is alive and idle either way — bring it back into the
      // loop (a restart reclaim can orphan a live worker the same way a
      // false suspicion does).
      if (!outstanding[w].active) master_receive_request(w, 0);
      return;
    }
    out.active = false;
    WorkerStats& ws = result.run.workers[w];
    ws.chunks += 1;
    ws.iterations += out.range.count;
    ws.busy_time += end_time - start_time;
    ws.overhead_time += start_time - dispatch_time;
    ws.finish_time = end_time;
    result.run.total_chunks += 1;
    result.run.makespan = std::max(result.run.makespan, end_time);
    completed += out.range.count;
    flight.record(obs::FlightEventKind::kChunkAccepted, engine.now(),
                  static_cast<std::uint32_t>(w), out.range.first, out.range.count);
    if (out.speculative) {
      result.run.speculation.backups_won += 1;
      flight.record(obs::FlightEventKind::kBackupWon, engine.now(),
                    static_cast<std::uint32_t>(w), out.range.first, out.range.count);
    }
    technique->record(
        dls::ChunkResult{w, out.range.count, end_time - start_time, end_time - dispatch_time});
    wal_append(WalRecord::Kind::kComplete, w, id, range.first, range.count);
    observe_accepted(w, out.range, out.probe, dispatch_time, end_time);
    if (out.has_partner && outstanding[out.partner].active &&
        outstanding[out.partner].id == out.partner_id) {
      cancel_partner(out.partner);
    }
    master_receive_request(w, 0);
  };

  // Hardened protocol: the worker's report retransmits until the master's
  // report-ack lands (or the chunk is cancelled by the speculation race).
  auto worker_send_report = [&](std::size_t w, std::uint64_t id, double start_time,
                                double end_time, detail::IterationPool::Range range,
                                double dispatch_time) {
    transmit(false, w, static_cast<std::int64_t>(id), chan.rto, chan.max_retransmits, 0,
             [&, w, id] { return report_acked_seq[w] >= id || cancelled_seq[w] >= id; },
             nullptr,
             [&, w, id, start_time, end_time, range, dispatch_time] {
               master_receive_report(w, id, start_time, end_time, range, dispatch_time);
             });
  };

  // Hardened protocol: one assignment delivery at the worker. The work draw
  // happens HERE (computation starts at first delivery); every delivery is
  // acked, and a re-delivered assignment is never executed twice.
  worker_receive_assignment = [&](std::size_t w, std::uint64_t id, std::uint64_t rseq,
                                  detail::IterationPool::Range range, double dispatch_time) {
    const detail::Worker& worker = prepared.workers[w];
    const double now = engine.now();
    if (worker.crash_time <= now && now < worker.recovery_time) return;  // down: lost
    if (rseq > reply_seq[w]) reply_seq[w] = rseq;  // the assignment answers the request
    channel_send(false, true, w, static_cast<std::int64_t>(id),
                 [&, w, id] { master_receive_ack(w, id); });
    if (id <= cancelled_seq[w]) return;  // cancelled before it arrived
    if (id <= executed_seq[w]) {
      result.run.channel.dedup_hits += 1;
      flight.record(obs::FlightEventKind::kDedupHit, now, static_cast<std::uint32_t>(w),
                    static_cast<std::int64_t>(id));
      if (config.collect_trace) {
        result.run.events.push_back(
            {LifecycleEvent::Kind::kDedupHit, now, w, static_cast<std::int64_t>(id)});
      }
      return;
    }
    executed_seq[w] = id;
    const double start_time = now;
    const double work = prepared.input_factor *
                        detail::chunk_work(application, processor_type, prepared.mean_iter,
                                           prepared.stddev_iter, config.iteration_cov,
                                           range.first, range.count, *worker.rng);
    const double end_time = worker.availability->finish_time(start_time, work);
    const bool lost = start_time < worker.recovery_time && end_time > worker.crash_time;
    Outstanding& out = outstanding[w];
    const bool tracked = out.active && out.id == id;
    if (tracked) {
      out.delivered = true;
      out.lost = lost;
      out.start_time = start_time;
      out.end_time = end_time;
      if (out.trace_index >= 0) {
        ChunkTraceEntry& entry = result.run.trace[static_cast<std::size_t>(out.trace_index)];
        entry.start_time = start_time;
        entry.end_time = end_time;
        entry.lost = lost;
      }
    }
    CDSF_LOG_TRACE << "mpi worker " << w << " chunk " << range.count << " delivered ["
                   << start_time << ", " << end_time << "]" << (lost ? " LOST" : "");
    if (lost) return;  // the worker dies mid-chunk: no report, ever
    const Engine::EventId compute_done = engine.schedule_cancellable_at(
        end_time, [&, w, id, start_time, end_time, range, dispatch_time] {
          Outstanding& cur = outstanding[w];
          if (cur.active && cur.id == id) cur.report_event = Engine::kNoEvent;
          if (cancelled_seq[w] >= id) return;  // lost the race mid-compute
          worker_send_report(w, id, start_time, end_time, range, dispatch_time);
        });
    if (tracked) out.report_event = compute_done;
  };

  // Hardened dispatch: the assignment is logged to the WAL, travels through
  // the unreliable channel, and retransmits with backoff until the worker's
  // ack lands. Returns the assignment sequence number.
  dispatch_hardened = [&](std::size_t w, detail::IterationPool::Range range,
                          std::uint64_t rseq, bool speculative, std::size_t partner,
                          std::uint64_t partner_id, bool probe) -> std::uint64_t {
    const double dispatch_time = engine.now();
    const std::uint64_t id = ++next_id[w];
    Outstanding out;
    out.active = true;
    out.lost = false;
    out.delivered = false;
    out.range = range;
    out.dispatch_time = dispatch_time;
    out.start_time = dispatch_time;  // provisional until the delivery lands
    out.end_time = dispatch_time;
    out.id = id;
    out.speculative = speculative;
    out.probe = probe;
    if (speculative) {
      out.has_partner = true;
      out.partner = partner;
      out.partner_id = partner_id;
    }
    if (config.collect_trace) {
      out.trace_index = static_cast<std::ptrdiff_t>(result.run.trace.size());
      result.run.trace.push_back({w, range.count, dispatch_time, dispatch_time, dispatch_time,
                                  false, range.first, speculative, false, false, false,
                                  probe});
      if (speculative) {
        result.run.events.push_back(
            {LifecycleEvent::Kind::kChunkBackup, dispatch_time, w, range.count});
      }
    }
    outstanding[w] = out;
    flight.record(speculative ? obs::FlightEventKind::kBackupLaunched
                              : obs::FlightEventKind::kChunkDispatched,
                  dispatch_time, static_cast<std::uint32_t>(w), range.first, range.count);
    wal_append(WalRecord::Kind::kAssign, w, id, range.first, range.count);
    CDSF_LOG_TRACE << "mpi worker " << w
                   << (speculative ? " backup " : probe ? " canary " : " chunk ")
                   << range.count << " dispatched at " << dispatch_time;
    arm_detection(w, id, range.count, dispatch_time);
    if (speculate && !speculative && !probe) {
      // Canaries are exempt from straggler speculation: the quarantined
      // worker is deliberately running this chunk, so a backup would defeat
      // the measurement.
      arm_straggler_check(w, id, range.count, dispatch_time + messages.latency);
    }
    transmit(true, w, static_cast<std::int64_t>(id), chan.rto, chan.max_retransmits,
             master_epoch,
             [&, w, id] {
               return assign_acked_seq[w] >= id || !outstanding[w].active ||
                      outstanding[w].id != id;
             },
             [&, w, id] {
               if (config.collect_trace && outstanding[w].active &&
                   outstanding[w].id == id && outstanding[w].trace_index >= 0) {
                 result.run.trace[static_cast<std::size_t>(outstanding[w].trace_index)]
                     .retransmitted = true;
               }
             },
             [&, w, id, rseq, range, dispatch_time] {
               worker_receive_assignment(w, id, rseq, range, dispatch_time);
             });
    return id;
  };

  // Runs a straggler assignment's range a second time on idle worker v.
  auto launch_backup = [&](std::size_t v, std::size_t w, std::uint64_t id,
                           std::uint64_t rseq) {
    Outstanding& primary = outstanding[w];
    const detail::IterationPool::Range range = primary.range;
    if (hardened) {
      const std::uint64_t backup_id =
          dispatch_hardened(v, range, rseq, true, w, id, /*probe=*/false);
      primary.has_partner = true;
      primary.partner = v;
      primary.partner_id = backup_id;
      result.run.speculation.backups_launched += 1;
      return;
    }
    const double dispatch_time = engine.now();
    const double start_time = dispatch_time + messages.latency;
    const double work = prepared.input_factor *
                        detail::chunk_work(application, processor_type, prepared.mean_iter,
                                           prepared.stddev_iter, config.iteration_cov,
                                           range.first, range.count,
                                           *prepared.workers[v].rng);
    const double end_time = prepared.workers[v].availability->finish_time(start_time, work);
    const bool lost = start_time < prepared.workers[v].recovery_time &&
                      end_time > prepared.workers[v].crash_time;
    const std::uint64_t backup_id = ++next_id[v];
    Outstanding out;
    out.active = true;
    out.lost = lost;
    out.range = range;
    out.dispatch_time = dispatch_time;
    out.start_time = start_time;
    out.end_time = end_time;
    out.id = backup_id;
    out.speculative = true;
    out.has_partner = true;
    out.partner = w;
    out.partner_id = id;
    if (config.collect_trace) {
      out.trace_index = static_cast<std::ptrdiff_t>(result.run.trace.size());
      result.run.trace.push_back(
          {v, range.count, dispatch_time, start_time, end_time, lost, range.first, true,
           false});
      result.run.events.push_back(
          {LifecycleEvent::Kind::kChunkBackup, dispatch_time, v, range.count});
    }
    outstanding[v] = out;
    primary.has_partner = true;
    primary.partner = v;
    primary.partner_id = backup_id;
    result.run.speculation.backups_launched += 1;
    flight.record(obs::FlightEventKind::kBackupLaunched, dispatch_time,
                  static_cast<std::uint32_t>(v), range.first, range.count);
    CDSF_LOG_TRACE << "mpi worker " << v << " backup " << range.count << " ["
                   << dispatch_time << ", " << end_time << "]" << (lost ? " LOST" : "");
    arm_detection(v, backup_id, range.count, dispatch_time);
    if (lost) return;  // the worker dies mid-backup: no report, ever
    schedule_report(v, backup_id);
  };

  // Straggler monitor for assignment `id`: fires once the chunk's elapsed
  // time exceeds mu + quantile * sigma of its expected completion (the
  // technique's runtime estimate when it has one, the a-priori weight
  // otherwise) and launches a backup on an idle worker — or queues the
  // assignment for the next worker that goes idle.
  arm_straggler_check = [&](std::size_t w, std::uint64_t id, std::int64_t count,
                            double start_time) {
    double mu_it = technique->estimated_iteration_time(w);
    if (!(mu_it > 0.0)) {
      mu_it = prepared.input_factor * prepared.mean_iter /
              std::max(prepared.params.weights[w], 0.05);
    }
    const double n = static_cast<double>(count);
    const double threshold =
        std::max(config.speculation.min_elapsed,
                 mu_it * n +
                     quantile * prepared.input_factor * prepared.stddev_iter * std::sqrt(n));
    engine.schedule_at(start_time + threshold + messages.latency, [&, w, id] {
      Outstanding& out = outstanding[w];
      if (!out.active || out.id != id || out.has_partner) return;
      result.run.speculation.stragglers_flagged += 1;
      flight.record(obs::FlightEventKind::kStragglerFlagged, engine.now(),
                    static_cast<std::uint32_t>(w), out.range.first, out.range.count);
      if (config.collect_trace) {
        result.run.events.push_back(
            {LifecycleEvent::Kind::kChunkStraggler, engine.now(), w, out.range.count});
      }
      for (std::size_t v = 0; v < processors; ++v) {
        if (idle[v] && !declared_dead[v] &&
            !(quarantine_armed && health.quarantined(v))) {
          idle[v] = 0;
          launch_backup(v, w, id, 0);
          return;
        }
      }
      stragglers.emplace_back(w, id);  // next idle worker picks it up
    });
  };

  // Hardened protocol: notify a requesting worker that the pool is empty
  // (so its request retries stop). Delivered best-effort; a lost notice is
  // re-sent when the retried request arrives.
  auto send_bench = [&](std::size_t w, std::uint64_t rseq) {
    channel_send(true, false, w, static_cast<std::int64_t>(rseq), [&, w, rseq] {
      const detail::Worker& worker = prepared.workers[w];
      const double now = engine.now();
      if (worker.crash_time <= now && now < worker.recovery_time) return;
      if (rseq > reply_seq[w]) reply_seq[w] = rseq;
    });
  };

  // Hardened protocol: request arrival at the master. At-least-once
  // delivery means the same request (sequence rseq) can arrive several
  // times; a duplicate must re-trigger the REPLY (assignment or bench
  // notice), never a second assignment.
  master_handle_request = [&](std::size_t w, std::uint64_t rseq, bool rejoin) {
    if (master_down) return;  // lost with the master; the worker retransmits
    if (rejoin) declared_dead[w] = 0;
    if (declared_dead[w]) {
      // A request is proof of life: the worker outlived its declared death
      // (its assignment was lost on the channel — e.g. in a burst window —
      // and the expired timeout was charged to the worker). Reinstate it
      // and escalate its timeout like the late-report path does; without
      // this, every wrongful death permanently removes a live worker and
      // enough of them strand the run.
      declared_dead[w] = 0;
      timeout_scale[w] *= 2.0;
      flight.record(obs::FlightEventKind::kWorkerReinstated, engine.now(),
                    static_cast<std::uint32_t>(w));
      if (config.collect_trace) {
        result.run.events.push_back(
            {LifecycleEvent::Kind::kWorkerReinstated, engine.now(), w, 0});
      }
    }
    Outstanding& out = outstanding[w];
    if (out.active && rejoin &&
        out.dispatch_time < prepared.workers[w].recovery_time) {
      // The rejoin request reveals that the pre-crash assignment died with
      // the worker (even when timeout detection is off).
      reclaim_outstanding(w);
      master_receive_request(w, rseq);
      return;
    }
    if (service_pending[w]) {
      // The previous copy of this request is already queued for service;
      // the assignment it produces will answer this sequence too.
      result.run.channel.dedup_hits += 1;
      flight.record(obs::FlightEventKind::kDedupHit, engine.now(),
                    static_cast<std::uint32_t>(w), static_cast<std::int64_t>(rseq));
      if (config.collect_trace) {
        result.run.events.push_back({LifecycleEvent::Kind::kDedupHit, engine.now(), w,
                                     static_cast<std::int64_t>(rseq)});
      }
      return;
    }
    if (out.active) {
      // Duplicate or retransmitted request while an assignment is in
      // flight: the worker clearly missed the reply — resend it instead of
      // double-assigning.
      result.run.channel.dedup_hits += 1;
      result.run.channel.retransmits += 1;
      flight.record(obs::FlightEventKind::kRetransmit, engine.now(),
                    static_cast<std::uint32_t>(w), static_cast<std::int64_t>(out.id));
      if (config.collect_trace) {
        result.run.events.push_back({LifecycleEvent::Kind::kRetransmit, engine.now(), w,
                                     static_cast<std::int64_t>(out.id)});
        if (out.trace_index >= 0) {
          result.run.trace[static_cast<std::size_t>(out.trace_index)].retransmitted = true;
        }
      }
      const std::uint64_t id = out.id;
      const detail::IterationPool::Range range = out.range;
      const double dispatch_time = out.dispatch_time;
      channel_send(true, false, w, static_cast<std::int64_t>(id),
                   [&, w, id, rseq, range, dispatch_time] {
                     worker_receive_assignment(w, id, rseq, range, dispatch_time);
                   });
      return;
    }
    if (idle[w]) {
      // Benched worker re-requesting: the bench notice was lost — resend.
      result.run.channel.dedup_hits += 1;
      flight.record(obs::FlightEventKind::kDedupHit, engine.now(),
                    static_cast<std::uint32_t>(w), static_cast<std::int64_t>(rseq));
      send_bench(w, rseq);
      return;
    }
    master_receive_request(w, rseq);
  };

  // Hardened protocol: a worker-initiated request (loop kick, rejoin, or
  // post-cancel re-entry) with its own retransmission loop — resolved by
  // the assignment or bench notice that answers it.
  worker_send_request = [&](std::size_t w, bool rejoin) {
    const std::uint64_t rseq = ++request_seq[w];
    transmit(false, w, static_cast<std::int64_t>(rseq), chan.rto, chan.max_retransmits, 0,
             [&, w, rseq] { return reply_seq[w] >= rseq; }, nullptr,
             [&, w, rseq, rejoin] { master_handle_request(w, rseq, rejoin); });
  };

  // The master serializes request handling; each handled request either
  // assigns a chunk (reply travels back with one latency) or retires the
  // worker. Completion reports carry the technique feedback. `rseq` is the
  // hardened protocol's request sequence (0 for master-initiated service,
  // which sends no bench notice).
  master_receive_request = [&](std::size_t w, std::uint64_t rseq) {
    const double arrival = engine.now();
    const double service_start = std::max(arrival, master_free_at);
    const double wait = service_start - arrival;
    result.master.queue_wait_time += wait;
    result.master.max_queue_wait = std::max(result.master.max_queue_wait, wait);
    master_free_at = service_start + messages.master_service_time;
    result.master.requests_handled += 1;
    result.master.busy_time += messages.master_service_time;
    if (hardened) service_pending[w] = 1;

    engine.schedule_at(master_free_at, [&, w, rseq] {
      service_pending[w] = 0;
      if (master_down) return;  // the master died mid-service
      WorkerStats& stats = result.run.workers[w];
      if (declared_dead[w]) return;
      const bool probe = quarantine_armed && probe_pending[w] != 0;
      if (probe) probe_pending[w] = 0;
      if (quarantine_armed && !probe && health.quarantined(w)) {
        // Drained: no pool work, no backups, no audits. Canary probes
        // arrive through the probe timer; the bench notice stops a hardened
        // worker's request retries. Deliberately NOT marked idle[], so the
        // wake / straggler-host / audit scans skip this worker.
        if (hardened && rseq > 0) send_bench(w, rseq);
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }
      if (quarantine_armed && auditing[w] != 0) {
        // Mid-audit duplicate service (e.g. the worker's request retry —
        // an audit sends it no reply): the worker is busy with the replica.
        // Bench the retry so its request loop resolves; the verdict
        // re-enters it through the usual request path. Launching anything
        // here would double-book the worker and orphan the first verdict.
        if (hardened && rseq > 0) send_bench(w, rseq);
        return;
      }
      const std::int64_t pending = pool.pending();
      if (pending <= 0) {
        if (probe) return;  // nothing left to probe with; keep waiting
        // Fresh work always outranks speculation, so backups only launch
        // when the pool is empty.
        if (speculate) {
          while (!stragglers.empty()) {
            const auto [pw, pid] = stragglers.front();
            const Outstanding& pout = outstanding[pw];
            if (!pout.active || pout.id != pid || pout.has_partner) {
              stragglers.pop_front();  // stale: the report won the race
              continue;
            }
            stragglers.pop_front();
            launch_backup(w, pw, pid, rseq);
            return;
          }
        }
        // Audits run last of all (pure validation, never ahead of real
        // work); a worker never audits itself.
        if (quarantine_armed && !audits_waiting.empty()) {
          for (auto it = audits_waiting.begin(); it != audits_waiting.end(); ++it) {
            if (it->origin == w) continue;
            const AuditJob job = *it;
            audits_waiting.erase(it);
            launch_audit(w, job);
            return;
          }
        }
        // Managed mode: stay wakeable — a reclaim may refill the pool.
        if (managed) idle[w] = 1;
        if (hardened && rseq > 0) send_bench(w, rseq);
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }
      const dls::SchedulingContext ctx{pending, w, engine.now()};
      std::int64_t chunk = technique->next_chunk(ctx);
      if (chunk <= 0) {
        if (probe) {
          chunk = 1;  // plan spent; a single iteration still probes
        } else if (!crash_mode && !hardened) {
          stats.finish_time = std::max(stats.finish_time, engine.now());
          return;
        } else {
          // Fault-tolerant fallback: the technique's plan is spent but
          // reclaimed iterations are pending — drain them in equal shares.
          std::size_t alive = 0;
          for (std::size_t v = 0; v < processors; ++v) alive += declared_dead[v] ? 0u : 1u;
          const auto alive64 = static_cast<std::int64_t>(alive);
          chunk = (pending + alive64 - 1) / alive64;
        }
      }
      const detail::IterationPool::Range range = pool.take(chunk);
      if (range.count <= 0) {
        if (probe) return;  // nothing left to probe with; keep waiting
        if (managed) idle[w] = 1;
        if (hardened && rseq > 0) send_bench(w, rseq);
        stats.finish_time = std::max(stats.finish_time, engine.now());
        return;
      }
      if (probe) {
        health.stats.probes_launched += 1;
        flight.record(obs::FlightEventKind::kCanaryProbe, engine.now(),
                      static_cast<std::uint32_t>(w), range.first, range.count);
        if (config.collect_trace) {
          result.run.events.push_back(
              {LifecycleEvent::Kind::kQuarantineProbe, engine.now(), w, range.count});
        }
      }

      if (hardened) {
        (void)dispatch_hardened(w, range, rseq, false, 0, 0, probe);
        return;
      }

      // Assignment message travels to the worker; computation starts on
      // arrival (the scheduling_overhead of the abstract model is the
      // message round trip here, so it is NOT charged again).
      const double dispatch_time = engine.now();
      const double start_time = dispatch_time + messages.latency;
      const double work = prepared.input_factor *
                          detail::chunk_work(application, processor_type, prepared.mean_iter,
                                             prepared.stddev_iter, config.iteration_cov,
                                             range.first, range.count,
                                             *prepared.workers[w].rng);
      const double end_time = prepared.workers[w].availability->finish_time(start_time, work);
      // Physically stranded iff the worker's outage touches the chunk's
      // lifetime: assigned before (or into) the outage and not finished by
      // the crash. A permanent crash makes end_time +infinity, which also
      // lands here.
      const bool lost = start_time < prepared.workers[w].recovery_time &&
                        end_time > prepared.workers[w].crash_time;

      const std::ptrdiff_t trace_index =
          config.collect_trace ? static_cast<std::ptrdiff_t>(result.run.trace.size()) : -1;
      if (config.collect_trace) {
        result.run.trace.push_back(
            {w, range.count, dispatch_time, start_time, end_time, lost, range.first, false,
             false, false, false, probe});
      }
      flight.record(obs::FlightEventKind::kChunkDispatched, dispatch_time,
                    static_cast<std::uint32_t>(w), range.first, range.count);
      CDSF_LOG_TRACE << "mpi worker " << w << (probe ? " canary " : " chunk ") << range.count
                     << " [" << dispatch_time << ", " << end_time << "]"
                     << (lost ? " LOST" : "");

      if (!managed) {
        // Legacy protocol (bit-identical): account at dispatch, report
        // always arrives.
        stats.chunks += 1;
        stats.iterations += range.count;
        stats.busy_time += end_time - start_time;
        stats.overhead_time += start_time - dispatch_time;
        result.run.total_chunks += 1;
        engine.schedule_at(end_time, [&, w, range, start_time, dispatch_time, end_time] {
          result.run.workers[w].finish_time = end_time;
          result.run.makespan = std::max(result.run.makespan, end_time);
          // Completion report + next request reach the master one latency
          // later; the feedback is recorded when the master RECEIVES it.
          engine.schedule_after(messages.latency, [&, w, range, start_time, dispatch_time,
                                                   end_time] {
            technique->record(dls::ChunkResult{w, range.count, end_time - start_time,
                                               end_time - dispatch_time});
            flight.record(obs::FlightEventKind::kChunkAccepted, engine.now(),
                          static_cast<std::uint32_t>(w), range.first, range.count);
            master_receive_request(w, 0);
          });
        });
        return;
      }

      // Managed mode (crashes and/or speculation): account only ACCEPTED
      // completion reports, so lost, falsely-suspected (late-report), and
      // cancelled-loser chunks never pollute the worker stats or the
      // technique's adaptive weights.
      const std::uint64_t id = ++next_id[w];
      Outstanding out;
      out.active = true;
      out.lost = lost;
      out.range = range;
      out.dispatch_time = dispatch_time;
      out.start_time = start_time;
      out.end_time = end_time;
      out.id = id;
      out.probe = probe;
      out.trace_index = trace_index;
      outstanding[w] = out;
      arm_detection(w, id, range.count, dispatch_time);
      if (speculate && !probe) arm_straggler_check(w, id, range.count, start_time);
      if (lost) return;  // the worker dies mid-chunk: no report, ever
      schedule_report(w, id);
    });
  };

  // Master restart: rebuild the coordinator's volatile state from the
  // write-ahead log. Assignments without an ack may never have left the
  // wire — reclaim and re-dispatch them; acked-but-incomplete assignments
  // stay outstanding (their reports are still good); completions are
  // replayed into the dedup table so a finished chunk is never re-recorded.
  auto master_restart = [&] {
    const double now = engine.now();
    master_down = false;
    master_free_at = std::max(master_free_at, now);
    result.run.checkpoint.master_restarts += 1;
    flight.record(obs::FlightEventKind::kMasterRestarted, now, obs::kFlightMasterTrack,
                  static_cast<std::int64_t>(master_epoch));
    // A restart before the loop kicked off (crash inside the serial phase)
    // has nothing to reconcile and must NOT wake workers — the parallel
    // loop opens at serial_end, not at the master's recovery. A restart
    // after the loop drained likewise only logs itself.
    const bool loop_open = now >= serial_end && completed < application.parallel_iterations();
    // Suspicions, timeout escalation, and the bench list died with the old
    // master.
    std::fill(declared_dead.begin(), declared_dead.end(), 0);
    std::fill(timeout_scale.begin(), timeout_scale.end(), 1.0);
    std::fill(idle.begin(), idle.end(), 0);
    std::fill(service_pending.begin(), service_pending.end(), 0);
    stragglers.clear();
    // In-flight audit replicas and queued audit jobs died with the master
    // (the verdict table is volatile); their workers re-enter through the
    // restart wake below or their own requests. Queued jobs were never
    // dispatched, so only the in-flight replicas count as abandoned. The
    // health/quarantine state itself is snapshot-durable and survives the
    // restart.
    for (std::size_t w = 0; w < processors; ++w) {
      if (auditing[w]) {
        auditing[w] = 0;
        health.stats.audits_abandoned += 1;
      }
    }
    audits_waiting.clear();
    std::fill(probe_pending.begin(), probe_pending.end(), 0);
    std::vector<std::uint64_t> last_assign(processors, 0);
    std::vector<std::uint64_t> last_ack(processors, 0);
    std::vector<std::uint64_t> last_complete(processors, 0);
    for (const WalRecord& rec : result.run.wal) {
      switch (rec.kind) {
        case WalRecord::Kind::kAssign:
          last_assign[rec.worker] = std::max(last_assign[rec.worker], rec.seq);
          break;
        case WalRecord::Kind::kAck:
          last_ack[rec.worker] = std::max(last_ack[rec.worker], rec.seq);
          break;
        case WalRecord::Kind::kComplete:
          last_complete[rec.worker] = std::max(last_complete[rec.worker], rec.seq);
          result.run.checkpoint.restart_completions_replayed += 1;
          break;
        case WalRecord::Kind::kSnapshot:
        case WalRecord::Kind::kRestart:
          break;
      }
    }
    for (std::size_t w = 0; w < processors; ++w) {
      next_id[w] = std::max(next_id[w], last_assign[w]);
      processed_seq[w] = last_complete[w];  // never re-record a completed chunk
      assign_acked_seq[w] = last_ack[w];
      Outstanding& out = outstanding[w];
      const std::uint64_t seq = last_assign[w];
      if (seq == 0 || seq <= last_complete[w]) {
        // Nothing in flight for this worker according to the log: treat it
        // as idle and wakeable (the bench list did not survive).
        if (loop_open && !out.active) idle[w] = 1;
      } else if (seq <= last_ack[w]) {
        // Acked but incomplete: the worker is still computing; keep the
        // assignment outstanding and re-arm detection from the restart.
        if (out.active && out.id == seq) {
          result.run.checkpoint.restart_chunks_preserved += 1;
          out.probes = 0;
          arm_detection(w, seq, out.range.count, now);
        } else if (loop_open && !out.active) {
          idle[w] = 1;  // e.g. a speculation loser cancelled pre-crash
        }
      } else {
        // Assigned but never acked: the assignment may never have reached
        // the worker — reclaim and re-dispatch. If it WAS delivered (the
        // ack was lost), the worker's eventual report hits the late-report
        // path: dropped, exactly-once preserved.
        if (out.active && out.id == seq) {
          result.run.checkpoint.restart_ranges_redispatched += 1;
          reclaim_outstanding(w);
          // NOT idle: the worker may be computing the reclaimed chunk; its
          // late report (or its own request retry) re-enters it.
        } else if (loop_open && !out.active) {
          idle[w] = 1;
        }
      }
    }
    wal_append(WalRecord::Kind::kRestart, 0, master_epoch, 0, 0);
    if (config.collect_trace) {
      result.run.events.push_back({LifecycleEvent::Kind::kMasterRestart, now, 0, 0});
    }
    CDSF_LOG_TRACE << "mpi master restarted at " << now;
    if (loop_open) wake_idle();
  };

  // Periodic checkpoint snapshots. Stop once the loop completed (so the
  // event queue can drain) or after a long stretch without progress (a
  // stranded run must reach the post-run diagnostics, not the event cap).
  std::int64_t snapshot_last_completed = -1;
  std::size_t snapshot_stagnant = 0;
  snapshot_tick = [&] {
    if (completed >= application.parallel_iterations()) return;
    if (completed == snapshot_last_completed) {
      if (++snapshot_stagnant > 1000) return;
    } else {
      snapshot_stagnant = 0;
      snapshot_last_completed = completed;
    }
    if (!master_down) {
      wal_append(WalRecord::Kind::kSnapshot, 0, master_epoch, 0, completed);
      result.run.checkpoint.snapshots += 1;
      flight.record(obs::FlightEventKind::kCheckpoint, engine.now(), obs::kFlightMasterTrack,
                    static_cast<std::int64_t>(result.run.wal.size()), completed);
      if (config.collect_trace) {
        result.run.events.push_back({LifecycleEvent::Kind::kCheckpoint, engine.now(), 0,
                                     static_cast<std::int64_t>(result.run.wal.size())});
      }
    }
    engine.schedule_after(config.checkpoint.interval, snapshot_tick);
  };

  // Canary-probe timer (see loop_executor.cpp): every probe_interval, each
  // quarantined live worker with nothing in flight gets one master-initiated
  // service carrying real pool work, flagged as a probe. Self-terminating
  // via the same stagnation guard as the snapshot tick so a stranded run
  // can still drain its event queue.
  std::int64_t probe_last_completed = -1;
  std::size_t probe_stagnant = 0;
  probe_tick = [&] {
    if (completed >= application.parallel_iterations()) return;
    if (completed == probe_last_completed) {
      if (++probe_stagnant > 1000) return;
    } else {
      probe_stagnant = 0;
      probe_last_completed = completed;
    }
    if (!master_down) {
      for (std::size_t w = 0; w < processors; ++w) {
        if (!health.quarantined(w) || declared_dead[w]) continue;
        const detail::Worker& worker = prepared.workers[w];
        if (worker.crash_time <= engine.now() && engine.now() < worker.recovery_time) {
          continue;  // physically down; the canary would be wasted
        }
        if (outstanding[w].active || service_pending[w] != 0 || auditing[w] != 0 ||
            probe_pending[w] != 0) {
          continue;
        }
        probe_pending[w] = 1;
        idle[w] = 0;  // a restart may have benched it as idle; the probe owns it now
        master_receive_request(w, 0);
      }
    }
    engine.schedule_after(config.quarantine.probe_interval, probe_tick);
  };

  if (application.parallel_iterations() > 0) {
    engine.schedule_at(serial_end, [&] {
      // Every worker's initial request reaches the master one latency in;
      // workers already down at the kick never send one (their recovery
      // request, if any, is their first contact).
      for (std::size_t w = 0; w < processors; ++w) {
        const detail::Worker& worker = prepared.workers[w];
        if (worker.crash_time <= serial_end && serial_end < worker.recovery_time) continue;
        if (hardened) {
          worker_send_request(w, false);
        } else {
          engine.schedule_after(messages.latency, [&, w] { master_receive_request(w, 0); });
        }
      }
    });
    for (std::size_t w = 0; w < processors; ++w) {
      const detail::Worker& worker = prepared.workers[w];
      if (!worker.crashes() || !std::isfinite(worker.recovery_time)) continue;
      // An outage fully inside the serial phase is invisible to the loop:
      // the worker is alive at the kick and its initial request covers it —
      // a rejoin request here would be a duplicate entry into the loop,
      // overwriting the worker's outstanding chunk and stranding it.
      if (worker.recovery_time <= serial_end) continue;
      // The rejoining worker's request reaches the master one latency after
      // recovery (or after the loop opens); it also reveals that the old
      // chunk died with the worker, even when timeout detection is off.
      if (hardened) {
        engine.schedule_at(std::max(worker.recovery_time, serial_end),
                           [&, w] { worker_send_request(w, true); });
      } else {
        const double rejoin = std::max(worker.recovery_time, serial_end) + messages.latency;
        engine.schedule_at(rejoin, [&, w] {
          declared_dead[w] = 0;
          reclaim_outstanding(w);
          master_receive_request(w, 0);
        });
      }
    }
    if (master_fault != nullptr) {
      engine.schedule_at(master_fault->time, [&] {
        master_down = true;
        master_epoch += 1;  // every pending master-side timer is now stale
        flight.record(obs::FlightEventKind::kMasterCrashed, engine.now(),
                      obs::kFlightMasterTrack);
        if (config.collect_trace) {
          result.run.events.push_back(
              {LifecycleEvent::Kind::kMasterCrash, engine.now(), 0, 0});
        }
        CDSF_LOG_TRACE << "mpi master crashed at " << engine.now();
      });
      engine.schedule_at(master_fault->recovery_time, [&] { master_restart(); });
    }
    if (checkpointing) {
      engine.schedule_at(serial_end + config.checkpoint.interval, snapshot_tick);
    }
    if (quarantine_armed) {
      engine.schedule_at(serial_end + config.quarantine.probe_interval, probe_tick);
    }
    engine.run();
  }

  if (managed && completed < application.parallel_iterations()) {
    const std::string detail =
        std::to_string(application.parallel_iterations() - completed) +
        " iterations stranded by crashes (fault detection disabled or no surviving "
        "worker to re-dispatch to)";
    // finalize_run never runs for a stranded run, so the postmortem dumps
    // here, at the detection site.
    obs::FlightSink::global().maybe_dump(flight.finish(),
                                         obs::FlightAnomaly{"strand", detail, engine.now()});
    throw std::runtime_error("simulate_loop_mpi: " + detail);
  }

  // Gray-failure epilogue (see loop_executor.cpp): in-flight replicas whose
  // verdict never resolved are abandoned; queued jobs were never dispatched
  // and are dropped uncounted. Open quarantine windows close at the end of
  // simulated activity.
  for (std::size_t v = 0; v < processors; ++v) {
    if (auditing[v]) health.stats.audits_abandoned += 1;
  }
  audits_waiting.clear();
  health.finish(std::max(result.run.makespan, engine.now()));
  result.run.quarantine = health.stats;

  for (WorkerStats& w : result.run.workers) {
    if (w.finish_time == 0.0) w.finish_time = serial_end;
  }
  detail::finalize_run(result.run, config, flight);
  if (checkpointing && !config.checkpoint.json_path.empty()) {
    write_checkpoint_json(config.checkpoint.json_path, result.run);
  }
  return result;
}

MpiRunResult simulate_loop_mpi(const workload::Application& application,
                               std::size_t processor_type, std::size_t processors,
                               const sysmodel::AvailabilitySpec& availability,
                               dls::TechniqueId technique, const SimConfig& config,
                               const MessageModel& messages, std::uint64_t seed) {
  return simulate_loop_mpi(
      application, processor_type, processors, availability,
      [technique](const dls::TechniqueParams& params) {
        return dls::make_technique(technique, params);
      },
      config, messages, seed);
}

ReplicationSummary simulate_replicated_mpi(const workload::Application& application,
                                           std::size_t processor_type, std::size_t processors,
                                           const sysmodel::AvailabilitySpec& availability,
                                           dls::TechniqueId technique, const SimConfig& config,
                                           const MessageModel& messages, std::uint64_t seed,
                                           std::size_t replications, double deadline,
                                           std::size_t threads) {
  if (replications == 0) {
    throw std::invalid_argument("simulate_replicated_mpi: replications must be >= 1");
  }
  SimConfig run_config = config;
  // One checkpoint file per replicated batch makes no sense (the last
  // writer would win, and threads would race on the path).
  run_config.checkpoint.json_path.clear();
  // The flight recorder's deadline-miss anomaly inherits the replication
  // deadline unless the caller pinned one explicitly.
  if (run_config.flight.deadline == 0.0 && deadline > 0.0 && std::isfinite(deadline)) {
    run_config.flight.deadline = deadline;
  }
  const util::SeedSequence seeds(seed);
  std::vector<double> samples(replications);
  std::vector<FaultStats> faults(replications);
  std::vector<SpeculationStats> speculation(replications);
  std::vector<ChannelStats> channel(replications);
  std::vector<CheckpointStats> checkpoint(replications);
  std::vector<QuarantineStats> quarantine(replications);
  util::parallel_for_index(replications, threads, [&](std::size_t r) {
    // Monte-Carlo checkpoint boundary (see simulate_replicated).
    util::throw_if_cancelled(run_config.cancel);
    const MpiRunResult res =
        simulate_loop_mpi(application, processor_type, processors, availability, technique,
                          run_config, messages, seeds.child(r));
    samples[r] = res.run.makespan;
    faults[r] = res.run.faults;
    speculation[r] = res.run.speculation;
    channel[r] = res.run.channel;
    checkpoint[r] = res.run.checkpoint;
    quarantine[r] = res.run.quarantine;
  });
  ReplicationSummary summary;
  // Summed in replication order — independent of the thread count.
  for (const FaultStats& f : faults) accumulate_faults(summary.faults_total, f);
  for (const SpeculationStats& s : speculation) summary.speculation_total.accumulate(s);
  for (const ChannelStats& c : channel) summary.channel_total.accumulate(c);
  for (const CheckpointStats& c : checkpoint) summary.checkpoint_total.accumulate(c);
  for (const QuarantineStats& q : quarantine) summary.quarantine_total.accumulate(q);
  detail::summarize_makespans(summary, std::move(samples), deadline);
  return summary;
}

}  // namespace cdsf::sim
